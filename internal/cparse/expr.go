package cparse

import (
	"strconv"
	"strings"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() cast.Expr {
	e := p.parseAssignExpr()
	for p.atText(",") {
		p.advance()
		rhs := p.parseAssignExpr()
		c := &cast.CommaExpr{X: e, Y: rhs}
		c.SetExtent(e.Extent().Union(rhs.Extent()))
		e = c
	}
	return e
}

var _assignOps = map[string]cast.AssignOp{
	"=": cast.AssignPlain, "+=": cast.AssignAdd, "-=": cast.AssignSub,
	"*=": cast.AssignMul, "/=": cast.AssignDiv, "%=": cast.AssignRem,
	"<<=": cast.AssignShl, ">>=": cast.AssignShr, "&=": cast.AssignAnd,
	"^=": cast.AssignXor, "|=": cast.AssignOr,
}

// parseAssignExpr parses an assignment expression. Assignment is
// right-associative; we parse a conditional expression first and promote it
// to an LHS when an assignment operator follows.
func (p *Parser) parseAssignExpr() cast.Expr {
	lhs := p.parseConditionalExpr()
	if p.cur().Kind == ctoken.KindPunct {
		if op, ok := _assignOps[p.cur().Text]; ok {
			p.advance()
			rhs := p.parseAssignExpr()
			a := &cast.AssignExpr{Op: op, LHS: lhs, RHS: rhs}
			a.SetExtent(lhs.Extent().Union(rhs.Extent()))
			return a
		}
	}
	return lhs
}

// parseConditionalExpr parses cond ? then : else.
func (p *Parser) parseConditionalExpr() cast.Expr {
	cond := p.parseBinaryExpr(0)
	if !p.atText("?") {
		return cond
	}
	p.advance()
	thenE := p.parseExpr()
	p.expect(":")
	elseE := p.parseConditionalExpr()
	c := &cast.CondExpr{Cond: cond, Then: thenE, Else: elseE}
	c.SetExtent(cond.Extent().Union(elseE.Extent()))
	return c
}

// binary operator precedence, higher binds tighter.
var _binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var _binOps = map[string]cast.BinaryOp{
	"||": cast.BinaryLOr, "&&": cast.BinaryLAnd, "|": cast.BinaryOr,
	"^": cast.BinaryXor, "&": cast.BinaryAnd, "==": cast.BinaryEq,
	"!=": cast.BinaryNe, "<": cast.BinaryLt, ">": cast.BinaryGt,
	"<=": cast.BinaryLe, ">=": cast.BinaryGe, "<<": cast.BinaryShl,
	">>": cast.BinaryShr, "+": cast.BinaryAdd, "-": cast.BinarySub,
	"*": cast.BinaryMul, "/": cast.BinaryDiv, "%": cast.BinaryRem,
}

// parseBinaryExpr is a precedence climber over the binary operator table.
func (p *Parser) parseBinaryExpr(minPrec int) cast.Expr {
	lhs := p.parseCastExpr()
	for {
		t := p.cur()
		if t.Kind != ctoken.KindPunct {
			return lhs
		}
		prec, ok := _binPrec[t.Text]
		if !ok || prec <= minPrec {
			return lhs
		}
		p.advance()
		rhs := p.parseBinaryExpr(prec)
		b := &cast.BinaryExpr{Op: _binOps[t.Text], X: lhs, Y: rhs}
		b.SetExtent(lhs.Extent().Union(rhs.Extent()))
		lhs = b
	}
}

// parseCastExpr parses (type)expr or delegates to unary.
func (p *Parser) parseCastExpr() cast.Expr {
	if p.atText("(") && p.startsTypeName(1) && !p.isCompoundLiteralAhead() {
		start := p.cur().Extent.Pos
		p.advance()
		typeStart := p.cur().Extent.Pos
		typ := p.parseTypeName()
		typeEnd := p.cur().Extent.Pos
		p.expect(")")
		operand := p.parseCastExpr()
		c := &cast.CastExpr{
			ToType:   typ,
			TypeText: strings.TrimSpace(p.file.Slice(ctoken.Extent{Pos: typeStart, End: typeEnd})),
			Operand:  operand,
		}
		c.SetExtent(ctoken.Extent{Pos: start, End: operand.Extent().End})
		return c
	}
	return p.parseUnaryExpr()
}

// isCompoundLiteralAhead detects (type){...} compound literals so they are
// not parsed as casts. We scan to the matching ')' and check for '{'.
func (p *Parser) isCompoundLiteralAhead() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		switch {
		case t.Is("("):
			depth++
		case t.Is(")"):
			depth--
			if depth == 0 {
				return i+1 < len(p.toks) && p.toks[i+1].Is("{")
			}
		case t.Kind == ctoken.KindEOF:
			return false
		}
	}
	return false
}

var _prefixOps = map[string]cast.UnaryOp{
	"&": cast.UnaryAddrOf, "*": cast.UnaryDeref, "+": cast.UnaryPlus,
	"-": cast.UnaryMinus, "!": cast.UnaryNot, "~": cast.UnaryBitNot,
	"++": cast.UnaryPreInc, "--": cast.UnaryPreDec,
}

// parseUnaryExpr parses prefix operators, sizeof, and postfix expressions.
func (p *Parser) parseUnaryExpr() cast.Expr {
	t := p.cur()
	if t.Kind == ctoken.KindPunct {
		if op, ok := _prefixOps[t.Text]; ok {
			start := p.advance().Extent.Pos
			var operand cast.Expr
			if op == cast.UnaryPreInc || op == cast.UnaryPreDec {
				operand = p.parseUnaryExpr()
			} else {
				operand = p.parseCastExpr()
			}
			u := &cast.UnaryExpr{Op: op, Operand: operand}
			u.SetExtent(ctoken.Extent{Pos: start, End: operand.Extent().End})
			return u
		}
	}
	if t.IsKeyword("sizeof") {
		start := p.advance().Extent.Pos
		if p.atText("(") && p.startsTypeName(1) {
			p.advance()
			typeStart := p.cur().Extent.Pos
			typ := p.parseTypeName()
			typeEnd := p.cur().Extent.Pos
			end := p.expect(")").Extent.End
			s := &cast.SizeofExpr{
				OfType:   typ,
				TypeText: strings.TrimSpace(p.file.Slice(ctoken.Extent{Pos: typeStart, End: typeEnd})),
			}
			s.SetExtent(ctoken.Extent{Pos: start, End: end})
			return s
		}
		operand := p.parseUnaryExpr()
		s := &cast.SizeofExpr{Operand: operand}
		s.SetExtent(ctoken.Extent{Pos: start, End: operand.Extent().End})
		return s
	}
	return p.parsePostfixExpr()
}

// parsePostfixExpr parses a primary expression followed by postfix
// operators: calls, indexing, member access, ++/--.
func (p *Parser) parsePostfixExpr() cast.Expr {
	e := p.parsePrimaryExpr()
	for {
		switch {
		case p.atText("("):
			lp := p.advance().Extent
			call := &cast.CallExpr{Fun: e, LParen: lp}
			if !p.atText(")") {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(",") {
						break
					}
				}
			}
			rp := p.expect(")").Extent
			call.RParen = rp
			call.SetExtent(ctoken.Extent{Pos: e.Extent().Pos, End: rp.End})
			e = call
		case p.atText("["):
			p.advance()
			idx := p.parseExpr()
			end := p.expect("]").Extent.End
			ix := &cast.IndexExpr{Base: e, Index: idx}
			ix.SetExtent(ctoken.Extent{Pos: e.Extent().Pos, End: end})
			e = ix
		case p.atText(".") || p.atText("->"):
			arrow := p.advance().Text == "->"
			nameTok := p.expectIdent()
			m := &cast.MemberExpr{Base: e, Member: nameTok.Text, Arrow: arrow}
			m.SetExtent(ctoken.Extent{Pos: e.Extent().Pos, End: nameTok.Extent.End})
			e = m
		case p.atText("++"):
			end := p.advance().Extent.End
			pe := &cast.PostfixExpr{Op: cast.PostfixInc, Operand: e}
			pe.SetExtent(ctoken.Extent{Pos: e.Extent().Pos, End: end})
			e = pe
		case p.atText("--"):
			end := p.advance().Extent.End
			pe := &cast.PostfixExpr{Op: cast.PostfixDec, Operand: e}
			pe.SetExtent(ctoken.Extent{Pos: e.Extent().Pos, End: end})
			e = pe
		default:
			return e
		}
	}
}

// parsePrimaryExpr parses identifiers, literals and parenthesized
// expressions.
func (p *Parser) parsePrimaryExpr() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.KindIdent:
		p.advance()
		id := &cast.Ident{Name: t.Text, Sym: p.lookup(t.Text)}
		id.SetExtent(t.Extent)
		return id
	case ctoken.KindIntLit:
		p.advance()
		lit := &cast.IntLit{Text: t.Text, Value: decodeIntLit(t.Text)}
		lit.SetExtent(t.Extent)
		return lit
	case ctoken.KindFloatLit:
		p.advance()
		v, _ := strconv.ParseFloat(strings.TrimRight(t.Text, "fFlL"), 64)
		lit := &cast.FloatLit{Text: t.Text, Value: v}
		lit.SetExtent(t.Extent)
		return lit
	case ctoken.KindCharLit:
		p.advance()
		lit := &cast.CharLit{Text: t.Text, Value: decodeCharLit(t.Text)}
		lit.SetExtent(t.Extent)
		return lit
	case ctoken.KindStringLit:
		p.advance()
		value := decodeStringLit(t.Text)
		ext := t.Extent
		// Adjacent string literals concatenate.
		for p.at(ctoken.KindStringLit) {
			nt := p.advance()
			value += decodeStringLit(nt.Text)
			ext = ext.Union(nt.Extent)
		}
		lit := &cast.StringLit{Text: p.file.Slice(ext), Value: value}
		lit.SetExtent(ext)
		return lit
	case ctoken.KindPunct:
		if t.Text == "(" {
			start := p.advance().Extent.Pos
			inner := p.parseExpr()
			end := p.expect(")").Extent.End
			pe := &cast.ParenExpr{Inner: inner}
			pe.SetExtent(ctoken.Extent{Pos: start, End: end})
			return pe
		}
	}
	p.errorf(t.Extent.Pos, "expected expression, found %s", t)
	return nil // unreachable
}

// decodeIntLit decodes decimal, octal and hex integer literals with
// optional suffixes.
func decodeIntLit(text string) int64 {
	s := strings.TrimRight(text, "uUlL")
	if s == "" {
		return 0
	}
	var (
		v   uint64
		err error
	)
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case len(s) > 1 && s[0] == '0':
		v, err = strconv.ParseUint(s[1:], 8, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0
	}
	return int64(v)
}

// decodeCharLit decodes a character literal's first byte.
func decodeCharLit(text string) byte {
	inner := strings.TrimSuffix(strings.TrimPrefix(text, "'"), "'")
	b, _ := decodeEscape(inner)
	return b
}

// decodeStringLit decodes a string literal's contents.
func decodeStringLit(text string) string {
	inner := text
	inner = strings.TrimPrefix(inner, "L")
	inner = strings.TrimSuffix(strings.TrimPrefix(inner, `"`), `"`)
	var sb strings.Builder
	sb.Grow(len(inner))
	for i := 0; i < len(inner); {
		if inner[i] == '\\' {
			b, n := decodeEscape(inner[i:])
			sb.WriteByte(b)
			i += n
			continue
		}
		sb.WriteByte(inner[i])
		i++
	}
	return sb.String()
}

// decodeEscape decodes one (possibly escaped) character at the start of s,
// returning the byte value and the number of input bytes consumed.
func decodeEscape(s string) (byte, int) {
	if s == "" {
		return 0, 0
	}
	if s[0] != '\\' {
		return s[0], 1
	}
	if len(s) < 2 {
		return '\\', 1
	}
	switch s[1] {
	case 'n':
		return '\n', 2
	case 't':
		return '\t', 2
	case 'r':
		return '\r', 2
	case '0', '1', '2', '3', '4', '5', '6', '7':
		// Octal escape: up to 3 digits.
		v := 0
		n := 1
		for n < len(s) && n <= 3 && s[n] >= '0' && s[n] <= '7' {
			v = v*8 + int(s[n]-'0')
			n++
		}
		return byte(v), n
	case 'x':
		v := 0
		n := 2
		for n < len(s) && isHex(s[n]) {
			v = v*16 + hexVal(s[n])
			n++
		}
		return byte(v), n
	case '\\':
		return '\\', 2
	case '\'':
		return '\'', 2
	case '"':
		return '"', 2
	case 'a':
		return 7, 2
	case 'b':
		return 8, 2
	case 'f':
		return 12, 2
	case 'v':
		return 11, 2
	default:
		return s[1], 2
	}
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
