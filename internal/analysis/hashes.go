package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctoken"
	"repro/internal/obs"
)

// FuncHashes returns one dependency hash per function definition, keyed
// by function name — the invalidation currency of incremental sessions
// (internal/incremental) and the cross-run oracle memo (overflow.Memo).
//
// A function's hash covers every input its oracle findings can depend
// on:
//
//   - its own token text, with comments masked and whitespace collapsed,
//     so reformatting and comment edits never invalidate;
//   - the file-scope declarations it references, transitively — a
//     typedef, struct definition, global or prototype mentioned by name
//     anywhere in the function's tokens (or in an already-included
//     declaration) contributes its normalized text, so editing a shared
//     struct invalidates every user;
//   - its alias environment — for each symbol the function references,
//     the membership of its whole-unit alias set, its points-to set and
//     the member-aliasing bits of the struct members the function
//     accesses, because buffer-length and reaching-definitions facts
//     consume whole-unit points-to results that edits elsewhere in the
//     file can shift;
//   - its transitive callees' local hashes (the call-graph closure),
//     because interprocedural seeds, may-modify summaries and
//     allocation-sink discovery let a callee's body change this
//     function's findings.
//
// Equal hash therefore implies byte-identical per-function findings; an
// edit invalidates exactly the functions whose closures it touches.
func (s *Snapshot) FuncHashes() map[string]string {
	s.hashOnce.Do(func() {
		// Aliases (and through it points-to) must be solved before
		// fingerprinting; CallGraph drives the closure step.
		s.Aliases()
		s.CallGraph()
		sp := s.span(obs.StageHashes)
		defer sp.End()
		s.funcHashes = s.computeFuncHashes()
		sp.Attr("funcs", fmt.Sprint(len(s.funcHashes)))
	})
	return s.funcHashes
}

// identSet returns the set of identifier spellings in src.
func identSet(src string) map[string]bool {
	toks, err := clex.Tokenize(src)
	if err != nil {
		return nil
	}
	out := make(map[string]bool)
	for _, t := range toks {
		if t.Kind == ctoken.KindIdent {
			out[t.Text] = true
		}
	}
	return out
}

// normalize is the hash's text canonicalization: comments masked,
// whitespace runs collapsed.
func normalize(src string) string {
	return clex.CollapseSpace(clex.MaskComments(src))
}

type declInfo struct {
	norm   string
	idents map[string]bool
}

func (s *Snapshot) computeFuncHashes() map[string]string {
	file := s.unit.File
	if file == nil {
		return map[string]string{}
	}

	// Index the file-scope declarations (everything but function
	// definitions) by every identifier occurring in them. Linking is by
	// name and over-approximate on purpose: a false dependency costs one
	// spurious re-analysis, a missed one costs a stale finding.
	var decls []declInfo
	declsByIdent := make(map[string][]int)
	for _, d := range s.unit.Decls {
		if _, isFn := d.(*cast.FuncDef); isFn {
			continue
		}
		raw := file.Slice(d.Extent())
		di := declInfo{norm: normalize(raw), idents: identSet(raw)}
		idx := len(decls)
		decls = append(decls, di)
		for id := range di.idents {
			declsByIdent[id] = append(declsByIdent[id], idx)
		}
	}

	owner := s.symbolOwners()

	// Local hashes first; the closure step below folds callees in.
	local := make(map[string]string, len(s.unit.Funcs))
	for _, fn := range s.unit.Funcs {
		raw := file.Slice(fn.Extent())
		h := sha256.New()
		h.Write([]byte(normalize(raw)))
		h.Write([]byte{0})
		h.Write([]byte(s.declClosure(identSet(raw), decls, declsByIdent)))
		h.Write([]byte{0})
		h.Write([]byte(s.aliasFingerprint(fn, owner)))
		local[fn.Name] = hex.EncodeToString(h.Sum(nil))
	}

	cg := s.CallGraph()
	out := make(map[string]string, len(local))
	for _, fn := range s.unit.Funcs {
		h := sha256.New()
		h.Write([]byte(local[fn.Name]))
		for _, callee := range cg.TransitiveCallees(fn.Name) {
			h.Write([]byte{0})
			h.Write([]byte(callee))
			h.Write([]byte{'='})
			// External callees (no definition in the unit) contribute
			// their name alone: their behavior is a fixed model.
			h.Write([]byte(local[callee]))
		}
		out[fn.Name] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// declClosure resolves the identifiers a function mentions to file-scope
// declarations, transitively, and concatenates their normalized texts in
// declaration order.
func (s *Snapshot) declClosure(idents map[string]bool, decls []declInfo, byIdent map[string][]int) string {
	included := make(map[int]bool)
	queue := make([]string, 0, len(idents))
	for id := range idents {
		queue = append(queue, id)
	}
	sort.Strings(queue)
	seen := make(map[string]bool, len(idents))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, idx := range byIdent[id] {
			if included[idx] {
				continue
			}
			included[idx] = true
			next := make([]string, 0, len(decls[idx].idents))
			for dep := range decls[idx].idents {
				if !seen[dep] {
					next = append(next, dep)
				}
			}
			sort.Strings(next)
			queue = append(queue, next...)
		}
	}
	order := make([]int, 0, len(included))
	for idx := range included {
		order = append(order, idx)
	}
	sort.Ints(order)
	var sb strings.Builder
	for _, idx := range order {
		sb.WriteString(decls[idx].norm)
		sb.WriteByte(0)
	}
	return sb.String()
}

// symbolOwners maps each symbol ID to a parse-stable owner tag: "g" for
// globals, the containing function's name for locals and parameters.
func (s *Snapshot) symbolOwners() map[int]string {
	owner := make(map[int]string, len(s.unit.Symbols))
	for _, sym := range s.unit.Symbols {
		if sym == nil {
			continue
		}
		if sym.IsGlobal {
			owner[sym.ID] = "g"
			continue
		}
		if sym.Decl != nil {
			p := sym.Decl.Extent().Pos
			for _, fn := range s.unit.Funcs {
				e := fn.Extent()
				if p >= e.Pos && p < e.End {
					owner[sym.ID] = fn.Name
					break
				}
			}
		}
	}
	return owner
}

// symTag renders a symbol parse-stably: name, owner, and declared size.
func symTag(sym *cast.Symbol, owner map[int]string) string {
	size := -1
	if sym.Type != nil {
		size = sym.Type.Size()
	}
	return fmt.Sprintf("%s@%s#%d", sym.Name, owner[sym.ID], size)
}

// aliasFingerprint serializes the slice of the whole-unit points-to
// results that fn's analyses can observe: for every symbol fn
// references, its alias-set and points-to-set membership, and for every
// member access, the member-aliasing bit.
func (s *Snapshot) aliasFingerprint(fn *cast.FuncDef, owner map[int]string) string {
	aliases := s.Aliases()

	syms := make(map[int]*cast.Symbol)
	type memberUse struct {
		sym    *cast.Symbol
		member string
	}
	var members []memberUse
	collect := func(e cast.Expr) bool {
		switch x := e.(type) {
		case *cast.Ident:
			if x.Sym != nil {
				syms[x.Sym.ID] = x.Sym
			}
		case *cast.MemberExpr:
			if id, ok := cast.Unparen(x.Base).(*cast.Ident); ok && id.Sym != nil {
				members = append(members, memberUse{id.Sym, x.Member})
			}
		}
		return true
	}
	for _, p := range fn.Params {
		if p.Sym != nil {
			syms[p.Sym.ID] = p.Sym
		}
	}
	if fn.Body != nil {
		cast.Inspect(fn.Body, func(n cast.Node) bool {
			if e, ok := n.(cast.Expr); ok {
				collect(e)
			}
			return true
		})
	}

	tags := make([]string, 0, len(syms))
	for _, sym := range syms {
		var sb strings.Builder
		sb.WriteString(symTag(sym, owner))
		sb.WriteString(":a=")
		sb.WriteString(symSetTag(aliases.AliasSetOf(sym), owner))
		sb.WriteString(":p=")
		sb.WriteString(symSetTag(aliases.PointeesOf(sym), owner))
		tags = append(tags, sb.String())
	}
	for _, mu := range members {
		tags = append(tags, fmt.Sprintf("%s.%s:m=%t",
			symTag(mu.sym, owner), mu.member, aliases.IsAliasedMember(mu.sym, mu.member)))
	}
	sort.Strings(tags)
	return strings.Join(tags, ";")
}

// symSetTag renders a symbol set parse-stably, sorted.
func symSetTag(set []*cast.Symbol, owner map[int]string) string {
	tags := make([]string, 0, len(set))
	for _, sym := range set {
		if sym != nil {
			tags = append(tags, symTag(sym, owner))
		}
	}
	sort.Strings(tags)
	return strings.Join(tags, ",")
}
