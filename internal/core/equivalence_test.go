package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cparse"
	"repro/internal/samate"
	"repro/internal/slr"
	"repro/internal/str"
)

// equivCorpus returns at least min SAMATE programs as batch inputs,
// sampling every CWE class round-robin so all transformation shapes are
// covered.
func equivCorpus(t testing.TB, min int) []FileInput {
	t.Helper()
	for per := min/len(samate.CWEs) + 1; per < 1000; per++ {
		var inputs []FileInput
		for _, cwe := range samate.CWEs {
			n := per
			if max := samate.TableIIICounts[cwe]; n > max {
				n = max
			}
			for _, p := range samate.Generate(cwe, n) {
				inputs = append(inputs, FileInput{Filename: p.ID + ".c", Source: p.Source})
			}
		}
		if len(inputs) >= min {
			return inputs
		}
	}
	t.Fatalf("cannot assemble %d SAMATE programs", min)
	return nil
}

// TestFixAllMatchesSequentialFix: the parallel batch pipeline must be
// byte-identical to sequential per-file Fix over >= 200 SAMATE programs.
func TestFixAllMatchesSequentialFix(t *testing.T) {
	inputs := equivCorpus(t, 200)
	opts := Options{SelectOffset: -1, Lint: true}

	outs := FixAll(context.Background(), inputs, opts, 0)
	if len(outs) != len(inputs) {
		t.Fatalf("got %d outputs for %d inputs", len(outs), len(inputs))
	}
	for i, in := range inputs {
		want, err := Fix(context.Background(), in.Filename, in.Source, opts)
		if err != nil {
			t.Fatalf("%s: sequential: %v", in.Filename, err)
		}
		out := outs[i]
		if out.Filename != in.Filename {
			t.Fatalf("output %d is %s, want %s (order lost)", i, out.Filename, in.Filename)
		}
		if out.Err != nil {
			t.Fatalf("%s: batch: %v", in.Filename, out.Err)
		}
		if out.Report.Source != want.Source {
			t.Fatalf("%s: batch output differs from sequential Fix", in.Filename)
		}
		if len(out.Report.Findings) != len(want.Findings) {
			t.Fatalf("%s: findings diverge: %d vs %d",
				in.Filename, len(out.Report.Findings), len(want.Findings))
		}
	}
}

// TestSnapshotPipelineMatchesSeedPipeline: the snapshot-backed SLR and STR
// must make exactly the decisions of the seed pipeline (fresh transformer
// per parse) — same sites, same variables, same outcomes, same text.
func TestSnapshotPipelineMatchesSeedPipeline(t *testing.T) {
	inputs := equivCorpus(t, 200)
	for _, in := range inputs {
		got, err := Fix(context.Background(), in.Filename, in.Source, Options{SelectOffset: -1})
		if err != nil {
			t.Fatalf("%s: %v", in.Filename, err)
		}

		// The seed pipeline: parse, SLR, re-parse, STR.
		unit, err := cparse.Parse(in.Filename, in.Source)
		if err != nil {
			t.Fatalf("%s: %v", in.Filename, err)
		}
		slrRes, err := slr.NewTransformer(unit).ApplyAll()
		if err != nil {
			t.Fatalf("%s: seed SLR: %v", in.Filename, err)
		}
		unit2, err := cparse.Parse(in.Filename, slrRes.NewSource)
		if err != nil {
			t.Fatalf("%s: %v", in.Filename, err)
		}
		strRes, err := str.NewTransformer(unit2).ApplyAll()
		if err != nil {
			t.Fatalf("%s: seed STR: %v", in.Filename, err)
		}

		if got.Source != strRes.NewSource {
			t.Fatalf("%s: final source diverges from seed pipeline", in.Filename)
		}
		if len(got.SLR.Sites) != len(slrRes.Sites) {
			t.Fatalf("%s: SLR candidate sets differ: %d vs %d",
				in.Filename, len(got.SLR.Sites), len(slrRes.Sites))
		}
		for i, s := range got.SLR.Sites {
			want := slrRes.Sites[i]
			if s.Function != want.Function || s.Pos != want.Pos || s.Applied != want.Applied ||
				fmt.Sprint(s.Failure) != fmt.Sprint(want.Failure) {
				t.Fatalf("%s: SLR site %d decision diverges:\n got %+v\nwant %+v",
					in.Filename, i, s, want)
			}
		}
		if len(got.STR.Vars) != len(strRes.Vars) {
			t.Fatalf("%s: STR candidate sets differ: %d vs %d",
				in.Filename, len(got.STR.Vars), len(strRes.Vars))
		}
		for i, v := range got.STR.Vars {
			want := strRes.Vars[i]
			if v.Name != want.Name || v.Func != want.Func || v.Applied != want.Applied ||
				v.Reason != want.Reason {
				t.Fatalf("%s: STR var %d decision diverges:\n got %+v\nwant %+v",
					in.Filename, i, v, want)
			}
		}
	}
}

// TestFixAllParallelSpeedup is a smoke check of the acceptance claim that
// the pool beats sequential processing on a multicore box. The strict 2x
// bar lives in BenchmarkFixAllParallel; here we only require a clear win
// to keep CI stable under load.
func TestFixAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs, have %d", runtime.NumCPU())
	}
	inputs := equivCorpus(t, 200)
	opts := Options{SelectOffset: -1, Lint: true}

	start := time.Now()
	FixAll(context.Background(), inputs, opts, 1)
	seq := time.Since(start)

	start = time.Now()
	FixAll(context.Background(), inputs, opts, 0)
	par := time.Since(start)

	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v, speedup %.2fx on %d CPUs", seq, par, speedup, runtime.NumCPU())
	if speedup < 1.3 {
		t.Fatalf("parallel FixAll only %.2fx faster than sequential", speedup)
	}
}
