package cfix

import (
	"context"

	"repro/internal/cache"
	"repro/internal/core"
)

// ResultCache is a content-addressed cache of fix and lint results: a
// byte-bounded in-memory LRU keyed by sha256 over (source text, options
// fingerprint, diagnostic filename), with singleflight deduplication of
// concurrent identical requests and optional disk persistence. Attach
// one to Options.Cache and repeated identical requests skip parsing and
// solving entirely; only full-fidelity results are stored, so a cache
// can never weaken a report. One ResultCache is safe to share across
// every Fix/Analyze call in a process — that sharing is the point.
type ResultCache struct {
	c *cache.Cache
}

// NewResultCache creates a cache bounded to maxBytes of in-memory
// entries (<= 0 means 64 MiB). dir, when non-empty, additionally
// persists every entry to that directory (atomic temp+rename writes,
// checksum-verified reads), so `cfix -cache-dir` re-runs and cfixd
// restarts start warm. Delete the directory to flush it; entries are
// self-validating, so a corrupt or truncated file degrades to a
// recomputation, never to a wrong result.
func NewResultCache(maxBytes int64, dir string) (*ResultCache, error) {
	c, err := cache.New(maxBytes, dir)
	if err != nil {
		return nil, err
	}
	return &ResultCache{c: c}, nil
}

// CacheStats is a point-in-time snapshot of a ResultCache's counters.
type CacheStats = cache.Stats

// Stats returns the cache's effectiveness counters (hits, misses,
// singleflight collapses, evictions, disk traffic, current footprint).
func (rc *ResultCache) Stats() CacheStats { return rc.c.Stats() }

// internal returns the underlying cache for core.Options plumbing; nil
// receiver means no cache.
func (rc *ResultCache) internal() *cache.Cache {
	if rc == nil {
		return nil
	}
	return rc.c
}

// LintReport is the full outcome of a lint-only analysis: the findings
// plus the degradation notes that qualify them, and whether the result
// came from the cache.
type LintReport = core.LintReport

// AnalyzeReport is Analyze with the degradation notes Analyze drops and
// with cache awareness: when opts.Cache is set, a repeated identical
// request is served content-addressed (LintReport.Cached reports it).
func AnalyzeReport(ctx context.Context, filename, source string, opts Options) (*LintReport, error) {
	return core.AnalyzeReport(ctx, filename, source, coreOptions(opts))
}
