// Package fleet is the routing tier that turns N independent cfixd
// daemons into one fault-tolerant service: it consistent-hash-routes
// every request by its content fingerprint (the same key the result
// cache stores the outcome under, so identical requests always land on
// the shard that already holds or is computing their result), probes
// backend readiness and ejects the unready, breaks circuits on
// repeatedly failing backends, retries connect/5xx failures on the next
// replica with jittered backoff, hedges tail latency, and collapses a
// thundering herd on one hot key into a single upstream computation.
//
// The router speaks the same HTTP/JSON API as a single cfixd
// (internal/server), reuses its admission control and latency
// histogram, and adds per-backend routed/retried/hedged/broken/ejected
// counters to /metrics — `cfixd -route b1,b2,...` is a drop-in front
// for any client that talked to one daemon. See DESIGN.md Section 14.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per backend. 128 points per
// member keeps the load spread within a few percent of uniform for
// small fleets while the ring stays tiny (3 backends = 384 points).
const defaultVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by one member.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is a consistent-hash ring over a fixed member set. It is
// immutable after New — the fleet membership is configuration, not
// runtime state (ejection is a health overlay in the router, not a ring
// mutation, so a flapping backend does not reshuffle every key).
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (<= 0 means the default 128). Member order does not matter; the ring
// for {a,b,c} equals the ring for {c,a,b}.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, v)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical 64-bit hashes are vanishingly rare; break the tie by
		// member so the ring is deterministic regardless of input order.
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
	return r
}

// ringHash is 64-bit FNV-1a: fast, dependency-free, and uniform enough
// for vnode placement (the routed keys themselves are sha256 hex, so
// key-side clustering is not a concern).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Members returns the configured member list in input order.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key (the first replica).
func (r *Ring) Owner(key string) string {
	return r.Replicas(key)[0]
}

// Replicas returns every distinct member in preference order for key:
// the owner first, then each next distinct member walking the ring
// clockwise. The router tries them in order for retries and hedges, so
// a key's fallback shard is as stable as its primary.
func (r *Ring) Replicas(key string) []string {
	if len(r.members) == 0 {
		return nil
	}
	h := ringHash(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for n := 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
