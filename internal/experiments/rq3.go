package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cinterp"
	"repro/internal/cparse"
	"repro/internal/harness"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

// RQ3Workload is one of the two performance workloads (the paper measured
// zlib and libpng after applying SLR and STR on all targets).
type RQ3Workload struct {
	Name   string
	Source string
	Entry  string
}

// rq3Source builds a workload program with the given iteration count
// baked in.
func rq3Source(kind string, iters int) string {
	switch kind {
	case "zlib":
		// minigzip-like: per file, build names with sprintf/strcpy/strcat,
		// fill and checksum a data block.
		return fmt.Sprintf(`
static unsigned long total_checksum = 0;

void process_file(int id) {
    char name[64];
    char outfile[64];
    char data[256];
    int i;
    sprintf(name, "file%%d.txt", id);
    strcpy(outfile, name);
    strcat(outfile, ".gz");
    for (i = 0; i < 200; i++) {
        data[i] = i + id;
    }
    data[200] = '\0';
    for (i = 0; i < 200; i++) {
        total_checksum = total_checksum * 31 + data[i];
    }
    total_checksum = total_checksum + strlen(outfile);
}

int main(void) {
    int k;
    for (k = 0; k < %d; k++) {
        process_file(k);
    }
    printf("%%lu\n", total_checksum);
    return 0;
}
`, iters)
	default: // libpng-like: row filtering with memcpy + message formatting
		return fmt.Sprintf(`
static unsigned long row_hash = 0;

void filter_row(int rowno) {
    char row[128];
    char prev[128];
    char msg[48];
    int i;
    for (i = 0; i < 127; i++) {
        prev[i] = i * 3 + rowno;
    }
    prev[127] = '\0';
    memcpy(row, prev, 127);
    row[127] = '\0';
    for (i = 1; i < 127; i++) {
        row[i] = row[i] + row[i - 1];
    }
    for (i = 0; i < 127; i++) {
        row_hash = row_hash * 17 + row[i];
    }
    sprintf(msg, "row %%d done", rowno);
    row_hash = row_hash + strlen(msg);
}

int main(void) {
    int r;
    for (r = 0; r < %d; r++) {
        filter_row(r);
    }
    printf("%%lu\n", row_hash);
    return 0;
}
`, iters)
	}
}

// RQ3Row reports one (workload, variant) measurement.
type RQ3Row struct {
	Workload string
	Variant  string // original | SLR | SLR+STR
	Steps    int64
	Wall     time.Duration
	Output   string
	// OverheadPct is relative to the original variant (0 for original).
	OverheadPct float64
}

// RunRQ3 measures interpreter steps and wall time for the original,
// SLR-transformed and SLR+STR-transformed variants of both workloads.
// Steps count interpreted statements/expressions — the analog of executed
// instructions, independent of host noise; wall time is reported
// alongside.
func RunRQ3(iters int) ([]RQ3Row, error) {
	if iters <= 0 {
		iters = 200
	}
	var rows []RQ3Row
	for _, kind := range []string{"zlib", "libpng"} {
		source := rq3Source(kind, iters)

		slrOnly, err := harness.Transform(kind, source, harness.Options{SkipSTR: true}, nil)
		if err != nil {
			return nil, err
		}
		both, err := harness.Transform(kind, source, harness.Options{}, nil)
		if err != nil {
			return nil, err
		}

		variants := []struct {
			name string
			src  string
		}{
			{"original", source},
			{"SLR", slrOnly},
			{"SLR+STR", both},
		}
		var base *RQ3Row
		for _, v := range variants {
			row, err := measure(kind, v.name, v.src)
			if err != nil {
				return nil, err
			}
			if v.name == "original" {
				base = row
			} else if base != nil && base.Steps > 0 {
				row.OverheadPct = 100 * float64(row.Steps-base.Steps) / float64(base.Steps)
			}
			rows = append(rows, *row)
		}
		// Behavior check: the transformed workloads must print the same
		// result.
		if len(rows) >= 3 {
			n := len(rows)
			if rows[n-1].Output != rows[n-3].Output || rows[n-2].Output != rows[n-3].Output {
				return nil, fmt.Errorf("experiments: %s outputs diverged: %q / %q / %q",
					kind, rows[n-3].Output, rows[n-2].Output, rows[n-1].Output)
			}
		}
	}
	return rows, nil
}

// measure runs one variant (native stralloc builtins; the C library
// implementation is not linked in so both sides use native code, matching
// the paper's compiled-binary timings).
func measure(workload, variant, source string) (*RQ3Row, error) {
	if strings.Contains(source, "stralloc") {
		// The typedef is needed to parse; execution uses the native
		// stralloc builtins.
		source = stralloc.Header() + "\n" + source
	}
	unit, err := cparse.Parse(workload+"_"+variant+".c", source)
	if err != nil {
		return nil, fmt.Errorf("experiments: parse %s/%s: %w", workload, variant, err)
	}
	typecheck.Check(unit)
	in, err := cinterp.New(unit, cinterp.Limits{MaxSteps: 500_000_000})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := in.Run("main")
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: run %s/%s: %w", workload, variant, err)
	}
	if res.HasViolations() {
		return nil, fmt.Errorf("experiments: %s/%s raised violations: %v",
			workload, variant, res.Violations[0])
	}
	return &RQ3Row{
		Workload: workload,
		Variant:  variant,
		Steps:    in.Steps(),
		Wall:     wall,
		Output:   res.Stdout,
	}, nil
}

// FormatRQ3 renders the overhead table.
func FormatRQ3(rows []RQ3Row) string {
	var sb strings.Builder
	sb.WriteString("RQ3: Effect on Performance (interpreted steps; wall time informational)\n")
	sb.WriteString(fmt.Sprintf("%-10s %-10s %14s %12s %10s\n",
		"Workload", "Variant", "Steps", "Wall", "Overhead"))
	for _, r := range rows {
		over := "-"
		if r.Variant != "original" {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		sb.WriteString(fmt.Sprintf("%-10s %-10s %14d %12s %10s\n",
			r.Workload, r.Variant, r.Steps, r.Wall.Round(time.Microsecond), over))
	}
	sb.WriteString("\nPaper: the modified programs had minimal performance overhead.\n")
	return sb.String()
}
