// Package cast defines the abstract syntax tree for the C subset handled by
// this repository.
//
// Every node carries a source Extent into the original text. The tree is
// deliberately close to the concrete syntax (parentheses are represented,
// declarations keep their declarator spellings) because the SLR and STR
// transformations must map analysis results back to exact source ranges.
package cast

import (
	"repro/internal/ctoken"
	"repro/internal/ctype"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	// Extent returns the source byte range covered by the node.
	Extent() ctoken.Extent
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
	// Type returns the computed C type of the expression, or nil before
	// type analysis has run.
	Type() ctype.Type
	// SetType records the computed type. It is called by the type checker.
	SetType(t ctype.Type)
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by all declaration nodes.
type Decl interface {
	Node
	declNode()
}

// extent is the common embedded struct carrying source information.
type extent struct {
	Ext ctoken.Extent
}

// Extent returns the source range of the node.
func (e *extent) Extent() ctoken.Extent { return e.Ext }

// SetExtent records the source range. Used by the parser.
func (e *extent) SetExtent(x ctoken.Extent) { e.Ext = x }

// typedExpr is embedded in all expression nodes to carry the checked type.
type typedExpr struct {
	extent
	Typ ctype.Type
}

func (t *typedExpr) exprNode()             {}
func (t *typedExpr) Type() ctype.Type      { return t.Typ }
func (t *typedExpr) SetType(ty ctype.Type) { t.Typ = ty }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Ident is a use of a name in expression position.
type Ident struct {
	typedExpr
	Name string
	// Sym is filled by name binding with the referenced symbol, when
	// resolvable. It stays nil for implicitly declared functions.
	Sym *Symbol
}

// IntLit is an integer constant.
type IntLit struct {
	typedExpr
	Text  string // original spelling
	Value int64  // decoded value
}

// FloatLit is a floating constant.
type FloatLit struct {
	typedExpr
	Text  string
	Value float64
}

// CharLit is a character constant.
type CharLit struct {
	typedExpr
	Text  string // original spelling including quotes
	Value byte   // decoded value (first byte)
}

// StringLit is a string literal.
type StringLit struct {
	typedExpr
	Text  string // original spelling including quotes
	Value string // decoded contents without quotes
}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	typedExpr
	Inner Expr
}

// UnaryOp enumerates prefix unary operators.
type UnaryOp int

// Prefix unary operators.
const (
	UnaryInvalid UnaryOp = iota
	UnaryAddrOf          // &x
	UnaryDeref           // *x
	UnaryPlus            // +x
	UnaryMinus           // -x
	UnaryNot             // !x
	UnaryBitNot          // ~x
	UnaryPreInc          // ++x
	UnaryPreDec          // --x
)

var _unaryNames = map[UnaryOp]string{
	UnaryAddrOf: "&", UnaryDeref: "*", UnaryPlus: "+", UnaryMinus: "-",
	UnaryNot: "!", UnaryBitNot: "~", UnaryPreInc: "++", UnaryPreDec: "--",
}

// String returns the operator's source spelling.
func (op UnaryOp) String() string { return _unaryNames[op] }

// UnaryExpr is a prefix unary operation.
type UnaryExpr struct {
	typedExpr
	Op      UnaryOp
	Operand Expr
}

// PostfixOp enumerates postfix operators.
type PostfixOp int

// Postfix operators.
const (
	PostfixInvalid PostfixOp = iota
	PostfixInc               // x++
	PostfixDec               // x--
)

// String returns the operator's source spelling.
func (op PostfixOp) String() string {
	switch op {
	case PostfixInc:
		return "++"
	case PostfixDec:
		return "--"
	default:
		return "?"
	}
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	typedExpr
	Op      PostfixOp
	Operand Expr
}

// BinaryOp enumerates binary operators (excluding assignment).
type BinaryOp int

// Binary operators.
const (
	BinaryInvalid BinaryOp = iota
	BinaryAdd              // +
	BinarySub              // -
	BinaryMul              // *
	BinaryDiv              // /
	BinaryRem              // %
	BinaryShl              // <<
	BinaryShr              // >>
	BinaryLt               // <
	BinaryGt               // >
	BinaryLe               // <=
	BinaryGe               // >=
	BinaryEq               // ==
	BinaryNe               // !=
	BinaryAnd              // &
	BinaryXor              // ^
	BinaryOr               // |
	BinaryLAnd             // &&
	BinaryLOr              // ||
)

var _binaryNames = map[BinaryOp]string{
	BinaryAdd: "+", BinarySub: "-", BinaryMul: "*", BinaryDiv: "/",
	BinaryRem: "%", BinaryShl: "<<", BinaryShr: ">>", BinaryLt: "<",
	BinaryGt: ">", BinaryLe: "<=", BinaryGe: ">=", BinaryEq: "==",
	BinaryNe: "!=", BinaryAnd: "&", BinaryXor: "^", BinaryOr: "|",
	BinaryLAnd: "&&", BinaryLOr: "||",
}

// String returns the operator's source spelling.
func (op BinaryOp) String() string { return _binaryNames[op] }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	typedExpr
	Op   BinaryOp
	X, Y Expr
}

// AssignOp enumerates assignment operators.
type AssignOp int

// Assignment operators.
const (
	AssignInvalid AssignOp = iota
	AssignPlain            // =
	AssignAdd              // +=
	AssignSub              // -=
	AssignMul              // *=
	AssignDiv              // /=
	AssignRem              // %=
	AssignShl              // <<=
	AssignShr              // >>=
	AssignAnd              // &=
	AssignXor              // ^=
	AssignOr               // |=
)

var _assignNames = map[AssignOp]string{
	AssignPlain: "=", AssignAdd: "+=", AssignSub: "-=", AssignMul: "*=",
	AssignDiv: "/=", AssignRem: "%=", AssignShl: "<<=", AssignShr: ">>=",
	AssignAnd: "&=", AssignXor: "^=", AssignOr: "|=",
}

// String returns the operator's source spelling.
func (op AssignOp) String() string { return _assignNames[op] }

// AssignExpr is an assignment expression.
type AssignExpr struct {
	typedExpr
	Op  AssignOp
	LHS Expr
	RHS Expr
}

// CondExpr is the ternary conditional c ? t : f.
type CondExpr struct {
	typedExpr
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr is a function call.
type CallExpr struct {
	typedExpr
	Fun  Expr // usually *Ident
	Args []Expr
	// LParen/RParen are the extents of the parentheses; transformations
	// splice arguments relative to them.
	LParen ctoken.Extent
	RParen ctoken.Extent
}

// Callee returns the called function's name when the callee is a plain
// identifier, and "" otherwise.
func (c *CallExpr) Callee() string {
	if id, ok := Unparen(c.Fun).(*Ident); ok {
		return id.Name
	}
	return ""
}

// IndexExpr is array subscripting a[i].
type IndexExpr struct {
	typedExpr
	Base  Expr
	Index Expr
}

// MemberExpr is s.f or p->f.
type MemberExpr struct {
	typedExpr
	Base   Expr
	Member string
	Arrow  bool // true for ->, false for .
}

// CastExpr is (T)x.
type CastExpr struct {
	typedExpr
	ToType   ctype.Type
	TypeText string // original spelling of the type inside parens
	Operand  Expr
}

// SizeofExpr is sizeof expr or sizeof(T).
type SizeofExpr struct {
	typedExpr
	// Exactly one of Operand / OfType is set.
	Operand  Expr
	OfType   ctype.Type
	TypeText string // spelling when OfType is set
}

// CommaExpr is the comma operator x, y.
type CommaExpr struct {
	typedExpr
	X, Y Expr
}

// InitListExpr is a brace-enclosed initializer { a, b, c }.
type InitListExpr struct {
	typedExpr
	Elems []Expr
}

// Unparen strips any number of ParenExpr wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.Inner
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// ExprStmt is an expression statement.
type ExprStmt struct {
	extent
	X Expr
}

// DeclStmt wraps one or more declarations appearing in statement position.
type DeclStmt struct {
	extent
	Decls []*VarDecl
}

// CompoundStmt is a brace-enclosed block.
type CompoundStmt struct {
	extent
	Items []Stmt
	// LBrace/RBrace record the brace extents for insertion points.
	LBrace ctoken.Extent
	RBrace ctoken.Extent
}

// IfStmt is an if/else statement.
type IfStmt struct {
	extent
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	extent
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	extent
	Body Stmt
	Cond Expr
}

// ForStmt is a for loop. Init may be a *DeclStmt or *ExprStmt or nil.
type ForStmt struct {
	extent
	Init Stmt // nil, *ExprStmt, or *DeclStmt
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// ReturnStmt is a return statement.
type ReturnStmt struct {
	extent
	Result Expr // may be nil
}

// BreakStmt is a break statement.
type BreakStmt struct{ extent }

// ContinueStmt is a continue statement.
type ContinueStmt struct{ extent }

// GotoStmt is a goto statement.
type GotoStmt struct {
	extent
	Label string
}

// LabeledStmt is label: stmt.
type LabeledStmt struct {
	extent
	Label string
	Stmt  Stmt
}

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	extent
	Tag  Expr
	Body Stmt // normally *CompoundStmt containing CaseStmt items
}

// CaseStmt is a case or default label with its statement.
type CaseStmt struct {
	extent
	Value Expr // nil for default:
	Stmt  Stmt // may be nil for consecutive labels
}

// NullStmt is a lone semicolon.
type NullStmt struct{ extent }

func (*ExprStmt) stmtNode()     {}
func (*DeclStmt) stmtNode()     {}
func (*CompoundStmt) stmtNode() {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*GotoStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*CaseStmt) stmtNode()     {}
func (*NullStmt) stmtNode()     {}

// ---------------------------------------------------------------------------
// Declarations and symbols
// ---------------------------------------------------------------------------

// StorageClass enumerates C storage class specifiers.
type StorageClass int

// Storage classes.
const (
	StorageNone StorageClass = iota
	StorageTypedef
	StorageExtern
	StorageStatic
	StorageAuto
	StorageRegister
)

// SymbolKind classifies what a symbol names.
type SymbolKind int

// Symbol kinds.
const (
	SymInvalid   SymbolKind = iota
	SymVar                  // object (local or global)
	SymFunc                 // function
	SymTypedef              // typedef name
	SymEnumConst            // enumeration constant
	SymParam                // function parameter
)

// Symbol is a named program entity produced by name binding.
type Symbol struct {
	Name    string
	Kind    SymbolKind
	Type    ctype.Type
	Storage StorageClass
	// Decl points at the introducing declaration node (a *VarDecl for
	// objects/params, *FuncDef for defined functions), or nil for
	// implicit/builtin symbols.
	Decl Node
	// IsGlobal reports file-scope declarations.
	IsGlobal bool
	// ID is a unique, dense index assigned per translation unit; analyses
	// use it to key bitsets.
	ID int
}

// VarDecl declares a single object (one declarator of a declaration).
type VarDecl struct {
	extent
	Name    string
	Type    ctype.Type
	Storage StorageClass
	Init    Expr // may be nil
	// NameExtent covers just the declarator's identifier.
	NameExtent ctoken.Extent
	// Sym is the symbol introduced by this declarator.
	Sym *Symbol
	// Global reports file-scope declarations.
	Global bool
}

// ParamDecl is a function parameter declaration.
type ParamDecl struct {
	extent
	Name string // may be "" for unnamed parameters
	Type ctype.Type
	Sym  *Symbol
}

// FuncDef is a function definition with a body.
type FuncDef struct {
	extent
	Name       string
	Type       *ctype.Func
	Params     []*ParamDecl
	Body       *CompoundStmt
	Storage    StorageClass
	NameExtent ctoken.Extent
	Sym        *Symbol
	Variadic   bool
}

// RecordDecl declares a struct or union type at file or block scope.
type RecordDecl struct {
	extent
	Record *ctype.Record
}

// TypedefDecl introduces a typedef name.
type TypedefDecl struct {
	extent
	Name string
	Type ctype.Type
	Sym  *Symbol
}

// EnumDecl declares an enum type.
type EnumDecl struct {
	extent
	Enum *ctype.Enum
}

// MultiDecl groups several declarators from one file-scope declaration
// (e.g. "int a, b;").
type MultiDecl struct {
	extent
	Decls []*VarDecl
}

func (*VarDecl) declNode()     {}
func (*MultiDecl) declNode()   {}
func (*ParamDecl) declNode()   {}
func (*FuncDef) declNode()     {}
func (*RecordDecl) declNode()  {}
func (*TypedefDecl) declNode() {}
func (*EnumDecl) declNode()    {}

// TranslationUnit is the root of a parsed file.
type TranslationUnit struct {
	extent
	File  *ctoken.File
	Decls []Decl
	// Funcs lists the function definitions in declaration order.
	Funcs []*FuncDef
	// Symbols lists all symbols bound in the unit, indexed by Symbol.ID.
	Symbols []*Symbol
}

func (*TranslationUnit) declNode() {}

// FuncNamed returns the function definition with the given name, or nil.
func (tu *TranslationUnit) FuncNamed(name string) *FuncDef {
	for _, f := range tu.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
