// Command cfixlsp is a minimal Language Server Protocol front end for
// the fixer: a zero-dependency stdio server that keeps one incremental
// analysis session per open document, publishes the overflow and
// integer oracles' findings as diagnostics on every edit, and offers
// the SLR/STR repairs as quick-fix code actions.
//
// Usage:
//
//	cfixlsp [-backend glib|bsd|c11k] [-checks all|buf|int]
//	cfixlsp -bench 200 [-bench-funcs 24] [-bench-out BENCH_incremental.json]
//
// The bench mode drives the server's own JSON-RPC loop over an
// in-process pipe and reports warm per-edit latency percentiles
// (cold open + p50/p99 of didChange -> publishDiagnostics).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	backendName := flag.String("backend", "", "safe-function dialect for code actions: glib (default), bsd, or c11k")
	checks := flag.String("checks", "all", "oracles behind diagnostics: buf, int, or all")
	bench := flag.Int("bench", 0, "run a latency benchmark with this many warm edits instead of serving")
	benchFuncs := flag.Int("bench-funcs", 24, "with -bench: number of functions in the synthetic program")
	benchOut := flag.String("bench-out", "-", "with -bench: report path (- for stdout)")
	flag.Parse()

	if *bench > 0 {
		if err := runBench(*benchFuncs, *bench, *backendName, *checks, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "cfixlsp: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Protocol traffic owns stdout; everything human goes to stderr.
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv := newLSPServer(os.Stdout, *backendName, *checks, logger)
	if err := srv.run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "cfixlsp: %v\n", err)
		os.Exit(1)
	}
}
