package cinterp

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// exprGen builds a random C integer expression and, in lockstep, computes
// its expected value with Go int64 arithmetic (the interpreter models
// 64-bit long arithmetic for in-range int operations).
type exprGen struct {
	r     uint64
	depth int
}

func (g *exprGen) next(n int) int {
	g.r = g.r*6364136223846793005 + 1442695040888963407
	if n <= 0 {
		return 0
	}
	return int((g.r >> 33) % uint64(n))
}

// gen returns (cText, value).
func (g *exprGen) gen() (string, int64) {
	if g.depth > 4 || g.next(3) == 0 {
		v := int64(g.next(200) - 100)
		if v < 0 {
			// Parenthesize negatives to keep the C well-formed anywhere.
			return "(" + strconv.FormatInt(v, 10) + ")", v
		}
		return strconv.FormatInt(v, 10), v
	}
	g.depth++
	defer func() { g.depth-- }()
	l, lv := g.gen()
	r, rv := g.gen()
	switch g.next(6) {
	case 0:
		return "(" + l + " + " + r + ")", lv + rv
	case 1:
		return "(" + l + " - " + r + ")", lv - rv
	case 2:
		return "(" + l + " * " + r + ")", lv * rv
	case 3:
		return "(" + l + " & " + r + ")", lv & rv
	case 4:
		return "(" + l + " | " + r + ")", lv | rv
	default:
		return "(" + l + " ^ " + r + ")", lv ^ rv
	}
}

// TestPropertyExpressionSemantics evaluates random constant expressions
// and compares against Go-computed ground truth.
func TestPropertyExpressionSemantics(t *testing.T) {
	f := func(seed uint64) bool {
		g := &exprGen{r: seed}
		var exprs []string
		var want []int64
		for i := 0; i < 4; i++ {
			e, v := g.gen()
			exprs = append(exprs, e)
			want = append(want, v)
		}
		var sb strings.Builder
		sb.WriteString("int main(void) {\n")
		for i, e := range exprs {
			fmt.Fprintf(&sb, "    long v%d = %s;\n", i, e)
		}
		sb.WriteString(`    printf("`)
		for range exprs {
			sb.WriteString("%ld ")
		}
		sb.WriteString(`"`)
		for i := range exprs {
			fmt.Fprintf(&sb, ", v%d", i)
		}
		sb.WriteString(");\n    return 0;\n}\n")

		res, err := LoadAndRun("prop.c", sb.String(), "main", nil, Limits{})
		if err != nil {
			t.Logf("run error: %v\n%s", err, sb.String())
			return false
		}
		var wantOut strings.Builder
		for _, v := range want {
			fmt.Fprintf(&wantOut, "%d ", v)
		}
		if res.Stdout != wantOut.String() {
			t.Logf("mismatch:\nprogram:\n%s\ngot:  %q\nwant: %q", sb.String(), res.Stdout, wantOut.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMemsetStrlen: for any fill length n < cap, strlen after
// memset+NUL is n — a round-trip through the checked memory model.
func TestPropertyMemsetStrlen(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%63) + 1
		src := fmt.Sprintf(`
int main(void) {
    char buf[64];
    memset(buf, 'q', %d);
    buf[%d] = '\0';
    printf("%%d", strlen(buf));
    return 0;
}
`, n, n)
		res, err := LoadAndRun("p.c", src, "main", nil, Limits{})
		if err != nil || res.HasViolations() {
			return false
		}
		return res.Stdout == strconv.Itoa(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOverflowAlwaysDetected: any strcpy of a string longer than
// the destination triggers a violation; any shorter string does not.
func TestPropertyOverflowAlwaysDetected(t *testing.T) {
	f := func(rawCap, rawLen uint8) bool {
		capN := int(rawCap%30) + 2
		strLen := int(rawLen % 60)
		src := fmt.Sprintf(`
int main(void) {
    char dst[%d];
    strcpy(dst, "%s");
    return 0;
}
`, capN, strings.Repeat("a", strLen))
		res, err := LoadAndRun("p.c", src, "main", nil, Limits{})
		if err != nil {
			return false
		}
		overflows := strLen+1 > capN
		return res.HasViolations() == overflows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
