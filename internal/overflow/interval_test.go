package overflow

import (
	"math"
	"testing"
)

// inBand reports that both bounds stay inside the sentinel band, the
// invariant every saturating operation must preserve: a bound outside
// [NegInf, PosInf] would itself wrap in later arithmetic.
func inBand(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	return iv.Lo >= NegInf && iv.Lo <= PosInf && iv.Hi >= NegInf && iv.Hi <= PosInf
}

// rawExtreme is an interval built with raw int64 extremes, bypassing the
// Range/Const clamping — the adversarial input for the saturation tests.
var rawExtreme = Interval{math.MinInt64, math.MaxInt64}

func TestSatNegBoundaries(t *testing.T) {
	cases := []struct {
		in, want int64
	}{
		{math.MinInt64, PosInf}, // plain -MinInt64 wraps back to MinInt64
		{math.MaxInt64, NegInf},
		{NegInf, PosInf},
		{PosInf, NegInf},
		{NegInf + 1, -(NegInf + 1)},
		{0, 0},
		{42, -42},
	}
	for _, c := range cases {
		if got := satNeg(c.in); got != c.want {
			t.Errorf("satNeg(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNegAtExtremes(t *testing.T) {
	got := rawExtreme.Neg()
	if want := Top(); got != want {
		t.Errorf("Neg(%v) = %v, want %v", rawExtreme, got, want)
	}
	// The regression this guards: [-inf, 0].Neg() must be [0, +inf], not
	// collapse both bounds to -inf via wrapped negation.
	got = Interval{NegInf, 0}.Neg()
	if want := (Interval{0, PosInf}); got != want {
		t.Errorf("Neg([-inf,0]) = %v, want %v", got, want)
	}
}

func TestSubAtExtremes(t *testing.T) {
	// x - [-inf, lo]: subtracting an unboundedly negative value must push
	// the upper bound to +inf. Before satNeg, negating a raw MinInt64
	// lower bound wrapped and dragged the result to -inf instead.
	got := Const(10).Sub(rawExtreme)
	if want := Top(); got != want {
		t.Errorf("[10,10] - raw extremes = %v, want %v", got, want)
	}
	got = Const(0).Sub(Interval{NegInf, 5})
	if want := (Interval{-5, PosInf}); got != want {
		t.Errorf("[0,0] - [-inf,5] = %v, want %v", got, want)
	}
	got = Const(0).Sub(Interval{5, PosInf})
	if want := (Interval{NegInf, -5}); got != want {
		t.Errorf("[0,0] - [5,+inf] = %v, want %v", got, want)
	}
}

func TestJoinMeetClampExtremes(t *testing.T) {
	if got := rawExtreme.Join(Const(3)); !inBand(got) || !got.IsTop() {
		t.Errorf("Join with raw extremes = %v, want clamped top", got)
	}
	if got := rawExtreme.Meet(Top()); !inBand(got) || !got.IsTop() {
		t.Errorf("Meet with raw extremes = %v, want clamped top", got)
	}
	// Meet must still report emptiness when the operands are disjoint.
	if got := Const(1).Meet(Const(2)); !got.IsEmpty() {
		t.Errorf("Meet of disjoint singletons = %v, want empty", got)
	}
}

func TestArithmeticStaysInBand(t *testing.T) {
	ivs := []Interval{
		rawExtreme,
		Top(),
		{NegInf, NegInf},
		{PosInf, PosInf},
		{NegInf + 1, PosInf - 1},
		Const(0),
		Const(math.MaxInt64), // Const clamps; kept as a sanity input
		{-7, 7},
		{-1, 1}, // MulConst(-1, MinInt64) once trapped on MinInt64 / -1
	}
	for _, a := range ivs {
		for _, b := range ivs {
			for name, got := range map[string]Interval{
				"Add":  a.Add(b),
				"Sub":  a.Sub(b),
				"Mul":  a.Mul(b),
				"Join": a.Join(b),
				"Meet": a.Meet(b),
			} {
				if !got.IsEmpty() && !inBand(got) {
					t.Errorf("%v %s %v = %v escapes the sentinel band", a, name, b, got)
				}
			}
		}
		if got := a.Neg(); !got.IsEmpty() && !inBand(got) {
			t.Errorf("Neg(%v) = %v escapes the sentinel band", a, got)
		}
		for _, k := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
			if got := a.MulConst(k); !got.IsEmpty() && !inBand(got) {
				t.Errorf("MulConst(%v, %d) = %v escapes the sentinel band", a, k, got)
			}
			if got := a.AddConst(k); !got.IsEmpty() && !inBand(got) {
				t.Errorf("AddConst(%v, %d) = %v escapes the sentinel band", a, k, got)
			}
		}
	}
}
