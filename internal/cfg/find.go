package cfg

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// NodeContaining returns the CFG node whose program point contains the
// given AST node, judged by source extents. When several nodes cover the
// target (e.g. a labeled statement wrapping an expression statement), the
// one with the smallest extent wins. Returns nil when no node covers the
// target.
func (g *Graph) NodeContaining(target cast.Node) *Node {
	te := target.Extent()
	if !te.IsValid() {
		return nil
	}
	var (
		best     *Node
		bestSize = int(^uint(0) >> 1) // max int
	)
	consider := func(n *Node, e ctoken.Extent) {
		if !e.IsValid() || !e.Covers(te) {
			return
		}
		if e.Len() < bestSize {
			best = n
			bestSize = e.Len()
		}
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindDecl:
			consider(n, n.Decl.Extent())
		case KindCond, KindPost:
			consider(n, n.Expr.Extent())
		case KindStmt:
			if n.Stmt != nil {
				e := n.Stmt.Extent()
				// Labeled statements and cases wrap inner statements that
				// have their own nodes; restricting to the label's head
				// extent would lose coverage, so we rely on smallest-extent
				// selection instead.
				consider(n, e)
			}
		}
	}
	return best
}
