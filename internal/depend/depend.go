// Package depend computes control and data dependence over the
// statement-level CFG — the final pair of analyses the paper adds to
// OpenRefactory/C (Section III-A: "We extended OpenRefactory/C to add
// reaching definition analysis, points-to analysis, control and data
// dependence analysis, and alias analysis").
//
// Control dependence follows the classic Ferrante-Ottenstein-Warren
// construction via post-dominators; data dependence is the def-use
// relation induced by reaching definitions.
package depend

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/dataflow"
)

// Result holds the dependence relations for one function.
type Result struct {
	Graph *cfg.Graph
	// ControlDeps maps node ID -> IDs of nodes it is control-dependent on.
	ControlDeps map[int][]int
	// DataDeps maps node ID -> the definitions its uses may read.
	DataDeps map[int][]*dataflow.Def
}

// Compute builds both relations. rd may be nil, in which case reaching
// definitions are computed with no alias information.
func Compute(g *cfg.Graph, rd *dataflow.ReachingDefs) *Result {
	if rd == nil {
		rd = dataflow.ComputeReaching(g, dataflow.NoAliases{})
	}
	res := &Result{
		Graph:       g,
		ControlDeps: controlDeps(g),
		DataDeps:    dataDeps(g, rd),
	}
	return res
}

// postDominators computes the post-dominator sets with the standard
// iterative algorithm (backward over the CFG, meeting at intersections).
func postDominators(g *cfg.Graph) []map[int]bool {
	n := len(g.Nodes)
	pdom := make([]map[int]bool, n)
	all := make(map[int]bool, n)
	for _, node := range g.Nodes {
		all[node.ID] = true
	}
	for _, node := range g.Nodes {
		if node == g.Exit {
			pdom[node.ID] = map[int]bool{node.ID: true}
			continue
		}
		// Start from the full set.
		s := make(map[int]bool, n)
		for id := range all {
			s[id] = true
		}
		pdom[node.ID] = s
	}
	changed := true
	for changed {
		changed = false
		for _, node := range g.Nodes {
			if node == g.Exit {
				continue
			}
			// Intersection over successors' sets, plus self.
			var inter map[int]bool
			if len(node.Succs) == 0 {
				// Dead-end node (e.g. infinite loop member): only itself.
				inter = make(map[int]bool)
			} else {
				inter = make(map[int]bool, len(pdom[node.Succs[0].ID]))
				for id := range pdom[node.Succs[0].ID] {
					inter[id] = true
				}
				for _, s := range node.Succs[1:] {
					for id := range inter {
						if !pdom[s.ID][id] {
							delete(inter, id)
						}
					}
				}
			}
			inter[node.ID] = true
			if !sameSet(inter, pdom[node.ID]) {
				pdom[node.ID] = inter
				changed = true
			}
		}
	}
	return pdom
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// controlDeps: node Y is control-dependent on X when X has successors S1,
// S2 such that Y post-dominates S1 but not X itself.
func controlDeps(g *cfg.Graph) map[int][]int {
	pdom := postDominators(g)
	deps := make(map[int][]int)
	for _, x := range g.Nodes {
		if len(x.Succs) < 2 {
			continue // only branch points induce control dependence
		}
		for _, s := range x.Succs {
			// Every node on the post-dominator path of s (excluding what
			// also post-dominates x) is control-dependent on x.
			for yID := range pdom[s.ID] {
				if yID == x.ID {
					continue
				}
				if !pdom[x.ID][yID] {
					deps[yID] = appendUnique(deps[yID], x.ID)
				}
			}
		}
	}
	return deps
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// dataDeps connects each node's uses to the reaching definitions of the
// used symbols.
func dataDeps(g *cfg.Graph, rd *dataflow.ReachingDefs) map[int][]*dataflow.Def {
	deps := make(map[int][]*dataflow.Def)
	for _, node := range g.Nodes {
		syms := usedSymbols(node)
		for _, sym := range syms {
			for _, def := range rd.ReachingFor(node, sym) {
				if def.Node == node {
					continue // a def in the same node is not a dependence
				}
				deps[node.ID] = append(deps[node.ID], def)
			}
		}
	}
	return deps
}

// usedSymbols collects the symbols read by a node.
func usedSymbols(node *cfg.Node) []*cast.Symbol {
	var root cast.Node
	switch node.Kind {
	case cfg.KindDecl:
		if node.Decl.Init != nil {
			root = node.Decl.Init
		}
	case cfg.KindStmt:
		root = node.Stmt
	case cfg.KindCond, cfg.KindPost:
		root = node.Expr
	}
	if root == nil {
		return nil
	}
	seen := make(map[*cast.Symbol]bool)
	var out []*cast.Symbol
	cast.Inspect(root, func(n cast.Node) bool {
		if id, ok := n.(*cast.Ident); ok && id.Sym != nil && !seen[id.Sym] {
			if id.Sym.Kind == cast.SymVar || id.Sym.Kind == cast.SymParam {
				seen[id.Sym] = true
				out = append(out, id.Sym)
			}
		}
		return true
	})
	return out
}
