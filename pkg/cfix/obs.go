package cfix

import (
	"time"

	"repro/internal/obs"
)

// Tracer records one span per pipeline stage — parse, typecheck, the
// derived analyses, SLR, STR, rewrite, cache hit/miss — with monotonic
// timings and per-span attributes (file, function count, solver
// iterations, degradation reason). Attach one via Options.Tracer, then
// export a Chrome trace (Tracer.WriteChromeTrace) or an aggregated
// per-stage summary (Tracer.StageStats / FormatStageStats). A nil
// *Tracer is the valid disabled state; tracing never changes a result,
// only observes the run. Safe for concurrent use by the batch
// pipeline's workers — each worker renders as one Chrome trace lane.
type Tracer = obs.Tracer

// Span is one completed stage measurement recorded by a Tracer.
type Span = obs.Span

// StageStat aggregates every span of one stage name; Self excludes
// nested stages, so summing Self across stages reproduces the traced
// wall clock without double counting.
type StageStat = obs.StageStat

// NewTracer starts a tracer whose epoch is now.
func NewTracer() *Tracer { return obs.NewTracer() }

// FormatStageStats renders the aggregated per-stage summary table
// printed by `cfix -stage-stats`. wall, when positive, is reported in
// the footer next to the stats total for cross-checking.
func FormatStageStats(stats []StageStat, wall time.Duration) string {
	return obs.FormatStageStats(stats, wall)
}

// TracingEnabled reports whether this build records spans at all
// (false when compiled with the cfix_notrace tag).
func TracingEnabled() bool { return obs.Enabled() }
