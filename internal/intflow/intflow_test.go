package intflow

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/fault"
	"repro/internal/overflow"
	"repro/internal/typecheck"
)

func analyzeSrc(t *testing.T, src string) []Finding {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	return Analyze(tu)
}

// has asserts at least one finding with the given CWE and severity and
// returns the first.
func has(t *testing.T, fs []Finding, cwe int, sev overflow.Severity) Finding {
	t.Helper()
	for _, f := range fs {
		if f.CWE == cwe && f.Severity == sev {
			return f
		}
	}
	t.Fatalf("no CWE-%d %s finding in %v", cwe, sev, fs)
	return Finding{}
}

func hasCWE(fs []Finding, cwe int) bool {
	for _, f := range fs {
		if f.CWE == cwe {
			return true
		}
	}
	return false
}

// TestTransferFunctions is the table-driven sweep over the transfer
// functions: arithmetic, casts, shifts, division, mixed signedness,
// compound assignment, and increments.
func TestTransferFunctions(t *testing.T) {
	tests := []struct {
		name string
		src  string
		cwe  int
		sev  overflow.Severity
	}{
		{
			name: "mul_wraps_uint_definite",
			src: `void f(void) {
    unsigned int a = 65537;
    unsigned int b = 65537;
    unsigned int c = a * b;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "add_wraps_int_definite",
			src: `void f(void) {
    int a = 2000000000;
    int b = a + a;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "unsigned_sub_underflows_definite",
			src: `void f(unsigned int a) {
    if (a == 0) {
        unsigned int b = a - 1;
        (void)b;
    }
}`,
			cwe: 191, sev: overflow.SevDefinite,
		},
		{
			name: "truncating_cast_to_short",
			src: `void f(void) {
    int a = 70000;
    short s = (short)a;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "negative_cast_to_short_underflows",
			src: `void f(void) {
    int a = -70000;
    short s = (short)a;
}`,
			cwe: 191, sev: overflow.SevDefinite,
		},
		{
			name: "shift_left_wraps_int",
			src: `void f(void) {
    int a = 1;
    int b = a << 31;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "division_keeps_precision_for_cast_check",
			src: `void f(void) {
    int a = 60000;
    unsigned char c = (unsigned char)(a / 100);
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "negative_int_to_unsigned_underflows",
			src: `void f(void) {
    int s = -1;
    unsigned int u = (unsigned int)s;
}`,
			cwe: 191, sev: overflow.SevDefinite,
		},
		{
			name: "compound_add_wraps_ushort",
			src: `void f(void) {
    unsigned short t = 60000;
    t += 10000;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "implicit_truncating_assignment",
			src: `void f(void) {
    int a = 300;
    unsigned char c;
    c = a;
}`,
			cwe: 190, sev: overflow.SevDefinite,
		},
		{
			name: "negation_of_min_underflow_to_unsigned",
			src: `void f(void) {
    int a = 5;
    unsigned int u = (unsigned int)(-a);
}`,
			cwe: 191, sev: overflow.SevDefinite,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fs := analyzeSrc(t, tc.src)
			has(t, fs, tc.cwe, tc.sev)
		})
	}
}

// TestQuietOnSafeArithmetic asserts zero findings for in-range code —
// the false-positive guard for the transfer functions.
func TestQuietOnSafeArithmetic(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{
			name: "bounded_loop_uchar",
			src: `void f(void) {
    unsigned char i;
    int sum = 0;
    for (i = 0; i < 100; i++) {
        sum = sum + i;
    }
}`,
		},
		{
			name: "in_range_mul",
			src: `void f(void) {
    unsigned int a = 1000;
    unsigned int b = 1000;
    unsigned int c = a * b;
}`,
		},
		{
			name: "in_range_cast",
			src: `void f(void) {
    int a = 200;
    unsigned char c = (unsigned char)a;
}`,
		},
		{
			name: "unknown_params_stay_quiet",
			src: `int f(int a, int b) {
    return a + b;
}`,
		},
		{
			name: "guarded_unsigned_sub",
			src: `void f(unsigned int a) {
    if (a > 0) {
        unsigned int b = a - 1;
        (void)b;
    }
}`,
		},
		{
			name: "widened_accumulator_not_flagged",
			src: `void f(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = acc + 1;
    }
}`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if fs := analyzeSrc(t, tc.src); len(fs) != 0 {
				t.Fatalf("safe code flagged: %v", fs)
			}
		})
	}
}

// TestUnsignedWrapLoopBound is the classic `for (uc i = 0; i < 300; ...)`
// infinite loop: the increment can never reach the bound.
func TestUnsignedWrapLoopBound(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned char i;
    int sum = 0;
    for (i = 0; i < 300; i++) {
        sum = sum + 1;
    }
}`)
	if !hasCWE(fs, 190) {
		t.Fatalf("wrapping loop counter not flagged: %v", fs)
	}
}

// TestAllocSinkDirect checks CWE-680 with the wrap in the argument
// expression itself, and that the suggested guard names the type bound.
func TestAllocSinkDirect(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned int n = 70000;
    unsigned int sz = 70000;
    char *p = malloc(n * sz);
    p[0] = 0;
}`)
	f := has(t, fs, 680, overflow.SevDefinite)
	if f.Guard == "" {
		t.Fatalf("CWE-680 finding has no suggested guard: %+v", f)
	}
	if !strings.Contains(f.Guard, "4294967295U") {
		t.Fatalf("guard does not name the unsigned bound: %q", f.Guard)
	}
	if !hasCWE(fs, 190) {
		t.Fatalf("the multiplication wrap itself was not reported: %v", fs)
	}
}

// TestAllocSinkThroughVariable checks that wrap taint stored in a
// variable still reaches a later allocation.
func TestAllocSinkThroughVariable(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned int n = 80000;
    unsigned int total = n * n;
    char *p = malloc(total);
    p[0] = 0;
}`)
	f := has(t, fs, 680, overflow.SevDefinite)
	if f.Object != "total" {
		t.Fatalf("sink object = %q, want total", f.Object)
	}
	if f.Guard == "" {
		t.Fatalf("no fallback guard on stored-taint sink: %+v", f)
	}
}

// TestAllocSinkWrapperDiscovery checks sink closure over the call
// graph: a wrapper forwarding its parameter to malloc becomes a sink.
func TestAllocSinkWrapperDiscovery(t *testing.T) {
	fs := analyzeSrc(t, `static char *mkbuf(unsigned int n) {
    return malloc(n);
}
void f(void) {
    unsigned int a = 70000;
    unsigned int b = 70000;
    char *p = mkbuf(a * b);
    p[0] = 0;
}`)
	if !hasCWE(fs, 680) {
		t.Fatalf("wrapper allocation sink not discovered: %v", fs)
	}
}

// TestCallocBothArgsAreSinks checks the two-argument allocator.
func TestCallocBothArgsAreSinks(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned int n = 70000;
    char *p = calloc(n * n, 1);
    p[0] = 0;
}`)
	if !hasCWE(fs, 680) {
		t.Fatalf("calloc nmemb sink missed: %v", fs)
	}
}

// TestGuardTextForBinop checks the IntRepair-style guard shape at the
// wrap site itself.
func TestGuardTextForBinop(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned int a = 70000;
    unsigned int b = 70000;
    unsigned int c = a * b;
}`)
	f := has(t, fs, 190, overflow.SevDefinite)
	if !strings.Contains(f.Guard, "a > 4294967295U / b") {
		t.Fatalf("multiplication guard = %q, want a > MAX / b shape", f.Guard)
	}
}

// TestInterproceduralWrapThroughCall checks that argument ranges
// propagate: the callee only wraps under the caller's concrete values.
func TestInterproceduralWrapThroughCall(t *testing.T) {
	fs := analyzeSrc(t, `static unsigned int scale(unsigned int n) {
    return n * 65536;
}
void f(void) {
    unsigned int r = scale(70000);
    (void)r;
}`)
	f := has(t, fs, 190, overflow.SevDefinite)
	if len(f.Contexts) == 0 || !strings.Contains(f.Contexts[0], "->") {
		t.Fatalf("interprocedural finding has no call chain: %+v", f)
	}
}

// TestBudgetDegradesNeverSilent checks the fault-containment contract:
// an exhausted solver budget produces a CWEIncomplete finding and a
// degradation note, not a clean report.
func TestBudgetDegradesNeverSilent(t *testing.T) {
	tu, err := cparse.Parse("t.c", `void f(void) {
    int i;
    int sum = 0;
    for (i = 0; i < 1000; i++) {
        sum = sum + i;
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	a := NewWithOptions(tu, Options{Limits: fault.Limits{Steps: 1}})
	fs := a.Analyze()
	found := false
	for _, f := range fs {
		if f.CWE == CWEIncomplete && f.Degraded && f.Severity == overflow.SevPossible {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget exhaustion did not degrade: %v", fs)
	}
	degs := a.Degradations()
	if len(degs) == 0 || !strings.HasPrefix(degs[0], "intflow:") {
		t.Fatalf("no intflow-prefixed degradation note: %v", degs)
	}
}

// TestFindingsAreSortedAndDeduped checks report hygiene: source order,
// no duplicate (extent, CWE) pairs.
func TestFindingsAreSortedAndDeduped(t *testing.T) {
	fs := analyzeSrc(t, `void f(void) {
    unsigned int a = 70000;
    unsigned int b = a * a;
    unsigned short s = (unsigned short)b;
    char *p = malloc(b);
    p[0] = 0;
}`)
	type key struct {
		pos, end int
		cwe      int
	}
	seen := make(map[key]bool)
	lastPos := -1
	for _, f := range fs {
		k := key{int(f.Extent.Pos), int(f.Extent.End), f.CWE}
		if seen[k] {
			t.Fatalf("duplicate finding %+v", f)
		}
		seen[k] = true
		if int(f.Extent.Pos) < lastPos {
			t.Fatalf("findings out of source order: %v", fs)
		}
		lastPos = int(f.Extent.Pos)
	}
	if !hasCWE(fs, 680) || !hasCWE(fs, 190) {
		t.Fatalf("expected both 190 and 680: %v", fs)
	}
}
