package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestMeterUnlimited(t *testing.T) {
	m := Limits{}.NewMeter()
	for i := 0; i < 10_000; i++ {
		if !m.Step() {
			t.Fatal("unlimited meter must never exhaust")
		}
	}
	if m.Exhausted() {
		t.Fatal("unlimited meter reports exhausted")
	}
}

func TestMeterBudget(t *testing.T) {
	m := Limits{Steps: 3}.NewMeter()
	for i := 0; i < 3; i++ {
		if !m.Step() {
			t.Fatalf("step %d within budget must pass", i)
		}
	}
	if m.Step() {
		t.Fatal("step past budget must fail")
	}
	if !m.Exhausted() {
		t.Fatal("meter must report exhaustion")
	}
	if m.Step() {
		t.Fatal("meter must stay exhausted")
	}
}

func TestCancellationRoundTrip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var err error
	func() {
		defer Recover(&err)
		Limits{Ctx: ctx}.NewMeter().Step()
		t.Fatal("Step on a cancelled context must panic")
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("recovered %v, want context.Canceled", err)
	}
}

func TestCheckCtxNil(t *testing.T) {
	CheckCtx(nil) // must not panic
	CheckCtx(context.Background())
}

func TestRecoverCapturesStack(t *testing.T) {
	var err error
	func() {
		defer Recover(&err)
		panic("boom in solver")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("recovered %T, want *PanicError", err)
	}
	if pe.Value != "boom in solver" {
		t.Fatalf("panic value %v", pe.Value)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("error must carry the stack:\n%s", err)
	}
	if !strings.Contains(err.Error(), "boom in solver") {
		t.Fatalf("error must carry the panic value:\n%s", err)
	}
}

func TestRecoverPreservesExistingError(t *testing.T) {
	want := errors.New("original")
	err := want
	func() {
		defer Recover(&err)
	}()
	if err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestAsCancellationRejectsForeignPanics(t *testing.T) {
	if AsCancellation("random") != nil {
		t.Fatal("foreign panic value classified as cancellation")
	}
	if AsCancellation(nil) != nil {
		t.Fatal("nil classified as cancellation")
	}
}
