package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
)

// sample has two independent overflowing functions, so one-function
// edits leave the other memoized.
const sample = `void first(void) {
    char a[8];
    strcpy(a, "0123456789");
}

void second(void) {
    char b[8];
    strcpy(b, "abcdefghij");
}
`

const sampleURI = "file:///t/sample.c"

// harness runs an lspServer over in-process pipes and exposes the raw
// client end plus the server for white-box inspection.
type harness struct {
	t      *testing.T
	srv    *lspServer
	client *benchClient
	done   chan error
	toSrv  *pipe
}

func newHarness(t *testing.T, backendName string) *harness {
	t.Helper()
	toSrv, toClient := newPipe(), newPipe()
	srv := newLSPServer(toClient, backendName, "all", log.New(io.Discard, "", 0))
	done := make(chan error, 1)
	go func() { done <- srv.run(toSrv) }()
	h := &harness{
		t:      t,
		srv:    srv,
		client: &benchClient{out: &writer{out: toSrv}, in: bufio.NewReader(toClient)},
		done:   done,
		toSrv:  toSrv,
	}
	t.Cleanup(func() {
		h.client.notify("exit", nil)
		toSrv.Close()
		if err := <-done; err != nil {
			t.Errorf("server loop: %v", err)
		}
	})
	return h
}

// response reads messages until the response for id arrives.
func (h *harness) response(id int) json.RawMessage {
	h.t.Helper()
	for {
		body, err := readMessage(h.client.in)
		if err != nil {
			h.t.Fatalf("read: %v", err)
		}
		var msg struct {
			ID     *int            `json:"id"`
			Result json.RawMessage `json:"result"`
			Error  *rpcError       `json:"error"`
		}
		if err := json.Unmarshal(body, &msg); err != nil {
			h.t.Fatalf("unmarshal: %v", err)
		}
		if msg.ID == nil || *msg.ID != id {
			continue
		}
		if msg.Error != nil {
			h.t.Fatalf("request %d failed: %+v", id, msg.Error)
		}
		return msg.Result
	}
}

// open initializes the connection and opens sample as version 1,
// returning the first diagnostics.
func (h *harness) open(text string) publishDiagnosticsParams {
	h.t.Helper()
	h.client.request(1, "initialize", map[string]any{})
	h.response(1)
	h.client.notify("initialized", map[string]any{})
	h.client.notify("textDocument/didOpen", didOpenParams{
		TextDocument: textDocumentItem{URI: sampleURI, Version: 1, Text: text},
	})
	return h.client.waitDiagnostics(1)
}

func TestInitializeAdvertisesIncrementalSync(t *testing.T) {
	h := newHarness(t, "")
	h.client.request(1, "initialize", map[string]any{})
	var res initializeResult
	if err := json.Unmarshal(h.response(1), &res); err != nil {
		t.Fatal(err)
	}
	if res.Capabilities.TextDocumentSync.Change != 2 {
		t.Fatalf("sync change = %d, want 2 (incremental)", res.Capabilities.TextDocumentSync.Change)
	}
	if !res.Capabilities.CodeActionProvider {
		t.Fatal("codeActionProvider not advertised")
	}
}

func TestDidOpenPublishesOracleDiagnostics(t *testing.T) {
	h := newHarness(t, "")
	diags := h.open(sample)
	if len(diags.Diagnostics) < 2 {
		t.Fatalf("want >= 2 diagnostics for two overflows, got %+v", diags)
	}
	for _, d := range diags.Diagnostics {
		if d.Source != "cfix" {
			t.Fatalf("diagnostic source %q", d.Source)
		}
		if !strings.HasPrefix(d.Code, "CWE-") {
			t.Fatalf("diagnostic code %q", d.Code)
		}
		if d.Severity != 1 && d.Severity != 2 {
			t.Fatalf("diagnostic severity %d", d.Severity)
		}
	}
}

func TestIncrementalChangeReanalyzesOnlyDirtyFunction(t *testing.T) {
	h := newHarness(t, "")
	h.open(sample)

	// Grow first's buffer past the literal: its findings go away.
	at := strings.Index(sample, "a[8]") + len("a[")
	h.client.notify("textDocument/didChange", didChangeParams{
		TextDocument: versionedTextDocumentIdentifier{URI: sampleURI, Version: 2},
		ContentChanges: []contentChange{{
			Range: &lspRange{Start: lspPos(sample, at), End: lspPos(sample, at+1)},
			Text:  "99",
		}},
	})
	diags := h.client.waitDiagnostics(2)

	newText := sample[:at] + "99" + sample[at+1:]
	want, err := core.Analyze(context.Background(), "sample.c", newText, core.Options{Checks: "all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags.Diagnostics) != len(want) {
		t.Fatalf("published %d diagnostics, full analysis finds %d", len(diags.Diagnostics), len(want))
	}

	c := h.srv.docs[sampleURI].session.Counters()
	if c.FuncsReanalyzed != 1 || c.FuncsReused != 1 {
		t.Fatalf("counters after one-function edit: %+v", c)
	}

	// A comment-only change must reuse both functions.
	at2 := strings.Index(newText, "void second")
	h.client.notify("textDocument/didChange", didChangeParams{
		TextDocument: versionedTextDocumentIdentifier{URI: sampleURI, Version: 3},
		ContentChanges: []contentChange{{
			Range: &lspRange{Start: lspPos(newText, at2), End: lspPos(newText, at2)},
			Text:  "/* note */\n",
		}},
	})
	h.client.waitDiagnostics(3)
	c2 := h.srv.docs[sampleURI].session.Counters()
	if c2.FuncsReanalyzed != c.FuncsReanalyzed || c2.FuncsReused != c.FuncsReused+2 {
		t.Fatalf("counters after comment edit: %+v (before: %+v)", c2, c)
	}
}

func TestParseBreakingChangeKeepsDiagnosticsAndResyncs(t *testing.T) {
	h := newHarness(t, "")
	before := h.open(sample)

	// Break the parse; the server must keep serving the last good set.
	h.client.notify("textDocument/didChange", didChangeParams{
		TextDocument: versionedTextDocumentIdentifier{URI: sampleURI, Version: 2},
		ContentChanges: []contentChange{{
			Range: &lspRange{Start: lspPos(sample, 0), End: lspPos(sample, 0)},
			Text:  ")))",
		}},
	})
	broken := h.client.waitDiagnostics(2)
	if len(broken.Diagnostics) != len(before.Diagnostics) {
		t.Fatalf("broken state dropped diagnostics: %d -> %d", len(before.Diagnostics), len(broken.Diagnostics))
	}

	// Undo; the session is behind the editor, so the change falls back
	// to a whole-file resync, which Minimize keeps incremental.
	brokenText := ")))" + sample
	h.client.notify("textDocument/didChange", didChangeParams{
		TextDocument: versionedTextDocumentIdentifier{URI: sampleURI, Version: 3},
		ContentChanges: []contentChange{{
			Range: &lspRange{Start: lspPos(brokenText, 0), End: lspPos(brokenText, 3)},
			Text:  "",
		}},
	})
	fixed := h.client.waitDiagnostics(3)
	if len(fixed.Diagnostics) != len(before.Diagnostics) {
		t.Fatalf("resync lost diagnostics: %d -> %d", len(before.Diagnostics), len(fixed.Diagnostics))
	}
	if got := h.srv.docs[sampleURI].session.Text(); got != sample {
		t.Fatalf("session did not resync to editor text")
	}
}

func TestCodeActionAppliesBackendFix(t *testing.T) {
	h := newHarness(t, "bsd")
	h.open(sample)

	// Ask for actions over the whole document.
	h.client.request(2, "textDocument/codeAction", codeActionParams{
		TextDocument: textDocumentIdentifier{URI: sampleURI},
		Range:        lspRangeOf(sample, 0, len(sample)),
	})
	var actions []codeAction
	if err := json.Unmarshal(h.response(2), &actions); err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("no code actions over a file with eligible sites")
	}

	var slrAction *codeAction
	for i := range actions {
		if strings.Contains(actions[i].Title, "strlcpy") {
			slrAction = &actions[i]
			break
		}
	}
	if slrAction == nil {
		t.Fatalf("no strlcpy action under -backend bsd: %+v", actions)
	}

	// Applying the workspace edit client-side must reproduce the exact
	// single-site core.Fix output.
	edits := slrAction.Edit.Changes[sampleURI]
	if len(edits) == 0 {
		t.Fatal("empty workspace edit")
	}
	applied := applyTextEdits(sample, edits)
	if !strings.Contains(applied, "strlcpy") {
		t.Fatalf("applied action does not call strlcpy:\n%s", applied)
	}
	var slrOffset int = -1
	for _, site := range h.srv.docs[sampleURI].session.Sites() {
		if site.Kind == incremental.SiteSLR && site.Eligible {
			slrOffset = int(site.Extent.Pos)
			break
		}
	}
	if slrOffset < 0 {
		t.Fatal("no eligible SLR site")
	}
	rep, err := core.Fix(context.Background(), "t/sample.c", sample, core.Options{
		SelectOffset: slrOffset, Backend: "bsd",
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != rep.Source {
		t.Fatalf("workspace edit diverges from core.Fix:\n--- action\n%s\n--- fix\n%s", applied, rep.Source)
	}
}

// applyTextEdits splices LSP text edits into text. Edits from
// workspaceEditFor are non-overlapping and ordered; apply back to
// front so earlier offsets stay valid.
func applyTextEdits(text string, edits []textEdit) string {
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		start := byteOffset(text, e.Range.Start)
		end := byteOffset(text, e.Range.End)
		text = text[:start] + e.NewText + text[end:]
	}
	return text
}

func TestDidCloseClearsDiagnostics(t *testing.T) {
	h := newHarness(t, "")
	h.open(sample)
	h.client.notify("textDocument/didClose", didCloseParams{
		TextDocument: textDocumentIdentifier{URI: sampleURI},
	})
	cleared := h.client.waitDiagnostics(-1)
	if len(cleared.Diagnostics) != 0 {
		t.Fatalf("didClose published %d diagnostics, want 0", len(cleared.Diagnostics))
	}
	if _, open := h.srv.docs[sampleURI]; open {
		t.Fatal("document still tracked after close")
	}
}

func TestBenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_incremental.json")
	if err := runBench(3, 6, "", "all", out); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Funcs != 3 || rep.Edits != 6 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.WarmP50Ms <= 0 || rep.WarmP99Ms < rep.WarmP50Ms {
		t.Fatalf("percentiles: %+v", rep)
	}
	// Every warm edit dirties exactly one function.
	if rep.Reanalyzed != 6 || rep.Reused != 6*2 {
		t.Fatalf("bench counters: %+v", rep)
	}
}
