package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/overflow"
	"repro/internal/slr"
)

const sample = `
void f(void) {
    char buf[16];
    char *p;
    strcpy(buf, "hello");
    p = malloc(8);
    p[0] = 'x';
}
`

func TestFixBoth(t *testing.T) {
	rep, err := Fix(context.Background(), "s.c", sample, Options{SelectOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLR == nil || rep.STR == nil {
		t.Fatal("both transformation reports expected")
	}
	if !rep.Changed() {
		t.Fatal("program should change")
	}
	if !rep.NeedsGlib || !rep.NeedsStralloc {
		t.Fatalf("support requirements: glib=%v stralloc=%v", rep.NeedsGlib, rep.NeedsStralloc)
	}
	if !strings.Contains(rep.Summary(), "SLR: 1/1") {
		t.Fatalf("summary:\n%s", rep.Summary())
	}
}

func TestFixEmitSupportSelfContained(t *testing.T) {
	rep, err := Fix(context.Background(), "s.c", sample, Options{SelectOffset: -1, EmitSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Source, "typedef struct stralloc") {
		t.Fatal("stralloc support missing")
	}
	if !strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatal("glib prototypes missing")
	}
	// The emitted unit must parse standalone.
	if _, err := cparse.Parse("out.c", rep.Source); err != nil {
		t.Fatalf("self-contained output must parse: %v", err)
	}
}

func TestFixDisableSLR(t *testing.T) {
	rep, err := Fix(context.Background(), "s.c", sample, Options{DisableSLR: true, SelectOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLR != nil {
		t.Fatal("SLR report must be nil when disabled")
	}
	if strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatal("SLR must not have run")
	}
}

func TestFixSelectedSiteSkipsSTR(t *testing.T) {
	off := strings.Index(sample, "strcpy")
	rep, err := Fix(context.Background(), "s.c", sample, Options{SelectOffset: off})
	if err != nil {
		t.Fatal(err)
	}
	// Case-by-case mode is an SLR quick-fix; STR batch does not run.
	if rep.STR != nil {
		t.Fatal("STR must not run in single-site mode")
	}
	if !strings.Contains(rep.Source, "g_strlcpy(buf") {
		t.Fatalf("selected site not fixed:\n%s", rep.Source)
	}
}

func TestFixParseErrorWrapped(t *testing.T) {
	_, err := Fix(context.Background(), "bad.c", "void f( {", Options{SelectOffset: -1})
	if err == nil || !strings.Contains(err.Error(), "core: parse") {
		t.Fatalf("error: %v", err)
	}
}

func TestFixLintAttachesRisk(t *testing.T) {
	src := `
void f(void) {
    char buf[8];
    char src[40];
    memset(src, 'A', 30);
    src[30] = '\0';
    strcpy(buf, src);
}
int main(void) { f(); return 0; }
`
	rep, err := Fix(context.Background(), "s.c", src, Options{SelectOffset: -1, Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("lint findings expected")
	}
	if rep.SLR == nil {
		t.Fatal("SLR report expected")
	}
	var strcpySite *slr.SiteResult
	for i := range rep.SLR.Sites {
		if rep.SLR.Sites[i].Function == "strcpy" {
			strcpySite = &rep.SLR.Sites[i]
		}
	}
	if strcpySite == nil || strcpySite.Risk == nil {
		t.Fatalf("strcpy site should carry a risk verdict: %+v", rep.SLR.Sites)
	}
	if strcpySite.Risk.CWE != 121 || strcpySite.Risk.Severity != overflow.SevDefinite {
		t.Fatalf("risk: got CWE-%d %s", strcpySite.Risk.CWE, strcpySite.Risk.Severity)
	}
	// Ranked order puts the definite site first, and the summary justifies
	// the repair with the verdict.
	ranked := rep.SLR.RankedSites()
	if len(ranked) == 0 || ranked[0].Risk == nil {
		t.Fatalf("ranked sites should lead with the flagged site: %+v", ranked)
	}
	if s := rep.Summary(); !strings.Contains(s, "[CWE-121 definite:") {
		t.Fatalf("summary should justify with the verdict:\n%s", s)
	}
	// STR candidates in the same function match by (function, name).
	if rep.STR != nil {
		for _, v := range rep.STR.Vars {
			if v.Name == "buf" && v.Func == "f" && v.Risk == nil {
				t.Fatalf("STR candidate buf should carry a risk verdict: %+v", v)
			}
		}
	}
}

func TestFixWithoutLintHasNoFindings(t *testing.T) {
	rep, err := Fix(context.Background(), "s.c", sample, Options{SelectOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("findings without Lint: %v", rep.Findings)
	}
	for _, s := range rep.SLR.Sites {
		if s.Risk != nil {
			t.Fatalf("risk without Lint: %+v", s)
		}
	}
}
