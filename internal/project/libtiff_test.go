package project

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// loadFixture loads the checked-in libtiff-shaped fixture. The database
// uses directory "." so paths resolve relative to the fixture root; we
// chdir for the load (paths inside the returned project are absolute
// only if the database makes them so — here they stay relative, which
// is fine for in-test use).
func loadFixture(t *testing.T) *Project {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "testdata", "libtiff")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	p, err := Load("compile_commands.json")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLibTIFFFixtureProject drives the paper's libtiff case-study shape
// through project mode: a directory reader in one file misuses a helper
// defined in another, the overflow is only provable cross-file, and the
// conventional strcpy in the reader is repaired in the original text
// with the include and macros intact.
func TestLibTIFFFixtureProject(t *testing.T) {
	p := loadFixture(t)
	if len(p.TUs) != 2 {
		t.Fatalf("TUs = %d, want 2", len(p.TUs))
	}
	rep, err := p.Fix(context.Background(), core.Options{Lint: true, DisableSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	edgeOK := false
	for _, e := range rep.Edges {
		if e.Callee == "_TIFFmemset8" && strings.Contains(e.CallerFile, "tif_dirread") {
			edgeOK = true
		}
	}
	if !edgeOK {
		t.Fatalf("cross-file edge to _TIFFmemset8 not linked: %+v", rep.Edges)
	}
	var crossFinding, fixed bool
	for _, out := range rep.Files {
		if out.Err != "" {
			t.Fatalf("%s failed: %s", out.File, out.Err)
		}
		switch {
		case strings.Contains(out.File, "tif_aux"):
			for _, f := range out.Fix.Findings {
				if f.Function == "_TIFFmemset8" && !f.Degraded {
					crossFinding = true
				}
			}
		case strings.Contains(out.File, "tif_dirread"):
			src := out.Fix.Source
			if !strings.Contains(src, "#include \"tiffio.h\"") ||
				!strings.Contains(src, "char tagbuf[TIFF_TAGBUF];") {
				t.Fatalf("original shape lost:\n%s", src)
			}
			if strings.Contains(src, "strcpy(tagbuf, \"II*\")") {
				t.Fatalf("strcpy not repaired:\n%s", src)
			}
			fixed = true
		}
	}
	if !crossFinding {
		t.Fatal("cross-file overflow in _TIFFmemset8 not found")
	}
	if !fixed {
		t.Fatal("tif_dirread.c outcome missing")
	}
}

// TestLibTIFFRealTree runs project mode over a real libtiff checkout
// when one is provided (network-less CI skips it): point
// CFIX_LIBTIFF_DB at a compile_commands.json generated for the tree.
func TestLibTIFFRealTree(t *testing.T) {
	db := os.Getenv("CFIX_LIBTIFF_DB")
	if db == "" {
		t.Skip("CFIX_LIBTIFF_DB not set; skipping real-tree libtiff run")
	}
	p, err := Load(db)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Analyze(context.Background(), core.Options{
		DisableSLR: true, DisableSTR: true, Lint: true, KeepGoing: true, Budget: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	for _, out := range rep.Files {
		if out.Err != "" {
			failed++
			continue
		}
		ok++
	}
	t.Logf("libtiff: %d units analyzed, %d failed, %d cross-file edges", ok, failed, len(rep.Edges))
	if ok == 0 {
		t.Fatal("no translation unit analyzed successfully")
	}
}
