package intflow

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctype"
	"repro/internal/overflow"
)

// iproblem adapts one function (under one calling context) to the
// generic dataflow solver. seed carries the parameter values of the
// context; globalIDs the symbol IDs of file-scope objects (havocked at
// unmodeled calls); sinks the allocation-size argument positions per
// callee (builtins plus call-graph-discovered wrappers).
//
// chk is nil while solving. The checker replays the same transfer
// functions over the solved in-states with chk set, so findings are
// produced by exactly the code path that computed the fixpoint.
type iproblem struct {
	fn        *cast.FuncDef
	seed      map[int]ival
	globalIDs map[int]bool
	sinks     map[string][]int
	mm        mayModifier
	chk       *ichecker
}

// mayModifier is the slice of interproc facts the havoc logic needs.
type mayModifier interface {
	MayModifyArg(call *cast.CallExpr, idx int) bool
}

func (p *iproblem) Bottom() istate { return unreached() }

func (p *iproblem) Entry() istate {
	st := istate{reach: true, vars: make(map[int]ival, len(p.seed))}
	for id, v := range p.seed {
		if !v.isTop() {
			st.vars[id] = v
		}
	}
	return st
}

func (p *iproblem) Join(a, b istate) istate        { return a.join(b) }
func (p *iproblem) Widen(prev, next istate) istate { return prev.widenFrom(next) }
func (p *iproblem) Equal(a, b istate) bool         { return a.equal(b) }

func (p *iproblem) Transfer(n *cfg.Node, in istate) istate {
	return p.transferNode(n, in)
}

// FlowEdge refines the state along labeled branch edges using the
// condition expression.
func (p *iproblem) FlowEdge(from, to *cfg.Node, st istate) istate {
	if !st.reach || from.Kind != cfg.KindCond || !from.Branching || from.Expr == nil {
		return st
	}
	return p.refine(st, from.Expr, from.IsTrueSucc(to))
}

// transferNode is the single dispatch shared by the solver (chk == nil)
// and the finding replay (chk != nil).
func (p *iproblem) transferNode(n *cfg.Node, in istate) istate {
	if !in.reach {
		return in
	}
	switch n.Kind {
	case cfg.KindDecl:
		return p.transferDecl(in, n.Decl)
	case cfg.KindStmt:
		switch s := n.Stmt.(type) {
		case *cast.ExprStmt:
			return p.transferExpr(in, s.X)
		case *cast.ReturnStmt:
			if s.Result != nil {
				return p.transferExpr(in, s.Result)
			}
		}
		return in
	case cfg.KindCond, cfg.KindPost:
		if n.Expr != nil {
			return p.transferExpr(in, n.Expr)
		}
	}
	return in
}

// --- declarations -----------------------------------------------------------

func (p *iproblem) transferDecl(st istate, d *cast.VarDecl) istate {
	if d == nil {
		return st
	}
	// The initializer's effects (calls, assignments, wraps) apply whatever
	// the declared type is — `char *p = malloc(n * sz)` must still reach
	// the allocation-sink check.
	if d.Init != nil {
		st = p.transferExpr(st, d.Init)
	}
	if d.Sym == nil || !isIntVar(d.Sym) {
		return st
	}
	if d.Init == nil {
		return st.set(d.Sym.ID, topIval())
	}
	v := p.eval(st, d.Init)
	return st.set(d.Sym.ID, p.convert(d.Init, v, d.Sym.Type))
}

// --- expression effects -----------------------------------------------------

// transferExpr applies the state effects of evaluating e (assignments,
// increments, calls). Value computation is the separate eval.
func (p *iproblem) transferExpr(st istate, e cast.Expr) istate {
	if e == nil {
		return st
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.AssignExpr:
		st = p.transferExpr(st, x.RHS)
		return p.transferAssign(st, x)
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryPreInc:
			return p.applyIncDec(st, x, x.Operand, +1)
		case cast.UnaryPreDec:
			return p.applyIncDec(st, x, x.Operand, -1)
		}
		return p.transferExpr(st, x.Operand)
	case *cast.PostfixExpr:
		switch x.Op {
		case cast.PostfixInc:
			return p.applyIncDec(st, x, x.Operand, +1)
		case cast.PostfixDec:
			return p.applyIncDec(st, x, x.Operand, -1)
		}
		return st
	case *cast.CallExpr:
		for _, a := range x.Args {
			st = p.transferExpr(st, a)
		}
		return p.transferCall(st, x)
	case *cast.CommaExpr:
		st = p.transferExpr(st, x.X)
		return p.transferExpr(st, x.Y)
	case *cast.BinaryExpr:
		st = p.transferExpr(st, x.X)
		st = p.transferExpr(st, x.Y)
		if p.chk != nil {
			p.eval(st, x) // report wraps in value-only expressions
		}
		return st
	case *cast.CondExpr:
		st = p.transferExpr(st, x.Cond)
		a := p.transferExpr(st, x.Then)
		b := p.transferExpr(st, x.Else)
		return a.join(b)
	case *cast.CastExpr:
		st = p.transferExpr(st, x.Operand)
		if p.chk != nil {
			p.eval(st, x)
		}
		return st
	case *cast.IndexExpr:
		st = p.transferExpr(st, x.Base)
		return p.transferExpr(st, x.Index)
	case *cast.MemberExpr:
		return p.transferExpr(st, x.Base)
	}
	return st
}

func (p *iproblem) transferAssign(st istate, x *cast.AssignExpr) istate {
	id, ok := cast.Unparen(x.LHS).(*cast.Ident)
	if !ok || id.Sym == nil || !isIntVar(id.Sym) || id.Sym.Kind == cast.SymEnumConst {
		// Stores through arrays/pointers are not tracked, but the RHS
		// may still wrap — evaluate it for the replay pass.
		if p.chk != nil {
			p.eval(st, x.RHS)
		}
		return st
	}
	old := st.get(id.Sym.ID)
	rhs := p.eval(st, x.RHS)
	var v ival
	switch x.Op {
	case cast.AssignPlain:
		v = rhs
	case cast.AssignAdd, cast.AssignSub, cast.AssignMul, cast.AssignDiv,
		cast.AssignRem, cast.AssignShl, cast.AssignShr,
		cast.AssignAnd, cast.AssignXor, cast.AssignOr:
		v = p.evalBinop(x, compoundOp(x.Op), old, rhs)
	default:
		v = topIval()
	}
	return st.set(id.Sym.ID, p.convert(x, v, id.Sym.Type))
}

// compoundOp maps a compound-assignment operator to its binary form.
func compoundOp(op cast.AssignOp) cast.BinaryOp {
	switch op {
	case cast.AssignAdd:
		return cast.BinaryAdd
	case cast.AssignSub:
		return cast.BinarySub
	case cast.AssignMul:
		return cast.BinaryMul
	case cast.AssignDiv:
		return cast.BinaryDiv
	case cast.AssignRem:
		return cast.BinaryRem
	case cast.AssignShl:
		return cast.BinaryShl
	case cast.AssignShr:
		return cast.BinaryShr
	case cast.AssignAnd:
		return cast.BinaryAnd
	case cast.AssignXor:
		return cast.BinaryXor
	case cast.AssignOr:
		return cast.BinaryOr
	}
	return cast.BinaryInvalid
}

func (p *iproblem) applyIncDec(st istate, site cast.Expr, operand cast.Expr, delta int64) istate {
	id, ok := cast.Unparen(operand).(*cast.Ident)
	if !ok || id.Sym == nil || !isIntVar(id.Sym) {
		return st
	}
	old := st.get(id.Sym.ID)
	raw := old.v.AddConst(delta)
	opName := "increment"
	if delta < 0 {
		opName = "decrement"
	}
	v := p.wrapCheck(site, raw, id.Sym.Type, opName, "")
	v = inheritTaint(v, old)
	return st.set(id.Sym.ID, v)
}

// --- call effects -----------------------------------------------------------

// noEffectCalls lists library routines that neither write through their
// arguments nor touch globals in a way this analysis tracks.
var noEffectCalls = map[string]bool{
	"strcmp": true, "strncmp": true, "strlen": true, "printf": true,
	"puts": true, "putchar": true, "free": true, "malloc": true,
	"calloc": true, "realloc": true, "exit": true, "abort": true,
	"getchar": true, "fopen": true, "fclose": true, "strchr": true,
	"strrchr": true, "rand": true, "srand": true, "memset": true,
	"memcpy": true, "memmove": true, "strcpy": true, "strcat": true,
	"strncpy": true, "strncat": true, "sprintf": true, "snprintf": true,
	"g_malloc": true,
}

func (p *iproblem) transferCall(st istate, call *cast.CallExpr) istate {
	name := call.Callee()
	// Sink check: a possibly-wrapped value flowing into an allocation
	// size is CWE-680, whatever the call's other effects are.
	if positions, isSink := p.sinks[name]; isSink {
		for _, idx := range positions {
			arg := argAt(call, idx)
			if arg == nil {
				continue
			}
			av := p.eval(st, arg)
			if av.wrapped && p.chk != nil {
				p.chk.report680(call, arg, av)
			}
		}
	} else if p.chk != nil {
		// Non-sink calls: still surface wraps inside argument expressions.
		for _, a := range call.Args {
			p.eval(st, a)
		}
	}
	if noEffectCalls[name] {
		return st
	}
	return p.havocUserCall(st, call)
}

// havocUserCall forgets what a user (or unmodeled) call may change:
// integer variables passed by address — unless the may-modify facts
// prove the callee leaves that argument alone — and every global
// integer.
func (p *iproblem) havocUserCall(st istate, call *cast.CallExpr) istate {
	for i, a := range call.Args {
		u, ok := cast.Unparen(a).(*cast.UnaryExpr)
		if !ok || u.Op != cast.UnaryAddrOf {
			continue
		}
		id, ok := cast.Unparen(u.Operand).(*cast.Ident)
		if !ok || id.Sym == nil || !isIntVar(id.Sym) {
			continue
		}
		if p.mm != nil && !p.mm.MayModifyArg(call, i) {
			continue // proven read-only: the value survives the call
		}
		st = st.set(id.Sym.ID, topIval())
	}
	out := st.clone()
	for id := range out.vars {
		if p.globalIDs[id] {
			delete(out.vars, id)
		}
	}
	return out
}

// --- pure evaluation --------------------------------------------------------

// eval computes the abstract value of e under st, wrap-checking every
// arithmetic step against the expression's C type and reporting through
// the attached checker (when one is attached).
func (p *iproblem) eval(st istate, e cast.Expr) ival {
	if e == nil {
		return topIval()
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return ival{v: overflow.Const(x.Value)}
	case *cast.CharLit:
		return ival{v: overflow.Const(int64(x.Value))}
	case *cast.Ident:
		if x.Sym == nil {
			return topIval()
		}
		if x.Sym.Kind == cast.SymEnumConst {
			if v, ok := constOf(x); ok {
				return ival{v: overflow.Const(v)}
			}
		}
		if isIntVar(x.Sym) {
			return st.get(x.Sym.ID)
		}
		return topIval()
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryMinus:
			ov := p.eval(st, x.Operand)
			out := p.wrapCheck(x, ov.v.Neg(), x.Type(), "negation", "")
			return inheritTaint(out, ov)
		case cast.UnaryPlus:
			return p.eval(st, x.Operand)
		case cast.UnaryNot:
			return ival{v: overflow.Range(0, 1)}
		case cast.UnaryBitNot:
			ov := p.eval(st, x.Operand)
			return inheritTaint(topIval(), ov)
		case cast.UnaryPreInc:
			return ival{v: p.eval(st, x.Operand).v.AddConst(1)}
		case cast.UnaryPreDec:
			return ival{v: p.eval(st, x.Operand).v.AddConst(-1)}
		}
		return topIval()
	case *cast.PostfixExpr:
		return p.eval(st, x.Operand)
	case *cast.SizeofExpr:
		if v, ok := constOf(x); ok {
			return ival{v: overflow.Const(v)}
		}
		return ival{v: overflow.Range(0, overflow.PosInf)}
	case *cast.BinaryExpr:
		a, b := p.eval(st, x.X), p.eval(st, x.Y)
		return p.evalBinop(x, x.Op, a, b)
	case *cast.CastExpr:
		return p.convert(x, p.eval(st, x.Operand), x.ToType)
	case *cast.AssignExpr:
		// The value of an assignment is the RHS converted to the LHS
		// type; the store itself is transferAssign's job.
		if id, ok := cast.Unparen(x.LHS).(*cast.Ident); ok && id.Sym != nil && isIntVar(id.Sym) {
			return p.convert(x, p.eval(st, x.RHS), id.Sym.Type)
		}
		return p.eval(st, x.RHS)
	case *cast.CommaExpr:
		return p.eval(st, x.Y)
	case *cast.CondExpr:
		return p.eval(st, x.Then).join(p.eval(st, x.Else))
	case *cast.CallExpr:
		if x.Callee() == "strlen" {
			return ival{v: overflow.Range(0, overflow.PosInf)}
		}
		return topIval()
	}
	return topIval()
}

// evalBinop computes site's value for op over a and b, wrap-checking
// the arithmetic operators against the site's result type.
func (p *iproblem) evalBinop(site cast.Expr, op cast.BinaryOp, a, b ival) ival {
	var raw overflow.Interval
	checked := true
	switch op {
	case cast.BinaryAdd:
		raw = a.v.Add(b.v)
	case cast.BinarySub:
		raw = a.v.Sub(b.v)
	case cast.BinaryMul:
		raw = imul(a.v, b.v)
	case cast.BinaryShl:
		k, ok := b.v.Exact()
		if !ok || k < 0 || k > 62 {
			return inheritTaint(topIval(), a)
		}
		raw = imul(a.v, overflow.Const(int64(1)<<uint(k)))
	case cast.BinaryDiv:
		return inheritTaint(ival{v: idiv(a.v, b.v)}, a)
	case cast.BinaryShr:
		return inheritTaint(ival{v: ishr(a.v, b.v)}, a)
	case cast.BinaryRem:
		if k, ok := b.v.Exact(); ok && k > 0 && a.v.Lo >= 0 {
			return inheritTaint(ival{v: overflow.Range(0, k-1)}, a)
		}
		return inheritTaint(topIval(), a)
	case cast.BinaryAnd:
		if m, ok := b.v.Exact(); ok && m >= 0 {
			return ival{v: overflow.Range(0, m)}
		}
		if m, ok := a.v.Exact(); ok && m >= 0 {
			return ival{v: overflow.Range(0, m)}
		}
		return inheritTaint(inheritTaint(topIval(), a), b)
	case cast.BinaryXor, cast.BinaryOr:
		return inheritTaint(inheritTaint(topIval(), a), b)
	case cast.BinaryLt, cast.BinaryGt, cast.BinaryLe, cast.BinaryGe,
		cast.BinaryEq, cast.BinaryNe, cast.BinaryLAnd, cast.BinaryLOr:
		return ival{v: overflow.Range(0, 1)}
	default:
		checked = false
		raw = overflow.Top()
	}
	var out ival
	if checked {
		guard := ""
		if p.chk != nil {
			guard = p.chk.guardForBinop(site, op)
		}
		out = p.wrapCheck(site, raw, siteType(site), opName(op), guard)
	} else {
		out = topIval()
	}
	return inheritTaint(inheritTaint(out, a), b)
}

// convert models an implicit or explicit conversion of v to the target
// type, flagging truncation (CWE-190) and negative-to-unsigned
// conversion (CWE-191).
func (p *iproblem) convert(site cast.Expr, v ival, to ctype.Type) ival {
	if to == nil || !ctype.IsInteger(to) {
		return v
	}
	guard := ""
	if p.chk != nil {
		guard = p.chk.guardForConvert(site, v.v, to)
	}
	out := p.wrapCheck(site, v.v, to, "conversion", guard)
	return inheritTaint(out, v)
}

// wrapCheck compares the mathematically exact interval raw against the
// representable range of t. In range: the value passes through. Out of
// range: the result is the full type range, marked wrapped, and (with a
// checker attached) a CWE-190/191 finding is reported — definite when
// every value in raw is out of range, possible when raw straddles the
// boundary. Sentinel bounds produced by widening are skipped on their
// own side, so saturating loop counters do not drown the report in
// false positives.
func (p *iproblem) wrapCheck(site cast.Expr, raw overflow.Interval, t ctype.Type, opName, guard string) ival {
	lo, hi, ok := typeBounds(t)
	if !ok || raw.IsEmpty() {
		return ival{v: raw}
	}
	var over, overDef, under, underDef bool
	if hi < overflow.PosInf {
		switch {
		case raw.Lo > hi:
			over, overDef = true, true
		case raw.Hi > hi && raw.Hi < overflow.PosInf:
			over = true
		}
	}
	switch {
	case raw.Hi < lo:
		under, underDef = true, true
	case raw.Lo < lo && raw.Lo > overflow.NegInf:
		under = true
	}
	if !over && !under {
		return ival{v: raw.Meet(overflow.Range(lo, hi))}
	}
	out := ival{
		v:        overflow.Range(lo, hi),
		wrapped:  true,
		definite: overDef || underDef,
		guard:    guard,
	}
	if p.chk != nil {
		if over {
			p.chk.reportWrap(site, 190, overDef, raw, t, lo, hi, opName, guard)
		}
		if under {
			p.chk.reportWrap(site, 191, underDef, raw, t, lo, hi, opName, guard)
		}
	}
	return out
}

// inheritTaint propagates upstream wrap taint into a derived value.
func inheritTaint(out, in ival) ival {
	if !in.wrapped {
		return out
	}
	out.wrapped = true
	out.definite = out.definite || in.definite
	if out.guard == "" {
		out.guard = in.guard
	}
	return out
}

// siteType returns the C type computed for the expression by typecheck.
func siteType(e cast.Expr) ctype.Type {
	if e == nil {
		return nil
	}
	return e.Type()
}

func opName(op cast.BinaryOp) string {
	switch op {
	case cast.BinaryAdd:
		return "addition"
	case cast.BinarySub:
		return "subtraction"
	case cast.BinaryMul:
		return "multiplication"
	case cast.BinaryShl:
		return "left shift"
	}
	return "arithmetic"
}

// --- interval arithmetic beyond overflow.Interval ---------------------------

// imul is a full interval multiplication (all four corner products with
// saturation), more precise than overflow.Interval.Mul for non-singleton
// operands — exactly the n*size case allocation overflows hinge on.
func imul(a, b overflow.Interval) overflow.Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return overflow.Top()
	}
	lo, hi := int64(0), int64(0)
	first := true
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			c := cornerMul(x, y)
			if first {
				lo, hi = c, c
				first = false
				continue
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	return overflow.Interval{Lo: lo, Hi: hi}
}

// cornerMul multiplies two possibly-sentinel bounds with saturation.
func cornerMul(x, y int64) int64 {
	if x == 0 || y == 0 {
		return 0
	}
	pos := (x > 0) == (y > 0)
	if x <= overflow.NegInf || x >= overflow.PosInf ||
		y <= overflow.NegInf || y >= overflow.PosInf {
		if pos {
			return overflow.PosInf
		}
		return overflow.NegInf
	}
	r := x * y
	if r/x != y {
		if pos {
			return overflow.PosInf
		}
		return overflow.NegInf
	}
	if r <= overflow.NegInf {
		return overflow.NegInf
	}
	if r >= overflow.PosInf {
		return overflow.PosInf
	}
	return r
}

// idiv divides a by b, precise for non-negative dividends and strictly
// positive divisors (the shape of size computations); anything else is
// unconstrained.
func idiv(a, b overflow.Interval) overflow.Interval {
	if a.IsEmpty() || b.IsEmpty() || a.Lo < 0 || b.Lo <= 0 {
		return overflow.Top()
	}
	lo := int64(0)
	if b.Hi < overflow.PosInf {
		lo = a.Lo / b.Hi
	}
	hi := overflow.PosInf
	if a.Hi < overflow.PosInf {
		hi = a.Hi / b.Lo
	}
	return overflow.Range(lo, hi)
}

// ishr shifts a right by an exact non-negative count.
func ishr(a, b overflow.Interval) overflow.Interval {
	k, ok := b.Exact()
	if !ok || k < 0 || k > 62 || a.IsEmpty() || a.Lo < 0 {
		return overflow.Top()
	}
	hi := overflow.PosInf
	if a.Hi < overflow.PosInf {
		hi = a.Hi >> uint(k)
	}
	return overflow.Range(a.Lo>>uint(k), hi)
}

// --- branch refinement ------------------------------------------------------

// refine narrows st under the assumption that cond evaluates to truth.
// Refinement narrows value intervals only; wrap taint survives (a
// bounds check after the wrap does not un-wrap the value).
func (p *iproblem) refine(st istate, cond cast.Expr, truth bool) istate {
	switch x := cast.Unparen(cond).(type) {
	case *cast.IntLit:
		if (x.Value != 0) != truth {
			return unreached()
		}
		return st
	case *cast.CharLit:
		if (x.Value != 0) != truth {
			return unreached()
		}
		return st
	case *cast.UnaryExpr:
		if x.Op == cast.UnaryNot {
			return p.refine(st, x.Operand, !truth)
		}
		return st
	case *cast.Ident:
		if x.Sym == nil {
			return st
		}
		if x.Sym.Kind == cast.SymEnumConst {
			if v, ok := constOf(x); ok && (v != 0) != truth {
				return unreached()
			}
			return st
		}
		if !isIntVar(x.Sym) {
			return st
		}
		v := st.get(x.Sym.ID)
		if truth {
			if z, ok := v.v.Exact(); ok && z == 0 {
				return unreached()
			}
			if v.v.Lo == 0 {
				v.v.Lo = 1
				return st.set(x.Sym.ID, v)
			}
			return st
		}
		nv := v.v.Meet(overflow.Const(0))
		if nv.IsEmpty() {
			return unreached()
		}
		v.v = nv
		return st.set(x.Sym.ID, v)
	case *cast.BinaryExpr:
		switch x.Op {
		case cast.BinaryLAnd:
			if truth {
				return p.refine(p.refine(st, x.X, true), x.Y, true)
			}
			return st
		case cast.BinaryLOr:
			if !truth {
				return p.refine(p.refine(st, x.X, false), x.Y, false)
			}
			return st
		case cast.BinaryLt, cast.BinaryLe, cast.BinaryGt, cast.BinaryGe,
			cast.BinaryEq, cast.BinaryNe:
			return p.refineCompare(st, x, truth)
		}
	}
	return st
}

func (p *iproblem) refineCompare(st istate, x *cast.BinaryExpr, truth bool) istate {
	op := x.Op
	if !truth {
		op = negateCompare(op)
	}
	st = p.refineSide(st, x.X, op, p.eval(st, x.Y).v)
	if !st.reach {
		return st
	}
	return p.refineSide(st, x.Y, flipCompare(op), p.eval(st, x.X).v)
}

// refineSide narrows the integer variable e under "e op bound".
func (p *iproblem) refineSide(st istate, e cast.Expr, op cast.BinaryOp, bound overflow.Interval) istate {
	id, ok := cast.Unparen(e).(*cast.Ident)
	if !ok || id.Sym == nil || !isIntVar(id.Sym) || id.Sym.Kind == cast.SymEnumConst {
		return st
	}
	iv := st.get(id.Sym.ID)
	v := iv.v
	switch op {
	case cast.BinaryLt:
		v = v.Meet(overflow.Range(overflow.NegInf, satDec(bound.Hi)))
	case cast.BinaryLe:
		v = v.Meet(overflow.Range(overflow.NegInf, bound.Hi))
	case cast.BinaryGt:
		v = v.Meet(overflow.Range(satInc(bound.Lo), overflow.PosInf))
	case cast.BinaryGe:
		v = v.Meet(overflow.Range(bound.Lo, overflow.PosInf))
	case cast.BinaryEq:
		v = v.Meet(bound)
	case cast.BinaryNe:
		if z, exact := bound.Exact(); exact {
			if cur, curExact := v.Exact(); curExact && cur == z {
				return unreached()
			}
			if v.Lo == z {
				v.Lo = z + 1
			} else if v.Hi == z {
				v.Hi = z - 1
			}
		}
	default:
		return st
	}
	if v.IsEmpty() {
		return unreached()
	}
	iv.v = v
	return st.set(id.Sym.ID, iv)
}

func negateCompare(op cast.BinaryOp) cast.BinaryOp {
	switch op {
	case cast.BinaryLt:
		return cast.BinaryGe
	case cast.BinaryLe:
		return cast.BinaryGt
	case cast.BinaryGt:
		return cast.BinaryLe
	case cast.BinaryGe:
		return cast.BinaryLt
	case cast.BinaryEq:
		return cast.BinaryNe
	case cast.BinaryNe:
		return cast.BinaryEq
	}
	return op
}

func flipCompare(op cast.BinaryOp) cast.BinaryOp {
	switch op {
	case cast.BinaryLt:
		return cast.BinaryGt
	case cast.BinaryLe:
		return cast.BinaryGe
	case cast.BinaryGt:
		return cast.BinaryLt
	case cast.BinaryGe:
		return cast.BinaryLe
	}
	return op
}

// --- helpers ----------------------------------------------------------------

// satInc/satDec step a bound without walking off a sentinel: an
// infinity stays an infinity, so refined intervals never carry huge
// finite bounds that would read as genuine values later.
func satInc(n int64) int64 {
	if n >= overflow.PosInf || n <= overflow.NegInf {
		return n
	}
	return n + 1
}

func satDec(n int64) int64 {
	if n >= overflow.PosInf || n <= overflow.NegInf {
		return n
	}
	return n - 1
}

func argAt(call *cast.CallExpr, i int) cast.Expr {
	if i >= 0 && i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// constOf evaluates compile-time integer constants (literals, sizeof,
// enum constants).
func constOf(e cast.Expr) (int64, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return x.Value, true
	case *cast.CharLit:
		return int64(x.Value), true
	case *cast.SizeofExpr:
		if x.OfType != nil && x.OfType.Size() >= 0 {
			return int64(x.OfType.Size()), true
		}
		if x.Operand != nil && x.Operand.Type() != nil && x.Operand.Type().Size() >= 0 {
			return int64(x.Operand.Type().Size()), true
		}
	case *cast.Ident:
		if x.Sym != nil && x.Sym.Kind == cast.SymEnumConst {
			if en, ok := ctype.Unqualify(x.Sym.Type).(*ctype.Enum); ok {
				for _, c := range en.Consts {
					if c.Name == x.Name {
						return c.Value, true
					}
				}
			}
		}
	}
	return 0, false
}
