package overflow

import (
	"strings"
	"testing"

	"repro/internal/ctoken"
)

func ext(pos, end int) ctoken.Extent {
	return ctoken.Extent{Pos: ctoken.Pos(pos), End: ctoken.Pos(end)}
}

func TestMemoLoadCopiesAndRecomputesPos(t *testing.T) {
	m := NewMemo()
	m.BeginRun()
	m.Store("k", []Finding{{CWE: 121, Extent: ext(5, 9), Contexts: []string{"main>f"}}})

	file := ctoken.NewFile("x.c", "abc\ndefghij\n")
	got, ok := m.Load("k", file)
	if !ok || len(got) != 1 {
		t.Fatalf("Load: ok=%v n=%d", ok, len(got))
	}
	if got[0].Pos.Line != 2 {
		t.Fatalf("Pos not recomputed: %+v", got[0].Pos)
	}
	// Mutating the returned copy must not leak into the store.
	got[0].Contexts[0] = "mutated"
	got2, _ := m.Load("k", file)
	if got2[0].Contexts[0] != "main>f" {
		t.Fatal("Load returned shared Contexts storage")
	}
	if m.Hits() != 2 || m.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d", m.Hits(), m.Misses())
	}
}

func TestMemoPrunesStaleEntries(t *testing.T) {
	m := NewMemo()
	m.BeginRun()
	m.Store("old", nil)
	// Three runs without a hit on "old": pruned on the third.
	m.BeginRun()
	m.BeginRun()
	m.BeginRun()
	if m.Len() != 0 {
		t.Fatalf("stale entry survived pruning: len=%d", m.Len())
	}
	if _, ok := m.Load("old", nil); ok {
		t.Fatal("pruned entry still loadable")
	}
}

func TestMemoRemapDropsInexactEntries(t *testing.T) {
	m := NewMemo()
	m.BeginRun()
	m.Store("shifted", []Finding{{Extent: ext(10, 20)}})
	m.Store("touched", []Finding{{Extent: ext(30, 40)}})

	// Simulated edit: everything shifts +2; extents starting at 30 were
	// landed inside (inexact).
	m.Remap(func(e ctoken.Extent) (ctoken.Extent, bool) {
		if e.Pos == 30 {
			return e, false
		}
		return ctoken.Extent{Pos: e.Pos + 2, End: e.End + 2}, true
	})

	if got, ok := m.Load("shifted", nil); !ok || got[0].Extent != ext(12, 22) {
		t.Fatalf("exact entry not shifted: ok=%v %+v", ok, got)
	}
	if _, ok := m.Load("touched", nil); ok {
		t.Fatal("inexact entry survived Remap")
	}
}

func TestMemoNilSafety(t *testing.T) {
	var m *Memo
	m.BeginRun()
	m.Remap(func(e ctoken.Extent) (ctoken.Extent, bool) { return e, true })
	if m.Hits() != 0 || m.Misses() != 0 || m.Len() != 0 {
		t.Fatal("nil memo accounting must be zero")
	}
}

func TestStableSeedKeyOrdersByParamPosition(t *testing.T) {
	paramIndex := map[int]int{42: 1, 7: 0}
	a := StableSeedKey(paramIndex, map[int]string{42: "B", 7: "A"})
	b := StableSeedKey(paramIndex, map[int]string{7: "A", 42: "B"})
	if a != b {
		t.Fatalf("iteration order leaked into key: %q vs %q", a, b)
	}
	if want := "0=A;1=B;"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if StableSeedKey(paramIndex, nil) != "" {
		t.Fatal("empty seed must serialize empty")
	}
}

func TestStableSeedKeyRefusesNonParamSymbols(t *testing.T) {
	key := StableSeedKey(map[int]int{1: 0}, map[int]string{99: "X"})
	if !strings.Contains(key, "unstable") {
		t.Fatalf("non-parameter seed produced a reusable key: %q", key)
	}
}

func TestPassKeysDisjoint(t *testing.T) {
	p1 := Pass1Key("ovf", "2|t", "f", "h")
	p2 := Pass2Key("ovf", "2|t", "h", []string{"f"}, "", 0)
	if p1 == p2 {
		t.Fatal("pass-1 and pass-2 keys collide")
	}
	if Pass1Key("ovf", "s", "f", "h") == Pass1Key("int", "s", "f", "h") {
		t.Fatal("oracle tags must separate key spaces")
	}
	if Pass2Key("ovf", "s", "h", []string{"a", "b"}, "x", 1) ==
		Pass2Key("ovf", "s", "h", []string{"a"}, "b\x00x", 1) {
		t.Fatal("chain/seed boundary ambiguity")
	}
}
