// Package callgraph builds the static call graph of a translation unit —
// one of the base analyses OpenRefactory/C provides (Section III-A).
// Calls through function pointers are recorded as unresolved edges;
// clients that need soundness (internal/interproc) treat unresolved calls
// conservatively.
package callgraph

import (
	"sort"

	"repro/internal/cast"
)

// Edge is one call site.
type Edge struct {
	// Caller is the enclosing function definition.
	Caller *cast.FuncDef
	// Call is the call expression.
	Call *cast.CallExpr
	// Callee is the called function definition when it is defined in this
	// unit; nil for external or unresolved calls.
	Callee *cast.FuncDef
	// CalleeName is the spelled name of the callee ("" for calls through
	// expressions).
	CalleeName string
}

// Graph is the static call graph.
type Graph struct {
	unit  *cast.TranslationUnit
	edges []Edge
	// out indexes edges by caller name.
	out map[string][]int
	// in indexes edges by callee name.
	in map[string][]int
}

// Build constructs the call graph for the unit.
func Build(unit *cast.TranslationUnit) *Graph {
	g := &Graph{
		unit: unit,
		out:  make(map[string][]int),
		in:   make(map[string][]int),
	}
	defs := make(map[string]*cast.FuncDef, len(unit.Funcs))
	for _, f := range unit.Funcs {
		defs[f.Name] = f
	}
	for _, f := range unit.Funcs {
		cast.Inspect(f.Body, func(n cast.Node) bool {
			call, ok := n.(*cast.CallExpr)
			if !ok {
				return true
			}
			name := call.Callee()
			e := Edge{
				Caller:     f,
				Call:       call,
				CalleeName: name,
				Callee:     defs[name],
			}
			idx := len(g.edges)
			g.edges = append(g.edges, e)
			g.out[f.Name] = append(g.out[f.Name], idx)
			if name != "" {
				g.in[name] = append(g.in[name], idx)
			}
			return true
		})
	}
	return g
}

// Edges returns all call edges in source order.
func (g *Graph) Edges() []Edge { return g.edges }

// CallsFrom returns the call edges out of the named function.
func (g *Graph) CallsFrom(caller string) []Edge {
	return g.gather(g.out[caller])
}

// CallsTo returns the call edges targeting the named function.
func (g *Graph) CallsTo(callee string) []Edge {
	return g.gather(g.in[callee])
}

func (g *Graph) gather(idx []int) []Edge {
	out := make([]Edge, 0, len(idx))
	for _, i := range idx {
		out = append(out, g.edges[i])
	}
	return out
}

// Callees returns the unique callee names reachable from caller in one
// step, sorted.
func (g *Graph) Callees(caller string) []string {
	seen := make(map[string]struct{})
	for _, e := range g.CallsFrom(caller) {
		if e.CalleeName != "" {
			seen[e.CalleeName] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Roots returns the functions defined in the unit that no in-unit call
// targets — the entry points interprocedural propagation starts from. A
// unit whose every function is called (e.g. mutual recursion) yields all
// functions, so propagation still has a starting set.
func (g *Graph) Roots() []*cast.FuncDef {
	var roots []*cast.FuncDef
	for _, f := range g.unit.Funcs {
		if len(g.in[f.Name]) == 0 {
			roots = append(roots, f)
		}
	}
	if len(roots) == 0 {
		roots = append(roots, g.unit.Funcs...)
	}
	return roots
}

// TransitiveCallees returns every function name reachable from the given
// root, excluding the root itself unless it is recursive.
func (g *Graph) TransitiveCallees(root string) []string {
	seen := make(map[string]struct{})
	var walk func(name string)
	walk = func(name string) {
		for _, e := range g.CallsFrom(name) {
			if e.CalleeName == "" {
				continue
			}
			if _, ok := seen[e.CalleeName]; ok {
				continue
			}
			seen[e.CalleeName] = struct{}{}
			if e.Callee != nil {
				walk(e.CalleeName)
			}
		}
	}
	walk(root)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
