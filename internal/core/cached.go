package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/overflow"
)

// fingerprintVersion is baked into every cache key; bump it whenever
// the transformations, the oracle, or the cached payload shape change in
// a result-affecting way, and every stale entry becomes unreachable at
// once — content-addressed caches are invalidated by construction, not
// by deletion.
// v2: the integer-overflow oracle joined the lint report (Options.Checks
// and Finding.Guard), so v1 lint entries are stale by shape and content.
// v3: SLR's repair dialect became pluggable (Options.Backend entered the
// key and Report gained Backend/SiteResult.SafeName), so v2 fix entries
// are stale by shape.
// v4: project mode — per-header content (Options.IncludeHash) and
// cross-TU call seeds (Options.ExternSeeds) entered the key, so a file
// re-fixed after another TU changed what it proves about it cannot be
// answered from a stale single-file entry.
const fingerprintVersion = "v4"

// fingerprint renders every result-affecting option into the cache key.
// Timeout is deliberately absent: a completed full-fidelity run does not
// depend on how much wall clock it was allowed (a run that exceeds its
// deadline fails and failures are never cached), so the same entry can
// serve requests with different deadlines. Budget and KeepGoing do
// shape results (degradation points) and are part of the key — though
// degraded results are never stored anyway, an in-budget clean run under
// budget B proves nothing about budget B' < B.
func (o Options) fingerprint(kind string) string {
	fp := fmt.Sprintf("%s|%s|slr=%t|str=%t|at=%d|support=%t|lint=%t|checks=%s|backend=%s|budget=%d|keep=%t",
		fingerprintVersion, kind, o.DisableSLR, o.DisableSTR, o.SelectOffset,
		o.EmitSupport, o.Lint, canonicalChecks(o.Checks), canonicalBackend(o.Backend), o.Budget, o.KeepGoing)
	// Project-mode inputs append only when present, so single-file keys
	// are unchanged within a fingerprint version.
	if o.IncludeHash != "" {
		fp += "|inc=" + o.IncludeHash
	}
	if x := overflow.SeedFingerprint(o.ExternSeeds); x != "" {
		fp += "|xtu=" + x
	}
	return fp
}

// cacheKey derives the content-addressed key for one request: the
// source text dominates (sha256 of content), the options fingerprint
// separates semantically different runs over the same text, and the
// diagnostic filename is included because reports embed it in every
// position — two identical sources under different names must not trade
// diagnostics.
func cacheKey(kind, filename, source string, opts Options) string {
	return cache.Key(source, opts.fingerprint(kind), filename)
}

// CacheKey exposes the content-addressed request key (cacheKey) to the
// routing tier: the fleet router consistent-hashes requests by exactly
// the fingerprint the result cache stores them under, so all identical
// requests land on (and warm) the same shard. kind is "fix" or "lint".
func CacheKey(kind, filename, source string, opts Options) string {
	return cacheKey(kind, filename, source, opts)
}

// FixCached is Fix through the content-addressed result cache: a
// repeated identical request is answered without parsing or solving
// anything, and concurrent identical requests collapse into a single
// computation. hit reports whether this call avoided the pipeline. Only
// full-fidelity reports (empty Degraded) are stored; degraded or failed
// runs are recomputed every time. With a nil opts.Cache it degenerates
// to a plain Fix.
func FixCached(ctx context.Context, filename, source string, opts Options) (*Report, bool, error) {
	c := opts.Cache
	if c == nil {
		rep, err := fix(ctx, filename, source, opts)
		return rep, false, err
	}
	var computed *Report
	lookup := time.Now()
	payload, _, err := c.Do(cacheKey("fix", filename, source, opts), func() ([]byte, bool, error) {
		// The miss span wraps the whole recomputation, so the fix span
		// (and every analysis span) nests inside it in the trace.
		sp := opts.Tracer.Start(ctx, obs.StageCacheMiss, filename)
		defer sp.End()
		rep, err := fix(ctx, filename, source, opts)
		if err != nil {
			return nil, false, err
		}
		computed = rep
		b, err := json.Marshal(rep)
		if err != nil {
			return nil, false, err
		}
		return b, len(rep.Degraded) == 0, nil
	})
	if err != nil {
		return nil, false, err
	}
	if computed != nil {
		// This call ran the pipeline itself; hand back the original
		// report rather than a decode of it.
		return computed, false, nil
	}
	rep := new(Report)
	if err := json.Unmarshal(payload, rep); err != nil {
		// A payload that does not decode is treated exactly like a
		// corrupt disk entry: recompute, never fail the request.
		rep, err := fix(ctx, filename, source, opts)
		return rep, false, err
	}
	opts.Tracer.RecordSince(ctx, obs.StageCacheHit, filename, lookup)
	rep.Cached = true
	return rep, true, nil
}

// AnalyzeCached is AnalyzeReport through the result cache, with the
// same contract as FixCached: hit reports an avoided computation, and
// only full-fidelity lint reports are stored.
func AnalyzeCached(ctx context.Context, filename, source string, opts Options) (*LintReport, bool, error) {
	c := opts.Cache
	if c == nil {
		rep, err := analyzeReport(ctx, filename, source, opts)
		return rep, false, err
	}
	var computed *LintReport
	lookup := time.Now()
	payload, _, err := c.Do(cacheKey("lint", filename, source, opts), func() ([]byte, bool, error) {
		sp := opts.Tracer.Start(ctx, obs.StageCacheMiss, filename)
		defer sp.End()
		rep, err := analyzeReport(ctx, filename, source, opts)
		if err != nil {
			return nil, false, err
		}
		computed = rep
		b, err := json.Marshal(rep)
		if err != nil {
			return nil, false, err
		}
		return b, len(rep.Degraded) == 0, nil
	})
	if err != nil {
		return nil, false, err
	}
	if computed != nil {
		return computed, false, nil
	}
	rep := new(LintReport)
	if err := json.Unmarshal(payload, rep); err != nil {
		rep, err := analyzeReport(ctx, filename, source, opts)
		return rep, false, err
	}
	opts.Tracer.RecordSince(ctx, obs.StageCacheHit, filename, lookup)
	rep.Cached = true
	return rep, true, nil
}
