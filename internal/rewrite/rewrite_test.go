package rewrite

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ctoken"
)

func ext(a, b int) ctoken.Extent {
	return ctoken.Extent{Pos: ctoken.Pos(a), End: ctoken.Pos(b)}
}

func TestReplaceSingle(t *testing.T) {
	var s Set
	s.Replace(ext(4, 7), "XYZ", "test")
	out, err := s.Apply("abcdDEFhij")
	if err != nil {
		t.Fatal(err)
	}
	if out != "abcdXYZhij" {
		t.Fatalf("got %q", out)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	var s Set
	src := "hello world"
	s.InsertBefore(ext(6, 11), ">>", "")
	s.InsertAfter(ext(0, 5), "!", "")
	out, err := s.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello! >>world" {
		t.Fatalf("got %q", out)
	}
}

func TestMultipleEditsOutOfOrder(t *testing.T) {
	var s Set
	src := "0123456789"
	s.Replace(ext(8, 9), "Y", "")
	s.Replace(ext(1, 2), "X", "")
	s.Replace(ext(4, 6), "", "delete")
	out, err := s.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if out != "0X2367Y9" {
		t.Fatalf("got %q", out)
	}
}

func TestOverlapRejected(t *testing.T) {
	var s Set
	s.Replace(ext(2, 6), "A", "first")
	s.Replace(ext(4, 8), "B", "second")
	if _, err := s.Apply("0123456789"); err == nil {
		t.Fatal("overlapping edits must be rejected")
	}
}

func TestAdjacentEditsAllowed(t *testing.T) {
	var s Set
	s.Replace(ext(2, 4), "A", "")
	s.Replace(ext(4, 6), "B", "")
	out, err := s.Apply("0123456789")
	if err != nil {
		t.Fatal(err)
	}
	if out != "01AB6789" {
		t.Fatalf("got %q", out)
	}
}

func TestInvalidExtentRejected(t *testing.T) {
	var s Set
	s.Replace(ext(5, 50), "A", "")
	if _, err := s.Apply("short"); err == nil {
		t.Fatal("extent past the end must be rejected")
	}
}

func TestSamePositionInsertionsKeepQueueOrder(t *testing.T) {
	var s Set
	s.InsertBefore(ext(3, 5), "A", "")
	s.InsertBefore(ext(3, 5), "B", "")
	out, err := s.Apply("0123456789")
	if err != nil {
		t.Fatal(err)
	}
	if out != "012AB3456789" {
		t.Fatalf("got %q", out)
	}
}

func TestEditsAccessorSorted(t *testing.T) {
	var s Set
	s.Replace(ext(7, 8), "b", "")
	s.Replace(ext(1, 2), "a", "")
	edits := s.Edits()
	if len(edits) != 2 || edits[0].Extent.Pos != 1 || edits[1].Extent.Pos != 7 {
		t.Fatalf("edits not sorted: %+v", edits)
	}
	if s.Len() != 2 {
		t.Fatalf("len: %d", s.Len())
	}
}

// TestPropertyNonOverlappingEditsSpliceCorrectly generates random
// non-overlapping replacements and checks Apply against a reference
// splice.
func TestPropertyNonOverlappingEditsSpliceCorrectly(t *testing.T) {
	f := func(seed uint32, raw []byte) bool {
		src := strings.Repeat("abcdefghij", 8)
		// Derive up to 6 non-overlapping edits from the fuzz input.
		type edit struct {
			pos, end int
			text     string
		}
		var edits []edit
		cursor := 0
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			if n <= 0 {
				return 0
			}
			return int(r>>16) % n
		}
		for len(edits) < 6 && cursor < len(src)-2 {
			start := cursor + next(5)
			if start >= len(src) {
				break
			}
			length := next(4)
			end := start + length
			if end > len(src) {
				end = len(src)
			}
			text := strings.Repeat("X", next(3))
			edits = append(edits, edit{pos: start, end: end, text: text})
			cursor = end + 1
		}
		var s Set
		for _, e := range edits {
			s.Replace(ext(e.pos, e.end), e.text, "prop")
		}
		got, err := s.Apply(src)
		if err != nil {
			return false
		}
		// Reference splice.
		sort.Slice(edits, func(i, j int) bool { return edits[i].pos < edits[j].pos })
		var sb strings.Builder
		prev := 0
		for _, e := range edits {
			sb.WriteString(src[prev:e.pos])
			sb.WriteString(e.text)
			prev = e.end
		}
		sb.WriteString(src[prev:])
		return got == sb.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
