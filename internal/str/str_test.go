package str

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/stralloc"
)

// runAll parses src and applies STR to every candidate.
func runAll(t *testing.T, src string) *FileResult {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := NewTransformer(tu).ApplyAll()
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	return res
}

// reparse verifies the transformed output (with the stralloc header) still
// parses.
func reparse(t *testing.T, res *FileResult) {
	t.Helper()
	src := res.NewSource
	if res.NeedsStralloc {
		src = stralloc.Header() + "\n" + src
	}
	if _, err := cparse.Parse("out.c", src); err != nil {
		t.Fatalf("transformed output does not parse: %v\n--- output ---\n%s", err, src)
	}
}

func TestDeclarationPattern2(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char* buf;
    buf = "abc";
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	for _, want := range []string{
		"stralloc *buf;",
		"stralloc ssss_buf = {0,0,0};",
		"buf = &ssss_buf;",
		`stralloc_copybuf(buf, "abc", strlen("abc"))`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	reparse(t, res)
}

func TestArrayCarriesCapacity(t *testing.T) {
	// The zlib example (Section III-C): char buf[1024] records a = 1024.
	res := runAll(t, `
void f(void) {
    char buf[1024];
    char *infile;
    infile = buf;
    strcat(infile, ".gz");
}
`)
	if res.AppliedCount() != 2 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	for _, want := range []string{
		"stralloc_ready(buf, 1024);",
		"infile = buf;", // pattern 5: no change
		`stralloc_catbuf(infile, ".gz", strlen(".gz"))`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	reparse(t, res)
}

func TestPaperCWE126Example(t *testing.T) {
	// Section II-B4: buffer over-read fixed by the safe data structure.
	res := runAll(t, `
void f(void) {
    char* data;
    char dest[100];
    memset(dest, 'C', 100);
    data[100] = dest[100];
}
`)
	if res.AppliedCount() != 2 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	for _, want := range []string{
		"stralloc_memset(dest, 'C', 100)",
		"stralloc_dereference_replace_by(data, 100, stralloc_get_dereferenced_char_at(dest, 100))",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	reparse(t, res)
}

func TestTableIIPatterns(t *testing.T) {
	// Each case exercises one Table II row end to end.
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "3 allocation",
			src:  `void f(void){ char *buf; buf = malloc(1024); }`,
			want: []string{"buf->s = malloc(1024); buf->f = buf->s; buf->a = 1024;"},
		},
		{
			name: "4 null assignment unchanged",
			src:  `void f(void){ char *buf; buf = 0; buf = NULL; }`,
			want: []string{"buf = 0;", "buf = NULL;"},
		},
		{
			name: "5 buffer to buffer unchanged",
			src:  `void f(void){ char *buf1; char *buf2; buf2 = "x"; buf1 = buf2; }`,
			want: []string{"buf1 = buf2;"},
		},
		{
			name: "6 string literal",
			src:  `void f(void){ char *buf; buf = "text"; }`,
			want: []string{`stralloc_copybuf(buf, "text", strlen("text"))`},
		},
		{
			name: "7 cast expression",
			src:  `void f(long exp){ char *buf; buf = (char*)(exp); }`,
			want: []string{"stralloc_copybuf(buf, (char*)(exp), sizeof((char*)(exp)))"},
		},
		{
			name: "8 increment",
			src:  `void f(void){ char *buf; buf = "x"; buf++; }`,
			want: []string{"stralloc_increment_by(buf, 1);"},
		},
		{
			name: "9 decrement compound",
			src:  `void f(void){ char *buf; buf = "xyz"; buf -= 3; }`,
			want: []string{"stralloc_decrement_by(buf, 3);"},
		},
		{
			name: "10 sizeof in binary expression",
			src:  `void f(void){ char *buf; int k; buf = "x"; k = sizeof(buf) < 3; }`,
			want: []string{"buf->a < 3"},
		},
		{
			name: "11 array access read",
			src:  `void f(void){ char *buf; char c; buf = "x"; c = buf[1]; }`,
			want: []string{"c = stralloc_get_dereferenced_char_at(buf, 1);"},
		},
		{
			name: "12 array element write",
			src:  `void f(void){ char *buf; buf = "x"; buf[1] = 'b'; }`,
			want: []string{"stralloc_dereference_replace_by(buf, 1, 'b');"},
		},
		{
			name: "13 element to element",
			src:  `void f(void){ char *buf1; char *buf2; buf1 = "a"; buf2 = "b"; buf1[0] = buf2[0]; }`,
			want: []string{"stralloc_dereference_replace_by(buf1, 0, stralloc_get_dereferenced_char_at(buf2, 0));"},
		},
		{
			name: "14 dereference assignment",
			src:  `void f(void){ char *buf; buf = "xxxxx"; *(buf+4) = 'a'; }`,
			want: []string{"stralloc_dereference_replace_by(buf, 4, 'a');"},
		},
		{
			name: "15 dereference binary rhs",
			src:  `void f(char a, char b){ char *buf; buf = "xx"; *(buf+1) = a + b; }`,
			want: []string{"stralloc_dereference_replace_by(buf, 1, a + b);"},
		},
		{
			name: "16 strlen",
			src:  `void f(void){ char *buf; unsigned long n; buf = "x"; n = strlen(buf); }`,
			want: []string{"n = buf->len;"},
		},
		{
			name: "17 user function read-only arg",
			src: `
int foo(char *s) { return s[0]; }
void f(void){ char *buf; buf = "x"; foo(buf); }`,
			want: []string{"foo(buf->s);"},
		},
		{
			name: "18 conditional",
			src:  `void f(void){ char *buf; buf = "a"; if (buf[0] == 'a') { buf[0] = 'b'; } }`,
			want: []string{"if (stralloc_get_dereferenced_char_at(buf, 0) == 'a')"},
		},
		{
			name: "deref read",
			src:  `void f(void){ char *buf; char c; buf = "x"; c = *buf; }`,
			want: []string{"c = stralloc_get_dereferenced_char_at(buf, 0);"},
		},
		{
			name: "strcpy from literal",
			src:  `void f(void){ char *buf; strcpy(buf, "hello"); }`,
			want: []string{`stralloc_copybuf(buf, "hello", strlen("hello"));`},
		},
		{
			name: "strcpy between targets",
			src:  `void f(void){ char *a; char *b; b = "x"; strcpy(a, b); }`,
			want: []string{"stralloc_copy(a, b);"},
		},
		{
			name: "strcpy from plain char*",
			src:  `void f(char *ext){ char *a; strcpy(a, ext); }`,
			want: []string{"stralloc_copys(a, ext);"},
		},
		{
			name: "strdup allocation tracks capacity",
			src:  `void f(char *src){ char *buf; buf = strdup(src); buf[0] = 'x'; }`,
			want: []string{"buf->s = strdup(src); buf->f = buf->s; buf->a = strlen(src) + 1;"},
		},
		{
			name: "memcpy to target",
			src:  `void f(char *src){ char *buf; memcpy(buf, src, 10); }`,
			want: []string{"stralloc_copybuf(buf, src, 10);"},
		},
		{
			name: "read-only library arg",
			src:  `void f(void){ char *buf; buf = "x"; printf("%s", buf); }`,
			want: []string{`printf("%s", buf->s);`},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := runAll(t, tt.src)
			for _, want := range tt.want {
				if !strings.Contains(res.NewSource, want) {
					t.Fatalf("missing %q in output:\n%s", want, res.NewSource)
				}
			}
			reparse(t, res)
		})
	}
}

func TestPreconditionGlobalRejected(t *testing.T) {
	// Globals are not candidates at all (precondition 2 excludes them
	// before counting).
	res := runAll(t, `
char *global_buf;
void f(void) {
    global_buf = "x";
}
`)
	if len(res.Vars) != 0 {
		t.Fatalf("global must not be a candidate: %+v", res.Vars)
	}
	if res.NewSource != "\nchar *global_buf;\nvoid f(void) {\n    global_buf = \"x\";\n}\n" {
		t.Fatalf("source must be untouched:\n%s", res.NewSource)
	}
}

func TestPreconditionParamNotCandidate(t *testing.T) {
	res := runAll(t, `
void f(char *param) {
    param = "x";
}
`)
	if len(res.Vars) != 0 {
		t.Fatalf("parameters must not be candidates: %+v", res.Vars)
	}
}

func TestPreconditionUnsupportedLibrary(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char buf[64];
    gets(buf);
}
`)
	if len(res.Vars) != 1 {
		t.Fatalf("candidates: got %d", len(res.Vars))
	}
	if res.Vars[0].Applied {
		t.Fatal("variable used in gets must be refused")
	}
	if res.Vars[0].Reason != FailUnsupportedLib {
		t.Fatalf("reason: got %v", res.Vars[0].Reason)
	}
}

func TestPreconditionUserFnMayModify(t *testing.T) {
	res := runAll(t, `
void fill(char *out) { out[0] = 'x'; }
void f(void) {
    char *buf;
    buf = malloc(10);
    fill(buf);
}
`)
	if len(res.Vars) != 1 {
		t.Fatalf("candidates: got %d (%+v)", len(res.Vars), res.Vars)
	}
	if res.Vars[0].Applied {
		t.Fatal("buffer passed to modifying function must be refused")
	}
	if res.Vars[0].Reason != FailUserFnMayModify {
		t.Fatalf("reason: got %v (%s)", res.Vars[0].Reason, res.Vars[0].Detail)
	}
	if len(res.Log) == 0 {
		t.Fatal("a detailed log message must explain the refusal (Section IV-B)")
	}
}

func TestUserFnReadOnlyTransitively(t *testing.T) {
	// reader() passes its parameter to strlen only: no modification, so
	// the caller's buffer stays eligible.
	res := runAll(t, `
unsigned long reader(char *s) { return strlen(s); }
void f(void) {
    char *buf;
    buf = "abc";
    reader(buf);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	if !strings.Contains(res.NewSource, "reader(buf->s);") {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res)
}

func TestUserFnModifiesTransitively(t *testing.T) {
	// outer() forwards to writer() which writes: the modification must be
	// found through the call-graph fixpoint.
	res := runAll(t, `
void writer(char *s) { s[0] = 'w'; }
void outer(char *s) { writer(s); }
void f(void) {
    char *buf;
    buf = malloc(4);
    outer(buf);
}
`)
	if res.Vars[0].Applied {
		t.Fatal("transitive modification must be detected")
	}
	if res.Vars[0].Reason != FailUserFnMayModify {
		t.Fatalf("reason: got %v", res.Vars[0].Reason)
	}
}

func TestAddressTakenRejected(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *buf;
    char **pp;
    buf = "x";
    pp = &buf;
}
`)
	for _, v := range res.Vars {
		if v.Name == "buf" && v.Applied {
			t.Fatal("address-taken buffer must be refused")
		}
	}
}

func TestMixedEligibility(t *testing.T) {
	// One variable passes, one fails; the failing one's uses stay intact.
	res := runAll(t, `
void f(void) {
    char *good;
    char bad[32];
    good = "x";
    gets(bad);
    good[0] = 'y';
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	if !strings.Contains(out, "gets(bad);") {
		t.Fatalf("failed variable's use must stay:\n%s", out)
	}
	if !strings.Contains(out, "stralloc_dereference_replace_by(good, 0, 'y');") {
		t.Fatalf("eligible variable must be rewritten:\n%s", out)
	}
	if !strings.Contains(out, "char bad[32];") {
		t.Fatalf("failed variable's declaration must stay:\n%s", out)
	}
	reparse(t, res)
}

func TestMultiDeclaratorStatement(t *testing.T) {
	// The paper's CWE-126 example declares two strallocs in one
	// statement.
	res := runAll(t, `
void f(void) {
    char *data, *dest;
    data = "a";
    dest = "b";
}
`)
	if res.AppliedCount() != 2 {
		t.Fatalf("applied: got %d", res.AppliedCount())
	}
	out := res.NewSource
	if !strings.Contains(out, "stralloc *data, *dest;") {
		t.Fatalf("combined declaration expected:\n%s", out)
	}
	if !strings.Contains(out, "ssss_data = {0,0,0}, ssss_dest = {0,0,0};") {
		t.Fatalf("combined backing declaration expected:\n%s", out)
	}
	reparse(t, res)
}

func TestApplyVarSelectsOne(t *testing.T) {
	src := `
void f(void) {
    char *a;
    char *b;
    a = "x";
    b = "y";
}
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewTransformer(tu).ApplyVar("f", "b")
	if err != nil {
		t.Fatal(err)
	}
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d", res.AppliedCount())
	}
	out := res.NewSource
	if !strings.Contains(out, "char *a;") {
		t.Fatalf("unselected variable must stay:\n%s", out)
	}
	if !strings.Contains(out, "stralloc *b;") {
		t.Fatalf("selected variable must be transformed:\n%s", out)
	}
}

func TestDeclWithInitMalloc(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *buf = malloc(256);
    buf[0] = 'x';
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	if !strings.Contains(out, "buf->s = malloc(256); buf->f = buf->s; buf->a = 256;") {
		t.Fatalf("allocation init missing:\n%s", out)
	}
	reparse(t, res)
}

func TestTableIIDataComplete(t *testing.T) {
	if len(TableII) != 18 {
		t.Fatalf("Table II rows: got %d, want 18", len(TableII))
	}
	seen := make(map[int]bool)
	for _, p := range TableII {
		if seen[p.ID] {
			t.Errorf("duplicate pattern ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.Before == "" || p.After == "" || p.Group == "" {
			t.Errorf("incomplete pattern %d", p.ID)
		}
	}
}

func TestFailReasonStrings(t *testing.T) {
	for _, r := range []FailReason{FailNone, FailNotLocal, FailUnsupportedLib, FailUserFnMayModify, FailUnsupportedUse} {
		if r.String() == "" {
			t.Errorf("reason %d has no description", r)
		}
	}
}
