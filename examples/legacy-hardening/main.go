// Legacy hardening: batch-apply the transformations across a project.
//
// The paper's maintenance scenario (Section I): a maintainer points the
// tool at a legacy codebase and fixes the root causes behind buffer
// overflows wholesale — SLR on every unsafe library call, STR on every
// eligible local char pointer. This example runs the batch over the
// synthetic zlib-like project and prints the per-file change log,
// including which sites were refused and why (the paper's conservative
// precondition behavior).
//
//	go run ./examples/legacy-hardening
package main

import (
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

func run() int {
	project, ok := corpus.ProjectByName("zlib", 0)
	if !ok {
		fmt.Fprintln(os.Stderr, "project not found")
		return 1
	}
	var (
		slrSites, slrApplied int
		strVars, strApplied  int
		refusals             []string
	)
	for _, file := range project.Files {
		rep, err := cfix.Fix(file.Name, file.Source, cfix.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", file.Name, err)
			return 1
		}
		if rep.SLR != nil {
			slrSites += rep.SLR.Candidates()
			slrApplied += rep.SLR.AppliedCount()
			for _, s := range rep.SLR.Sites {
				if !s.Applied {
					refusals = append(refusals,
						fmt.Sprintf("%s: SLR left %s in place: %v", s.Pos, s.Function, s.Failure))
				}
			}
		}
		if rep.STR != nil {
			for _, v := range rep.STR.Vars {
				if !v.IsPointer {
					continue
				}
				strVars++
				if v.Applied {
					strApplied++
				} else {
					refusals = append(refusals,
						fmt.Sprintf("%s: STR left %s in place: %s (%s)", v.Pos, v.Name, v.Reason, v.Detail))
				}
			}
		}
	}
	fmt.Printf("project %s: %d files\n", project.Name, len(project.Files))
	fmt.Printf("SLR: %d/%d unsafe calls replaced\n", slrApplied, slrSites)
	fmt.Printf("STR: %d/%d local char pointers replaced\n", strApplied, strVars)
	fmt.Println("\nconservative refusals (left for manual review):")
	for _, r := range refusals {
		fmt.Println("  " + r)
	}
	return 0
}
