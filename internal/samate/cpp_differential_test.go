package samate

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/cpp"
)

// TestCppDifferentialEquivalence is the project-mode safety net: every
// one of the corpus's 4505 programs routed through internal/cpp must
// yield byte-identical preprocessed text (the programs are directive-
// free, and the preprocessor copies verbatim between interesting
// points), a single exact mapping segment, and — through the full
// project pipeline — byte-identical fixed source and findings to the
// direct path. Any divergence means the preprocessor or the extent
// remapping changed an analysis result, which project mode must never
// do on plain input.
func TestCppDifferentialEquivalence(t *testing.T) {
	opts := core.Options{Lint: true, SelectOffset: -1}
	checked := 0
	for cwe, n := range TableIIICounts {
		progs := Generate(cwe, n)
		if testing.Short() && len(progs) > 25 {
			progs = progs[:25]
		}
		for _, p := range progs {
			name := p.ID + ".c"
			pp, err := cpp.Preprocess(name, p.Source, cpp.Options{})
			if err != nil {
				t.Fatalf("%s: preprocess: %v", name, err)
			}
			if pp.Text != p.Source {
				t.Fatalf("%s: preprocessed text differs from source", name)
			}
			if segs := pp.Map.Segments(); len(segs) != 1 || segs[0].Kind != cpp.SegDirect {
				t.Fatalf("%s: expected one direct segment, got %+v", name, segs)
			}

			direct, err := core.Fix(context.Background(), name, p.Source, opts)
			if err != nil {
				t.Fatalf("%s: direct fix: %v", name, err)
			}
			viaCpp, _, err := core.FixPreprocessed(context.Background(), name, p.Source, cpp.Options{}, opts)
			if err != nil {
				t.Fatalf("%s: project fix: %v", name, err)
			}
			if direct.Source != viaCpp.Source {
				t.Fatalf("%s: fixed source differs:\n--- direct ---\n%s\n--- via cpp ---\n%s",
					name, direct.Source, viaCpp.Source)
			}
			df, _ := json.Marshal(direct.Findings)
			vf, _ := json.Marshal(viaCpp.Findings)
			if string(df) != string(vf) {
				t.Fatalf("%s: findings differ:\ndirect: %s\nvia cpp: %s", name, df, vf)
			}
			if direct.Summary() != viaCpp.Summary() {
				t.Fatalf("%s: summaries differ:\n%s\nvs\n%s", name, direct.Summary(), viaCpp.Summary())
			}
			checked++
		}
	}
	if !testing.Short() && checked != TotalPrograms() {
		t.Fatalf("checked %d programs, corpus has %d", checked, TotalPrograms())
	}
	t.Logf("differential held over %d programs", checked)
}
