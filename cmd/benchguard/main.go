// Command benchguard compares two `go test -bench` outputs and fails
// when the candidate regresses past a threshold. CI's observability
// gate runs BenchmarkObsOverhead in the default build (candidate) and
// again under `-tags cfix_notrace` (baseline, tracing compiled out) and
// rejects the build if the default build's no-tracer path costs more
// than 2% over the compiled-out build.
//
// Usage:
//
//	benchguard [-max-pct p] [-stat min|median] candidate.txt baseline.txt
//	benchguard -pipeline BENCH_pipeline.json -stage intflow [-max-share-pct p] [-require]
//	benchguard -incremental BENCH_incremental.json [-max-warm-p50-ms p]
//
// Each file is standard `go test -bench` output; with -count=N every
// benchmark contributes N samples. Samples are reduced with -stat (min
// by default: scheduler noise only ever adds time, so the minimum is
// the most stable estimate of the true cost) and the reduced values are
// compared per benchmark name. Benchmarks present in only one file are
// ignored; having no benchmark in common is an error.
//
// The second form gates one stage's share of a BENCH_pipeline.json
// report (cmd/experiments -bench-json): the stage's self time inside
// the pipeline-measured stages may not exceed -max-share-pct of their
// total. Supplementary stages — measured outside the fix pipeline, like
// the integer-overflow oracle the pipeline run keeps disabled — are
// excluded from both sides of that ratio, so a disabled oracle gates at
// 0%; the budget trips only if the default pipeline starts paying for
// it. An absent stage is 0% (pass) unless -require demands that the
// report carries at least a supplementary measurement of it.
//
// The third form gates a BENCH_incremental.json report (cfixlsp
// -bench): the median end-to-end latency of a warm incremental
// re-analysis — one didChange to publishDiagnostics round trip through
// the LSP loop — may not exceed -max-warm-p50-ms milliseconds.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() { os.Exit(run()) }

func run() int {
	maxPct := flag.Float64("max-pct", 2.0, "maximum allowed regression of candidate over baseline, in percent")
	stat := flag.String("stat", "min", "sample reduction: min or median")
	pipeline := flag.String("pipeline", "", "BENCH_pipeline.json report: gate one stage's share of pipeline self time")
	stage := flag.String("stage", "intflow", "with -pipeline: the stage to budget")
	maxShare := flag.Float64("max-share-pct", 2.0, "with -pipeline: maximum allowed share of pipeline self time, in percent")
	require := flag.Bool("require", false, "with -pipeline: fail when the report carries no measurement of the stage at all")
	incremental := flag.String("incremental", "", "BENCH_incremental.json report: gate the warm re-analysis median")
	maxWarmP50 := flag.Float64("max-warm-p50-ms", 10.0, "with -incremental: maximum allowed warm p50, in milliseconds")
	flag.Parse()
	if *incremental != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -incremental BENCH_incremental.json [-max-warm-p50-ms p]")
			return 2
		}
		return runIncremental(*incremental, *maxWarmP50)
	}
	if *pipeline != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -pipeline BENCH_pipeline.json -stage name [-max-share-pct p] [-require]")
			return 2
		}
		return runPipeline(*pipeline, *stage, *maxShare, *require)
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-max-pct p] [-stat min|median] candidate.txt baseline.txt")
		return 2
	}
	if *stat != "min" && *stat != "median" {
		fmt.Fprintf(os.Stderr, "benchguard: -stat %q: want min or median\n", *stat)
		return 2
	}

	cand, err := parseBench(flag.Arg(0))
	if err != nil {
		return fail("%v", err)
	}
	base, err := parseBench(flag.Arg(1))
	if err != nil {
		return fail("%v", err)
	}

	names := make([]string, 0, len(cand))
	for name := range cand {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fail("no benchmarks in common between %s and %s", flag.Arg(0), flag.Arg(1))
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		c := reduce(cand[name], *stat)
		b := reduce(base[name], *stat)
		pct := (c - b) / b * 100
		verdict := "ok"
		if pct > *maxPct {
			verdict = fmt.Sprintf("FAIL (> %.1f%%)", *maxPct)
			failed = true
		}
		fmt.Printf("%-40s candidate %12.0f ns/op  baseline %12.0f ns/op  %+6.2f%%  %s\n",
			name, c, b, pct, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: candidate regresses past the threshold")
		return 1
	}
	return 0
}

// pipelineReport is the slice of BENCH_pipeline.json this gate reads
// (experiments.BenchReport; decoding ignores the rest of the schema).
type pipelineReport struct {
	Stages []struct {
		Name          string `json:"name"`
		Count         int    `json:"count"`
		SelfUs        int64  `json:"self_us"`
		Supplementary bool   `json:"supplementary"`
	} `json:"stages"`
}

// runPipeline gates one stage's share of the pipeline self time in a
// BENCH_pipeline.json report.
func runPipeline(path, stage string, maxShare float64, require bool) int {
	f, err := os.Open(path)
	if err != nil {
		return fail("%v", err)
	}
	defer f.Close()
	var rep pipelineReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return fail("%s: %v", path, err)
	}
	if len(rep.Stages) == 0 {
		return fail("%s: no stages in report", path)
	}
	var total, inPipeline int64
	var supplementary int64
	seen := false
	for _, st := range rep.Stages {
		if st.Name == stage {
			seen = true
			if st.Supplementary {
				supplementary += st.SelfUs
				continue
			}
			inPipeline += st.SelfUs
		}
		if !st.Supplementary {
			total += st.SelfUs
		}
	}
	if !seen {
		if require {
			return fail("%s: stage %q not measured (and -require set)", path, stage)
		}
		fmt.Printf("stage %-12s absent from %s: share 0.00%% (<= %.1f%%) ok\n", stage, path, maxShare)
		return 0
	}
	if total == 0 {
		return fail("%s: pipeline stages carry no self time", path)
	}
	share := float64(inPipeline) / float64(total) * 100
	note := ""
	if supplementary > 0 {
		note = fmt.Sprintf("  (supplementary measurement: %d us)", supplementary)
	}
	if share > maxShare {
		fmt.Printf("stage %-12s pipeline share %5.2f%%  FAIL (> %.1f%%)%s\n", stage, share, maxShare, note)
		fmt.Fprintln(os.Stderr, "benchguard: stage exceeds its pipeline share budget")
		return 1
	}
	fmt.Printf("stage %-12s pipeline share %5.2f%% (<= %.1f%%) ok%s\n", stage, share, maxShare, note)
	return 0
}

// incrementalReport is the slice of BENCH_incremental.json this gate
// reads (cmd/cfixlsp benchReport; decoding ignores the rest).
type incrementalReport struct {
	Funcs     int     `json:"funcs"`
	Edits     int     `json:"edits"`
	WarmP50Ms float64 `json:"warm_p50_ms"`
	WarmP99Ms float64 `json:"warm_p99_ms"`
}

// runIncremental gates the warm re-analysis median of a
// BENCH_incremental.json report.
func runIncremental(path string, maxP50 float64) int {
	f, err := os.Open(path)
	if err != nil {
		return fail("%v", err)
	}
	defer f.Close()
	var rep incrementalReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return fail("%s: %v", path, err)
	}
	if rep.Edits == 0 || rep.WarmP50Ms <= 0 {
		return fail("%s: no warm edit samples in report", path)
	}
	if rep.WarmP50Ms > maxP50 {
		fmt.Printf("incremental warm p50 %.2f ms over %d edits / %d funcs  FAIL (> %.1f ms; p99 %.2f ms)\n",
			rep.WarmP50Ms, rep.Edits, rep.Funcs, maxP50, rep.WarmP99Ms)
		fmt.Fprintln(os.Stderr, "benchguard: warm incremental re-analysis exceeds its latency budget")
		return 1
	}
	fmt.Printf("incremental warm p50 %.2f ms over %d edits / %d funcs (<= %.1f ms) ok  (p99 %.2f ms)\n",
		rep.WarmP50Ms, rep.Edits, rep.Funcs, maxP50, rep.WarmP99Ms)
	return 0
}

// parseBench extracts ns/op samples per benchmark name from `go test
// -bench` output. The CPU-count suffix (Benchmark-8) stays part of the
// name; both runs execute on the same machine, so suffixes agree.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op value in %q", path, sc.Text())
			}
			out[fields[0]] = append(out[fields[0]], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func reduce(samples []float64, stat string) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if stat == "min" {
		return sorted[0]
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	return 1
}
