// Package buflen implements Algorithm 1 of the paper (GETBUFFERLENGTH,
// Section III-B): a static, source-level computation of the size of a
// destination buffer expression, built on type analysis, alias analysis,
// reaching definitions and control-flow analysis.
//
// The result is symbolic: a C expression that evaluates the size at run
// time (`sizeof(buf)` for statically allocated buffers,
// `malloc_usable_size(p)` for heap-allocated ones), optionally adjusted by
// a constant when the destination involves pointer arithmetic. When the
// size cannot be established, the algorithm returns a typed failure whose
// reason matches the taxonomy of Section IV-B (the four observed SLR
// precondition-failure classes).
package buflen

import (
	"fmt"
	"strconv"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctype"
	"repro/internal/dataflow"
	"repro/internal/pointsto"
)

// SizeKind identifies how the size is obtained at run time.
type SizeKind int

// Size kinds.
const (
	SizeInvalid SizeKind = iota
	// SizeStatic: the buffer is statically allocated; size via sizeof.
	SizeStatic
	// SizeHeap: the buffer is heap allocated; size via malloc_usable_size.
	SizeHeap
)

// Size is a symbolic buffer size.
type Size struct {
	Kind SizeKind
	// BaseText is the source spelling of the expression the size operator
	// applies to (e.g. "buf" yielding "sizeof(buf)").
	BaseText string
	// Adjust is a constant correction accumulated from pointer arithmetic:
	// strcpy(p+2, s) writes into a region 2 bytes smaller.
	Adjust int64
	// ConstBytes is the statically known byte count when available
	// (array types with constant length), or -1.
	ConstBytes int64
}

// KnownBytes returns the statically known byte count of the region the
// size describes (ConstBytes corrected by the pointer-arithmetic Adjust),
// and whether it is known at all. Heap sizes and symbolic static sizes
// report false.
func (s Size) KnownBytes() (int64, bool) {
	if s.ConstBytes < 0 {
		return 0, false
	}
	n := s.ConstBytes + s.Adjust
	if n < 0 {
		n = 0
	}
	return n, true
}

// CText renders the size as a C expression.
func (s Size) CText() string {
	var base string
	switch s.Kind {
	case SizeStatic:
		base = "sizeof(" + s.BaseText + ")"
	case SizeHeap:
		base = "malloc_usable_size(" + s.BaseText + ")"
	default:
		return ""
	}
	switch {
	case s.Adjust > 0:
		return base + " + " + strconv.FormatInt(s.Adjust, 10)
	case s.Adjust < 0:
		return base + " - " + strconv.FormatInt(-s.Adjust, 10)
	default:
		return base
	}
}

// FailReason classifies why the size could not be computed. The first four
// reasons are exactly the classes reported in Section IV-B.
type FailReason int

// Failure reasons.
const (
	FailUnknown FailReason = iota
	// FailNoHeapAlloc: the reaching definition does not contain an
	// explicit heap allocation (buffer allocated elsewhere or passed as a
	// parameter). Section IV-B class (1), the most common.
	FailNoHeapAlloc
	// FailAliased: the buffer (or its containing struct) is aliased.
	// Section IV-B class (2).
	FailAliased
	// FailArrayOfBuffers: the buffer is an element of an array of buffers;
	// no shape analysis. Section IV-B class (3).
	FailArrayOfBuffers
	// FailTernaryAlloc: the definition is a ternary with heap allocation
	// in its branches. Section IV-B class (4).
	FailTernaryAlloc
	// FailMultipleDefs: more than one definition reaches the use.
	FailMultipleDefs
	// FailNoDef: no definition reaches the use (or only a declaration
	// without a value).
	FailNoDef
	// FailStructRedefined: the whole struct is redefined between the
	// member's definition and its use (Algorithm 1 lines 42-46).
	FailStructRedefined
	// FailUnsupportedForm: the expression shape is outside Algorithm 1.
	FailUnsupportedForm
	// FailAlreadyClamped: the length argument (or a preceding
	// assignment) already carries the exact clamp SLR would insert —
	// the input is previously transformed output, and clamping again
	// would nest the ternary. Declining keeps Fix idempotent.
	FailAlreadyClamped
	// FailMacroOrHeader: project mode only — the textual edit maps into
	// a macro expansion or an included header, where an in-place rewrite
	// of the main file would corrupt the source the user wrote.
	FailMacroOrHeader
)

var _failNames = map[FailReason]string{
	FailUnknown:         "unknown",
	FailMacroOrHeader:   "rewrite target inside a macro expansion or included header",
	FailNoHeapAlloc:     "definition has no explicit heap allocation",
	FailAliased:         "buffer is aliased",
	FailArrayOfBuffers:  "buffer is an element of an array of buffers",
	FailTernaryAlloc:    "definition is a ternary expression with allocations",
	FailMultipleDefs:    "multiple definitions reach the use",
	FailNoDef:           "no defining value reaches the use",
	FailStructRedefined: "containing struct redefined before use",
	FailUnsupportedForm: "unsupported expression form",
	FailAlreadyClamped:  "length already clamped by a previous transformation",
}

// String returns the reason description.
func (r FailReason) String() string { return _failNames[r] }

// Failure is a typed "size unknown" result.
type Failure struct {
	Reason FailReason
	Detail string
}

// Error implements the error interface.
func (f *Failure) Error() string {
	if f.Detail == "" {
		return f.Reason.String()
	}
	return fmt.Sprintf("%s: %s", f.Reason, f.Detail)
}

// Facts is the subset of shared analysis facts the buffer-length
// computation consumes. *analysis.Snapshot implements it; the default
// constructors fall back to a private per-analyzer instance so existing
// callers keep working unchanged.
type Facts interface {
	CFG(fn *cast.FuncDef) *cfg.Graph
	Reaching(fn *cast.FuncDef) *dataflow.ReachingDefs
	Aliases() *pointsto.AliasSets
}

// Analyzer computes buffer lengths within one translation unit, consuming
// per-function CFGs and reaching-definition solutions plus the unit-wide
// alias sets from its Facts provider.
type Analyzer struct {
	unit  *cast.TranslationUnit
	facts Facts
}

// NewAnalyzer prepares an analyzer for the unit with the paper's default
// aggregate points-to model. The unit must already be type-checked
// (internal/typecheck).
func NewAnalyzer(unit *cast.TranslationUnit) *Analyzer {
	return NewAnalyzerOpts(unit, pointsto.Options{})
}

// NewAnalyzerOpts prepares an analyzer with an explicit points-to
// configuration (the field-sensitive precision ablation uses this). The
// facts are private to this analyzer; use NewAnalyzerFacts to share them.
func NewAnalyzerOpts(unit *cast.TranslationUnit, opts pointsto.Options) *Analyzer {
	return NewAnalyzerFacts(unit, newLocalFacts(unit, opts))
}

// NewAnalyzerFacts prepares an analyzer on externally owned facts — the
// shared snapshot path, where points-to, CFGs and reaching definitions
// are computed once per translation unit and reused by every client.
func NewAnalyzerFacts(unit *cast.TranslationUnit, facts Facts) *Analyzer {
	return &Analyzer{unit: unit, facts: facts}
}

// localFacts is the analyzer-private Facts provider: eager alias sets
// (matching the historical constructor behavior) and lazily cached
// per-function CFGs and reaching-definitions solutions.
type localFacts struct {
	aliases *pointsto.AliasSets
	graphs  map[*cast.FuncDef]*cfg.Graph
	rds     map[*cast.FuncDef]*dataflow.ReachingDefs
}

func newLocalFacts(unit *cast.TranslationUnit, opts pointsto.Options) *localFacts {
	return &localFacts{
		aliases: pointsto.ComputeAliases(pointsto.Analyze(unit, opts)),
		graphs:  make(map[*cast.FuncDef]*cfg.Graph, len(unit.Funcs)),
		rds:     make(map[*cast.FuncDef]*dataflow.ReachingDefs, len(unit.Funcs)),
	}
}

func (f *localFacts) Aliases() *pointsto.AliasSets { return f.aliases }

func (f *localFacts) CFG(fn *cast.FuncDef) *cfg.Graph {
	g, ok := f.graphs[fn]
	if !ok {
		g = cfg.Build(fn)
		f.graphs[fn] = g
	}
	return g
}

func (f *localFacts) Reaching(fn *cast.FuncDef) *dataflow.ReachingDefs {
	rd, ok := f.rds[fn]
	if !ok {
		rd = dataflow.ComputeReaching(f.CFG(fn), f.aliases)
		f.rds[fn] = rd
	}
	return rd
}

// Aliases exposes the alias sets (used by the transformations'
// precondition checks and diagnostics).
func (a *Analyzer) Aliases() *pointsto.AliasSets { return a.facts.Aliases() }

// CFG returns the cached control-flow graph for fn.
func (a *Analyzer) CFG(fn *cast.FuncDef) *cfg.Graph { return a.facts.CFG(fn) }

// Reaching returns the cached reaching-definitions solution for fn.
func (a *Analyzer) Reaching(fn *cast.FuncDef) *dataflow.ReachingDefs {
	return a.facts.Reaching(fn)
}

// BufferLength computes the size of the destination-buffer expression b
// occurring inside fn, implementing Algorithm 1. The evaluation point is
// located from b's source extent.
func (a *Analyzer) BufferLength(fn *cast.FuncDef, b cast.Expr) (Size, *Failure) {
	g := a.CFG(fn)
	at := g.NodeContaining(b)
	if at == nil {
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "expression not in control flow"}
	}
	return a.lengthAt(fn, at, b, 0)
}

const _maxDepth = 32 // defensive bound on definition-chain recursion

// lengthAt is the recursive core of Algorithm 1. at is the program point
// whose reaching definitions are consulted for identifiers.
func (a *Analyzer) lengthAt(fn *cast.FuncDef, at *cfg.Node, b cast.Expr, depth int) (Size, *Failure) {
	if depth > _maxDepth {
		return Size{}, &Failure{Reason: FailUnknown, Detail: "definition chain too deep"}
	}
	switch x := cast.Unparen(b).(type) {

	// Lines 2-4: assignment expression — recurse on the RHS.
	case *cast.AssignExpr:
		if x.Op != cast.AssignPlain {
			return a.compoundAssignLength(fn, at, x, depth)
		}
		return a.lengthAt(fn, at, x.RHS, depth+1)

	// Lines 5-7: array access expression — size of the array identifier.
	case *cast.IndexExpr:
		return a.indexLength(fn, at, x, depth)

	// Lines 8-15: pointer-arithmetic binary expression.
	case *cast.BinaryExpr:
		return a.binaryLength(fn, at, x, depth)

	// Lines 16-20: prefix increment/decrement.
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryPreInc:
			sz, fail := a.lengthAt(fn, at, x.Operand, depth+1)
			if fail != nil {
				return Size{}, fail
			}
			sz.Adjust--
			return sz, nil
		case cast.UnaryPreDec:
			sz, fail := a.lengthAt(fn, at, x.Operand, depth+1)
			if fail != nil {
				return Size{}, fail
			}
			sz.Adjust++
			return sz, nil
		case cast.UnaryAddrOf:
			// &buf[i] and &s.f destinations: natural extension of lines
			// 5-7 (Juliet uses these forms heavily).
			return a.addrOfLength(fn, at, x, depth)
		case cast.UnaryDeref:
			// *p as a destination is a single char; not a buffer.
			return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "dereference destination"}
		default:
			return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "unary " + x.Op.String()}
		}

	// Postfix p++ in destination position: the written-to region starts at
	// the pre-increment value, so no adjustment is needed.
	case *cast.PostfixExpr:
		return a.lengthAt(fn, at, x.Operand, depth+1)

	// Lines 21-22: cast expression.
	case *cast.CastExpr:
		return a.lengthAt(fn, at, x.Operand, depth+1)

	// Lines 23-34: identifier expression.
	case *cast.Ident:
		return a.identLength(fn, at, x, depth)

	// Lines 35-50: element (struct member) access expression.
	case *cast.MemberExpr:
		return a.memberLength(fn, at, x, depth)

	case *cast.CallExpr:
		// A call in destination position: heap allocators give a usable
		// size via their own result; others are opaque.
		if pointsto.IsHeapAllocator(x.Callee()) {
			return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "allocation used directly as destination"}
		}
		return Size{}, &Failure{Reason: FailNoHeapAlloc, Detail: "destination produced by call"}

	case *cast.CondExpr:
		return Size{}, a.ternaryFailure(x)

	case *cast.StringLit:
		// Writing into a string literal is UB; refuse.
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "string literal destination"}

	default:
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: fmt.Sprintf("%T", b)}
	}
}

// compoundAssignLength handles p += n / p -= n definitions and
// destinations: the size is the size of p before the operation, adjusted.
func (a *Analyzer) compoundAssignLength(fn *cast.FuncDef, at *cfg.Node, x *cast.AssignExpr, depth int) (Size, *Failure) {
	var sign int64
	switch x.Op {
	case cast.AssignAdd:
		sign = -1
	case cast.AssignSub:
		sign = +1
	default:
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "compound assignment " + x.Op.String()}
	}
	n, ok := constIntOf(x.RHS)
	if !ok {
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "non-constant pointer adjustment"}
	}
	sz, fail := a.lengthAt(fn, at, x.LHS, depth+1)
	if fail != nil {
		return Size{}, fail
	}
	sz.Adjust += sign * n
	return sz, nil
}

// indexLength implements lines 5-7 with the shape-analysis restriction:
// an element of an array of pointers fails (Section IV-B class 3); an
// element of a 2-D char array sizes the row.
func (a *Analyzer) indexLength(fn *cast.FuncDef, at *cfg.Node, x *cast.IndexExpr, depth int) (Size, *Failure) {
	baseT := cast.Unparen(x.Base).Type()
	if baseT != nil {
		if elem := ctype.Elem(baseT); elem != nil {
			if ctype.IsPointer(elem) {
				return Size{}, &Failure{
					Reason: FailArrayOfBuffers,
					Detail: "no shape analysis on arrays of buffers",
				}
			}
			if ctype.IsArray(elem) {
				// 2-D array: sizeof one row, spelled with the full access.
				return Size{
					Kind:       SizeStatic,
					BaseText:   a.text(x),
					ConstBytes: int64(elem.Size()),
				}, nil
			}
		}
	}
	// GETARRAYIDENTIFIER: size of the underlying array object.
	if id, ok := cast.Unparen(x.Base).(*cast.Ident); ok && id.Sym != nil {
		if ctype.IsArray(id.Sym.Type) {
			return a.staticSize(id)
		}
		// Pointer base: recurse as identifier (pointer into a buffer).
		return a.identLength(fn, at, id, depth)
	}
	return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "array access on non-identifier"}
}

// addrOfLength handles &buf[i], &s.f and &buf destinations.
func (a *Analyzer) addrOfLength(fn *cast.FuncDef, at *cfg.Node, x *cast.UnaryExpr, depth int) (Size, *Failure) {
	switch inner := cast.Unparen(x.Operand).(type) {
	case *cast.IndexExpr:
		sz, fail := a.indexLength(fn, at, inner, depth)
		if fail != nil {
			return Size{}, fail
		}
		if n, ok := constIntOf(inner.Index); ok {
			sz.Adjust -= n
			return sz, nil
		}
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "non-constant index in address-of"}
	case *cast.Ident:
		// &buf where buf is an array covers the whole object.
		if inner.Sym != nil && ctype.IsArray(inner.Sym.Type) {
			return a.staticSize(inner)
		}
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "address of non-array"}
	case *cast.MemberExpr:
		return a.memberLength(fn, at, inner, depth)
	default:
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "address-of form"}
	}
}

// binaryLength implements lines 8-15: buffer ± numeric.
func (a *Analyzer) binaryLength(fn *cast.FuncDef, at *cfg.Node, x *cast.BinaryExpr, depth int) (Size, *Failure) {
	if x.Op != cast.BinaryAdd && x.Op != cast.BinarySub {
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "binary " + x.Op.String()}
	}
	// GETNUMERICPART / GETBUFFERPART.
	var (
		bufPart cast.Expr
		numVal  int64
	)
	if n, ok := constIntOf(x.Y); ok {
		bufPart, numVal = x.X, n
	} else if n, ok := constIntOf(x.X); ok && x.Op == cast.BinaryAdd {
		bufPart, numVal = x.Y, n
	} else {
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "non-constant pointer arithmetic"}
	}
	sz, fail := a.lengthAt(fn, at, bufPart, depth+1)
	if fail != nil {
		return Size{}, fail
	}
	// Line 11: newop is the flipped operator — advancing the pointer
	// shrinks the writable region.
	if x.Op == cast.BinaryAdd {
		sz.Adjust -= numVal
	} else {
		sz.Adjust += numVal
	}
	return sz, nil
}

// identLength implements lines 23-34.
func (a *Analyzer) identLength(fn *cast.FuncDef, at *cfg.Node, x *cast.Ident, depth int) (Size, *Failure) {
	if x.Sym == nil {
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "unbound identifier"}
	}
	t := x.Sym.Type
	switch {
	// Lines 24-25: array type.
	case ctype.IsArray(t):
		return a.staticSize(x)

	// Lines 26-34: pointer type.
	case ctype.IsPointer(t):
		// Line 27: aliased pointers are refused.
		if a.Aliases().IsAliased(x.Sym) {
			return Size{}, &Failure{Reason: FailAliased, Detail: x.Name}
		}
		// Parameters have no local definition: their storage is owned by
		// unknown call sites (Section IV-B class 1).
		if x.Sym.Kind == cast.SymParam {
			return Size{}, &Failure{Reason: FailNoHeapAlloc, Detail: "buffer is a parameter"}
		}
		// Line 30: the definition reaching B.
		rd := a.Reaching(fn)
		defs := rd.ReachingFor(at, x.Sym)
		defs = wholeObjectDefs(defs)
		if len(defs) == 0 {
			return Size{}, &Failure{Reason: FailNoDef, Detail: x.Name}
		}
		if len(defs) > 1 {
			return Size{}, &Failure{Reason: FailMultipleDefs, Detail: x.Name}
		}
		return a.defLength(fn, x, defs[0], depth)

	default:
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "identifier of type " + typeText(t)}
	}
}

// defLength evaluates the size of ident given its unique reaching
// definition (lines 30-34 and 47-50).
func (a *Analyzer) defLength(fn *cast.FuncDef, ident *cast.Ident, def *dataflow.Def, depth int) (Size, *Failure) {
	switch def.Kind {
	case dataflow.DefDecl:
		return Size{}, &Failure{Reason: FailNoDef, Detail: ident.Name + " declared without a value"}
	case dataflow.DefCallOut, dataflow.DefAliasWrite:
		return Size{}, &Failure{Reason: FailNoHeapAlloc, Detail: "value set through a call or alias"}
	case dataflow.DefIncDec:
		// The definition itself is p++ / --p etc.: size of p before the
		// definition, adjusted.
		adj := int64(-1)
		switch v := def.Value.(type) {
		case *cast.UnaryExpr:
			if v.Op == cast.UnaryPreDec {
				adj = +1
			}
		case *cast.PostfixExpr:
			if v.Op == cast.PostfixDec {
				adj = +1
			}
		}
		sz, fail := a.lengthAt(fn, def.Node, ident, depth+1)
		if fail != nil {
			return Size{}, fail
		}
		sz.Adjust += adj
		return sz, nil
	case dataflow.DefInit, dataflow.DefAssign:
		value := def.Value
		if av, ok := value.(*cast.AssignExpr); ok {
			if av.Op != cast.AssignPlain {
				return a.compoundAssignLength(fn, def.Node, av, depth+1)
			}
			value = av.RHS
		}
		if value == nil {
			return Size{}, &Failure{Reason: FailNoDef, Detail: ident.Name}
		}
		// A conditional value is never a definite allocation (Section IV-B
		// class 4), so test it before the allocator check.
		if cond, ok := cast.Unparen(value).(*cast.CondExpr); ok {
			return Size{}, a.ternaryFailure(cond)
		}
		// Lines 31-32: definition containing a heap allocation.
		if callWithAllocator(value) {
			return Size{Kind: SizeHeap, BaseText: ident.Name, ConstBytes: -1}, nil
		}
		// Lines 33-34: other assignments recurse on the RHS, evaluated at
		// the definition's program point.
		return a.lengthAt(fn, def.Node, value, depth+1)
	default:
		return Size{}, &Failure{Reason: FailUnknown}
	}
}

// memberLength implements lines 35-50.
func (a *Analyzer) memberLength(fn *cast.FuncDef, at *cfg.Node, x *cast.MemberExpr, depth int) (Size, *Failure) {
	t := x.Type()
	switch {
	// Lines 36-37: array-typed member.
	case t != nil && ctype.IsArray(t):
		return Size{
			Kind:       SizeStatic,
			BaseText:   a.text(x),
			ConstBytes: int64(t.Size()),
		}, nil

	// Lines 38-50: pointer-typed member.
	case t != nil && ctype.IsPointer(t):
		baseID, ok := cast.Unparen(x.Base).(*cast.Ident)
		if !ok || baseID.Sym == nil {
			return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "member of non-identifier"}
		}
		// Line 39: under the paper's aggregate model the struct node
		// carries the aliasing; the field-sensitive ablation asks about
		// the member itself.
		if a.Aliases().IsAliasedMember(baseID.Sym, x.Member) {
			return Size{}, &Failure{Reason: FailAliased, Detail: a.text(x)}
		}
		rd := a.Reaching(fn)
		// Lines 42-46: member definitions are killed by whole-struct
		// redefinitions in the reaching-definitions transfer function, so
		// "defstruct on the control-flow path from def to B" manifests as
		// the member definition not reaching B.
		var memberDefs []*dataflow.Def
		for _, d := range rd.In(at) {
			if d.Sym == baseID.Sym && d.Member == x.Member {
				memberDefs = append(memberDefs, d)
			}
		}
		if len(memberDefs) == 0 {
			// Distinguish "struct redefined" from "never set".
			for _, d := range rd.In(at) {
				if d.Sym == baseID.Sym && d.Member == "" && d.Kind != dataflow.DefDecl {
					return Size{}, &Failure{Reason: FailStructRedefined, Detail: a.text(x)}
				}
			}
			return Size{}, &Failure{Reason: FailNoDef, Detail: a.text(x)}
		}
		if len(memberDefs) > 1 {
			return Size{}, &Failure{Reason: FailMultipleDefs, Detail: a.text(x)}
		}
		def := memberDefs[0]
		value := def.Value
		if av, ok := value.(*cast.AssignExpr); ok {
			value = av.RHS
		}
		if value == nil {
			return Size{}, &Failure{Reason: FailNoDef, Detail: a.text(x)}
		}
		if cond, ok := cast.Unparen(value).(*cast.CondExpr); ok {
			return Size{}, a.ternaryFailure(cond)
		}
		// Lines 47-48: heap allocation.
		if callWithAllocator(value) {
			return Size{Kind: SizeHeap, BaseText: a.text(x), ConstBytes: -1}, nil
		}
		// Lines 49-50: recurse on the assigned value.
		return a.lengthAt(fn, def.Node, value, depth+1)

	default:
		return Size{}, &Failure{Reason: FailUnsupportedForm, Detail: "member type"}
	}
}

// staticSize builds a SizeStatic for an array identifier.
func (a *Analyzer) staticSize(id *cast.Ident) (Size, *Failure) {
	cb := int64(-1)
	if id.Sym != nil {
		if s := id.Sym.Type.Size(); s >= 0 {
			cb = int64(s)
		}
	}
	return Size{Kind: SizeStatic, BaseText: id.Name, ConstBytes: cb}, nil
}

// ternaryFailure classifies a conditional definition (Section IV-B class 4
// when both branches allocate).
func (a *Analyzer) ternaryFailure(cond *cast.CondExpr) *Failure {
	if callWithAllocator(cond.Then) && callWithAllocator(cond.Else) {
		return &Failure{Reason: FailTernaryAlloc, Detail: a.text(cond)}
	}
	return &Failure{Reason: FailUnsupportedForm, Detail: "conditional value"}
}

// text returns the source spelling of an expression.
func (a *Analyzer) text(e cast.Expr) string {
	return a.unit.File.Slice(e.Extent())
}

// callWithAllocator reports whether the expression contains a call to a
// heap allocation function (the "def contains heap allocation" test of
// lines 31 and 47; allocation wrapped in casts or macros that expand to
// allocator calls still matches because the test is structural).
func callWithAllocator(e cast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	cast.Inspect(e, func(n cast.Node) bool {
		if c, ok := n.(*cast.CallExpr); ok && pointsto.IsHeapAllocator(c.Callee()) {
			found = true
			return false
		}
		// Do not descend into ternaries: a conditional allocation is not a
		// definite allocation (Section IV-B class 4).
		if _, ok := n.(*cast.CondExpr); ok && n != e {
			return false
		}
		return true
	})
	return found
}

// wholeObjectDefs filters to definitions of the whole object (Member ==
// ""), which are the ones Algorithm 1's identifier case consults.
func wholeObjectDefs(defs []*dataflow.Def) []*dataflow.Def {
	out := defs[:0:0]
	for _, d := range defs {
		if d.Member == "" {
			out = append(out, d)
		}
	}
	return out
}

// constIntOf evaluates constant integer expressions (shared with the
// parser's logic but usable post-parse).
func constIntOf(e cast.Expr) (int64, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return x.Value, true
	case *cast.CharLit:
		return int64(x.Value), true
	case *cast.UnaryExpr:
		if v, ok := constIntOf(x.Operand); ok {
			switch x.Op {
			case cast.UnaryMinus:
				return -v, true
			case cast.UnaryPlus:
				return v, true
			}
		}
		return 0, false
	case *cast.SizeofExpr:
		if x.OfType != nil && x.OfType.Size() >= 0 {
			return int64(x.OfType.Size()), true
		}
		if x.Operand != nil && x.Operand.Type() != nil && x.Operand.Type().Size() >= 0 {
			return int64(x.Operand.Type().Size()), true
		}
		return 0, false
	case *cast.BinaryExpr:
		a, ok1 := constIntOf(x.X)
		b, ok2 := constIntOf(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case cast.BinaryAdd:
			return a + b, true
		case cast.BinarySub:
			return a - b, true
		case cast.BinaryMul:
			return a * b, true
		case cast.BinaryDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}
		return 0, false
	case *cast.Ident:
		if x.Sym != nil && x.Sym.Kind == cast.SymEnumConst {
			if en, ok := ctype.Unqualify(x.Sym.Type).(*ctype.Enum); ok {
				for _, c := range en.Consts {
					if c.Name == x.Name {
						return c.Value, true
					}
				}
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

func typeText(t ctype.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}
