package typecheck

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func TestFloatArithmetic(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    float fl;
    double d;
    int i;
    d = fl + i;
    d = d * 2.5;
    fl = -fl;
    i = (int)(d / 2.0);
}
`)
	tests := []struct{ expr, want string }{
		{"fl + i", "float"},
		{"d * 2.5", "double"},
		{"-fl", "float"},
		{"d / 2.0", "double"},
	}
	for _, tt := range tests {
		if got := exprTypeIn(t, tu, tt.expr); got != tt.want {
			t.Errorf("%s: got %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestPromotions(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    char c;
    short s;
    unsigned char uc;
    int i;
    i = c + c;
    i = s + s;
    i = uc + uc;
    i = ~c;
}
`)
	for _, expr := range []string{"c + c", "s + s", "uc + uc", "~c"} {
		if got := exprTypeIn(t, tu, expr); got != "int" {
			t.Errorf("%s: got %q, want int (integer promotion)", expr, got)
		}
	}
}

func TestMixedSignedness(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    unsigned int u;
    int i;
    long l;
    unsigned long ul;
    u = u + i;
    l = l + i;
    ul = ul + l;
    ul = u + l;
}
`)
	tests := []struct{ expr, want string }{
		{"u + i", "unsigned int"},
		{"l + i", "long"},
		{"ul + l", "unsigned long"},
		{"u + l", "long"}, // long rank beats unsigned int
	}
	for _, tt := range tests {
		if got := exprTypeIn(t, tu, tt.expr); got != tt.want {
			t.Errorf("%s: got %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestAssignAndCompoundTypes(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    char *p;
    char buf[4];
    p = buf;
    p += 1;
    *p = 'x';
    p[2] = 'y';
}
`)
	if got := exprTypeIn(t, tu, "p += 1"); got != "char *" {
		t.Errorf("compound assign: %q", got)
	}
	if got := exprTypeIn(t, tu, "*p = 'x'"); got != "char" {
		t.Errorf("deref assign: %q", got)
	}
}

func TestCommaAndTernaryTypes(t *testing.T) {
	tu := checkUnit(t, `
void f(int c) {
    int i;
    double d;
    d = (i = 1, 2.5);
    i = c ? 1 : 2;
}
`)
	if got := exprTypeIn(t, tu, "(i = 1, 2.5)"); got != "double" {
		t.Errorf("comma: %q", got)
	}
	if got := exprTypeIn(t, tu, "c ? 1 : 2"); got != "int" {
		t.Errorf("ternary: %q", got)
	}
}

func TestSizeofForms(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    char buf[12];
    unsigned long a;
    unsigned long b;
    a = sizeof buf;
    b = sizeof(struct { int x; int y; }*);
}
`)
	if got := exprTypeIn(t, tu, "sizeof buf"); got != "unsigned long" {
		t.Errorf("sizeof expr: %q", got)
	}
}

func TestFunctionPointerCallType(t *testing.T) {
	tu := checkUnit(t, `
void f(int (*op)(int, int)) {
    int r;
    r = op(1, 2);
}
`)
	if got := exprTypeIn(t, tu, "op(1, 2)"); got != "int" {
		t.Errorf("fp call: %q", got)
	}
}

func TestArrowOnNonPointerReportsError(t *testing.T) {
	tu, err := parseOnly(t, `
struct s { int a; };
void f(void) { struct s v; int i; i = v->a; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(tu); len(errs) == 0 {
		t.Fatal("-> on non-pointer must report an error")
	}
}

func TestMemberOnScalarReportsError(t *testing.T) {
	tu, err := parseOnly(t, `
void f(void) { int i; int j; j = i.member; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(tu); len(errs) == 0 {
		t.Fatal("member access on scalar must report an error")
	}
	// Error strings carry positions.
	if errs := Check(tu); len(errs) > 0 {
		if errs[0].Error() == "" {
			t.Fatal("empty error text")
		}
	}
}

func TestPostfixAndUnaryTypes(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    int i;
    char *p;
    char a[2];
    int r;
    p = a;
    i++;
    p++;
    r = !i;
    r = i > 0 && p != 0;
}
`)
	if got := exprTypeIn(t, tu, "p++"); got != "char *" {
		t.Errorf("postfix on pointer: %q", got)
	}
	if got := exprTypeIn(t, tu, "!i"); got != "int" {
		t.Errorf("not: %q", got)
	}
}

func TestEnumArithmetic(t *testing.T) {
	tu := checkUnit(t, `
enum mode { A, B, C };
void f(void) {
    enum mode m;
    int i;
    i = m + 1;
}
`)
	if got := exprTypeIn(t, tu, "m + 1"); got == "" {
		t.Error("enum arithmetic must type")
	}
}

func TestAddressOfFunctionResultTypes(t *testing.T) {
	tu := checkUnit(t, `
void f(void) {
    int x;
    int *p;
    int **pp;
    p = &x;
    pp = &p;
}
`)
	if got := exprTypeIn(t, tu, "&x"); got != "int *" {
		t.Errorf("&x: %q", got)
	}
	if got := exprTypeIn(t, tu, "&p"); got != "int * *" {
		t.Errorf("&p: %q", got)
	}
}

// parseOnly parses without failing on type errors.
func parseOnly(t *testing.T, src string) (*cast.TranslationUnit, error) {
	t.Helper()
	return cparse.Parse("t.c", src)
}
