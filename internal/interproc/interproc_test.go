package interproc

import (
	"testing"

	"repro/internal/cparse"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(tu)
}

func TestDirectWriteDetected(t *testing.T) {
	r := analyze(t, `
void fill(char *out) { out[0] = 'x'; }
void deref(char *out) { *out = 'x'; }
void arrow(struct s { char c; } *p) { }
`)
	if !r.MayModifyParam("fill", 0) {
		t.Fatal("index write through parameter must be detected")
	}
	if !r.MayModifyParam("deref", 0) {
		t.Fatal("deref write through parameter must be detected")
	}
}

func TestReadOnlyParam(t *testing.T) {
	r := analyze(t, `
int measure(char *s) {
    int n = 0;
    while (s[n] != '\0') { n++; }
    return n;
}
`)
	if r.MayModifyParam("measure", 0) {
		t.Fatal("read-only traversal must not count as modification")
	}
}

func TestLibraryWriterPropagates(t *testing.T) {
	r := analyze(t, `
void wrap(char *dst, char *src) { strcpy(dst, src); }
`)
	if !r.MayModifyParam("wrap", 0) {
		t.Fatal("strcpy writes its first argument; wrap modifies param 0")
	}
	if r.MayModifyParam("wrap", 1) {
		t.Fatal("strcpy's source is read-only; wrap must not modify param 1")
	}
}

func TestTransitivePropagation(t *testing.T) {
	r := analyze(t, `
void level0(char *p) { p[0] = 'x'; }
void level1(char *p) { level0(p); }
void level2(char *p) { level1(p); }
void clean(char *p) { strlen(p); }
`)
	for _, fn := range []string{"level0", "level1", "level2"} {
		if !r.MayModifyParam(fn, 0) {
			t.Errorf("%s must be flagged via the call-graph fixpoint", fn)
		}
	}
	if r.MayModifyParam("clean", 0) {
		t.Error("clean only reads")
	}
}

func TestMutualRecursionConverges(t *testing.T) {
	r := analyze(t, `
void pong(char *p);
void ping(char *p) { pong(p); }
void pong(char *p) { ping(p); }
`)
	// Neither function writes: the fixpoint must converge to false.
	if r.MayModifyParam("ping", 0) || r.MayModifyParam("pong", 0) {
		t.Fatal("pure mutual recursion must not be flagged")
	}
}

func TestUnknownExternalConservative(t *testing.T) {
	r := analyze(t, `
void f(char *p) { mystery_function(p); }
`)
	if !r.MayModifyParam("f", 0) {
		t.Fatal("unknown external callees are conservatively modifying")
	}
}

func TestUnknownFunctionItselfConservative(t *testing.T) {
	r := analyze(t, "int x;")
	if !r.MayModifyParam("not_defined_anywhere", 0) {
		t.Fatal("undefined functions must be conservatively modifying")
	}
}

func TestKnownReadOnlyLibrary(t *testing.T) {
	r := analyze(t, "int x;")
	if r.MayModifyParam("strlen", 0) {
		t.Fatal("strlen is modeled read-only")
	}
	if !r.MayModifyParam("strcpy", 0) {
		t.Fatal("strcpy writes arg 0")
	}
	if r.MayModifyParam("strcpy", 1) {
		t.Fatal("strcpy reads arg 1")
	}
}

func TestPointerArithmeticArgument(t *testing.T) {
	r := analyze(t, `
void shift(char *p) { strcpy(p + 4, "x"); }
`)
	if !r.MayModifyParam("shift", 0) {
		t.Fatal("writes through p+4 are writes through p")
	}
}

func TestEscapeToGlobalConservative(t *testing.T) {
	r := analyze(t, `
char *stash;
void keep(char *p) { stash = p; }
`)
	if !r.MayModifyParam("keep", 0) {
		t.Fatal("a parameter escaping to a global is conservatively modified")
	}
}

func TestMayModifyArgFunctionPointer(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void (*cb)(char*), char *buf) { cb(buf); }
`)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(tu)
	if !r.MayModifyParam("f", 1) {
		t.Fatal("calls through function pointers are conservative")
	}
}

func TestLibraryTables(t *testing.T) {
	if !LibraryWritesThrough("memcpy", 0) || LibraryWritesThrough("memcpy", 1) {
		t.Fatal("memcpy writes arg 0 only")
	}
	if !IsKnownLibrary("printf") || !IsKnownLibrary("gets") {
		t.Fatal("library classification incomplete")
	}
	if IsKnownLibrary("no_such_fn") {
		t.Fatal("unknown function misclassified")
	}
}
