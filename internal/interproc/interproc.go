// Package interproc implements the interprocedural may-modify analysis
// that guards SAFE TYPE REPLACEMENT (Section III-C): when a char pointer is
// used as an argument to a user-defined function, STR must determine, at
// the call site, whether the callee may modify the pointed-to buffer. The
// analysis is conservative — it may report a modification where none
// occurs, but never the reverse — because an unsound answer would let STR
// change program behavior.
package interproc

import (
	"repro/internal/callgraph"
	"repro/internal/cast"
)

// _libraryWriters maps C library functions to the argument positions
// (0-based) through which they write.
var _libraryWriters = map[string][]int{
	"strcpy":     {0},
	"strncpy":    {0},
	"strcat":     {0},
	"strncat":    {0},
	"sprintf":    {0},
	"snprintf":   {0},
	"vsprintf":   {0},
	"vsnprintf":  {0},
	"memcpy":     {0},
	"memmove":    {0},
	"memset":     {0},
	"gets":       {0},
	"fgets":      {0},
	"scanf":      {1, 2, 3, 4, 5, 6, 7},
	"fread":      {0},
	"realloc":    {0},
	"g_strlcpy":  {0},
	"g_strlcat":  {0},
	"g_snprintf": {0},
	"gets_s":     {0},
}

// _libraryReadOnly lists C library functions that never write through any
// char* argument.
var _libraryReadOnly = map[string]struct{}{
	"strlen": {}, "strcmp": {}, "strncmp": {}, "strchr": {}, "strrchr": {},
	"strstr": {}, "printf": {}, "fprintf": {}, "puts": {}, "atoi": {},
	"atol": {}, "strdup": {}, "free": {}, "fopen": {}, "memcmp": {},
	"fwrite": {}, "putchar": {}, "fclose": {}, "exit": {}, "abort": {},
}

// LibraryWritesThrough reports whether the named C library function writes
// through its idx-th argument.
func LibraryWritesThrough(name string, idx int) bool {
	for _, w := range _libraryWriters[name] {
		if w == idx {
			return true
		}
	}
	return false
}

// IsKnownLibrary reports whether name is a modeled C library function
// (either a writer or read-only).
func IsKnownLibrary(name string) bool {
	if _, ok := _libraryWriters[name]; ok {
		return true
	}
	_, ok := _libraryReadOnly[name]
	return ok
}

// Result holds per-function, per-parameter may-modify facts.
type Result struct {
	unit *cast.TranslationUnit
	cg   *callgraph.Graph
	// mods[funcName][paramIdx] reports that the function may write through
	// the parameter.
	mods map[string][]bool
}

// Analyze computes may-modify facts for every defined function in the
// unit, iterating over the call graph to a fixpoint.
func Analyze(unit *cast.TranslationUnit) *Result {
	return AnalyzeWith(unit, nil)
}

// AnalyzeWith is Analyze reusing a prebuilt call graph (nil builds one);
// the shared facts snapshot (internal/analysis) passes its own so the
// graph is constructed once per translation unit.
func AnalyzeWith(unit *cast.TranslationUnit, cg *callgraph.Graph) *Result {
	if cg == nil {
		cg = callgraph.Build(unit)
	}
	r := &Result{
		unit: unit,
		cg:   cg,
		mods: make(map[string][]bool, len(unit.Funcs)),
	}
	for _, f := range unit.Funcs {
		r.mods[f.Name] = make([]bool, len(f.Params))
	}
	// Fixpoint: the facts grow monotonically (false -> true), so iterate
	// until no change.
	for changed := true; changed; {
		changed = false
		for _, f := range unit.Funcs {
			if r.scanFunc(f) {
				changed = true
			}
		}
	}
	return r
}

// MayModifyParam reports whether the defined function may write through
// its idx-th parameter. Unknown functions are reported as modifying —
// the conservative answer.
func (r *Result) MayModifyParam(funcName string, idx int) bool {
	mods, ok := r.mods[funcName]
	if !ok {
		// Not defined in this unit: library functions use the modeled
		// tables; anything else is conservatively a modification.
		if _, ro := _libraryReadOnly[funcName]; ro {
			return false
		}
		if w, isLib := _libraryWriters[funcName]; isLib {
			for _, i := range w {
				if i == idx {
					return true
				}
			}
			return false
		}
		return true
	}
	if idx >= len(mods) {
		// Variadic overflow arguments: conservative.
		return true
	}
	return mods[idx]
}

// MayModifyArg reports whether the call may modify the buffer passed as
// the idx-th argument.
func (r *Result) MayModifyArg(call *cast.CallExpr, idx int) bool {
	name := call.Callee()
	if name == "" {
		return true // call through a function pointer: conservative
	}
	return r.MayModifyParam(name, idx)
}

// scanFunc rescans one function body, returning whether any new
// modification fact was discovered.
func (r *Result) scanFunc(f *cast.FuncDef) bool {
	paramSyms := make(map[*cast.Symbol]int, len(f.Params))
	for i, p := range f.Params {
		if p.Sym != nil {
			paramSyms[p.Sym] = i
		}
	}
	changed := false
	mark := func(idx int) {
		if idx >= 0 && idx < len(r.mods[f.Name]) && !r.mods[f.Name][idx] {
			r.mods[f.Name][idx] = true
			changed = true
		}
	}
	// paramOf resolves an expression to a parameter index when the
	// expression's buffer is (derived from) a parameter.
	var paramOf func(e cast.Expr) int
	paramOf = func(e cast.Expr) int {
		switch x := cast.Unparen(e).(type) {
		case *cast.Ident:
			if x.Sym != nil {
				if idx, ok := paramSyms[x.Sym]; ok {
					return idx
				}
			}
			return -1
		case *cast.BinaryExpr:
			if x.Op == cast.BinaryAdd || x.Op == cast.BinarySub {
				if idx := paramOf(x.X); idx >= 0 {
					return idx
				}
				return paramOf(x.Y)
			}
			return -1
		case *cast.CastExpr:
			return paramOf(x.Operand)
		case *cast.UnaryExpr:
			if x.Op == cast.UnaryAddrOf {
				// &p[i] reduces to p.
				if ix, ok := cast.Unparen(x.Operand).(*cast.IndexExpr); ok {
					return paramOf(ix.Base)
				}
			}
			return -1
		case *cast.IndexExpr:
			return paramOf(x.Base)
		default:
			return -1
		}
	}

	cast.Inspect(f.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.AssignExpr:
			// Writes through the parameter: *p = v, p[i] = v.
			switch lv := cast.Unparen(x.LHS).(type) {
			case *cast.UnaryExpr:
				if lv.Op == cast.UnaryDeref {
					if idx := paramOf(lv.Operand); idx >= 0 {
						mark(idx)
					}
				}
			case *cast.IndexExpr:
				if idx := paramOf(lv.Base); idx >= 0 {
					mark(idx)
				}
			case *cast.MemberExpr:
				if lv.Arrow {
					if idx := paramOf(lv.Base); idx >= 0 {
						mark(idx)
					}
				}
			}
		case *cast.CallExpr:
			name := x.Callee()
			for ai, arg := range x.Args {
				idx := paramOf(arg)
				if idx < 0 {
					continue
				}
				switch {
				case name == "":
					mark(idx) // function pointer: conservative
				case r.isDefined(name):
					if r.MayModifyParam(name, ai) {
						mark(idx)
					}
				default:
					if _, ro := _libraryReadOnly[name]; ro {
						continue
					}
					if LibraryWritesThrough(name, ai) {
						mark(idx)
						continue
					}
					if !IsKnownLibrary(name) {
						mark(idx) // unknown external: conservative
					}
				}
			}
		}
		return true
	})
	// A parameter whose address escapes (stored anywhere) is conservatively
	// modified; detect pointer params appearing on the RHS of assignments
	// to non-local storage. A simple over-approximation: any assignment
	// whose RHS mentions the parameter and whose LHS is a global or a
	// member/deref target marks the parameter.
	cast.Inspect(f.Body, func(n cast.Node) bool {
		x, ok := n.(*cast.AssignExpr)
		if !ok {
			return true
		}
		idx := paramOf(x.RHS)
		if idx < 0 {
			return true
		}
		switch lv := cast.Unparen(x.LHS).(type) {
		case *cast.Ident:
			if lv.Sym != nil && lv.Sym.IsGlobal {
				mark(idx)
			}
		case *cast.MemberExpr, *cast.UnaryExpr, *cast.IndexExpr:
			mark(idx)
		}
		return true
	})
	return changed
}

func (r *Result) isDefined(name string) bool {
	_, ok := r.mods[name]
	return ok
}
