package depend

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

func computeFor(t *testing.T, src string) (*cast.TranslationUnit, *Result) {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	g := cfg.Build(tu.Funcs[0])
	return tu, Compute(g, nil)
}

// nodeOfAssign finds the CFG node assigning the given literal value.
func nodeOfAssign(t *testing.T, res *Result, val int64) *cfg.Node {
	t.Helper()
	for _, n := range res.Graph.Nodes {
		es, ok := n.Stmt.(*cast.ExprStmt)
		if !ok {
			continue
		}
		a, ok := es.X.(*cast.AssignExpr)
		if !ok {
			continue
		}
		if lit, ok := a.RHS.(*cast.IntLit); ok && lit.Value == val {
			return n
		}
	}
	t.Fatalf("assignment of %d not found", val)
	return nil
}

func TestControlDependenceOnBranch(t *testing.T) {
	_, res := computeFor(t, `
void f(int c) {
    int a;
    int b;
    if (c) {
        a = 1;
    }
    b = 2;
}
`)
	inThen := nodeOfAssign(t, res, 1)
	after := nodeOfAssign(t, res, 2)
	// a = 1 is control-dependent on the condition; b = 2 is not.
	if len(res.ControlDeps[inThen.ID]) == 0 {
		t.Fatal("then-branch statement must be control-dependent on the if")
	}
	if len(res.ControlDeps[after.ID]) != 0 {
		t.Fatalf("post-join statement must not be control-dependent, got %v",
			res.ControlDeps[after.ID])
	}
}

func TestControlDependenceInLoop(t *testing.T) {
	_, res := computeFor(t, `
void f(int n) {
    int a;
    while (n > 0) {
        a = 1;
        n = n - 1;
    }
}
`)
	body := nodeOfAssign(t, res, 1)
	if len(res.ControlDeps[body.ID]) == 0 {
		t.Fatal("loop body must be control-dependent on the loop condition")
	}
}

func TestDataDependenceDefUse(t *testing.T) {
	_, res := computeFor(t, `
void f(void) {
    int x;
    int y;
    x = 5;
    y = x;
}
`)
	// Find the y = x node.
	var useNode *cfg.Node
	for _, n := range res.Graph.Nodes {
		if es, ok := n.Stmt.(*cast.ExprStmt); ok {
			if a, ok := es.X.(*cast.AssignExpr); ok {
				if id, ok := a.RHS.(*cast.Ident); ok && id.Name == "x" {
					useNode = n
				}
			}
		}
	}
	if useNode == nil {
		t.Fatal("use node not found")
	}
	defs := res.DataDeps[useNode.ID]
	found := false
	for _, d := range defs {
		if d.Sym.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("y = x must data-depend on the definition of x, got %v", defs)
	}
}

func TestNoSelfDependence(t *testing.T) {
	_, res := computeFor(t, `
void f(void) {
    int x;
    x = 5;
}
`)
	for id, defs := range res.DataDeps {
		for _, d := range defs {
			if d.Node.ID == id {
				t.Fatalf("node %d depends on its own definition", id)
			}
		}
	}
}
