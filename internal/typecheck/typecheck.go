// Package typecheck computes C types for every expression in a translation
// unit. It implements the "type analysis" component the paper lists among
// the OpenRefactory/C facilities (Section III-A): usual arithmetic
// conversions, array-to-pointer decay in value contexts, pointer
// arithmetic, and member/field resolution.
package typecheck

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/ctype"
)

// Error is a type error with position information.
type Error struct {
	Pos ctoken.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Checker annotates expressions with types.
type Checker struct {
	unit *cast.TranslationUnit
	errs []error
}

// Check type-annotates every expression in the unit. It is lenient:
// unresolvable constructs get a nil type rather than failing the whole
// unit, but collected errors are returned for diagnostics.
func Check(unit *cast.TranslationUnit) []error {
	c := &Checker{unit: unit}
	for _, d := range unit.Decls {
		c.checkDecl(d)
	}
	return c.errs
}

func (c *Checker) errorf(n cast.Node, format string, args ...any) {
	c.errs = append(c.errs, &Error{
		Pos: c.unit.File.Position(n.Extent().Pos),
		Msg: fmt.Sprintf(format, args...),
	})
}

func (c *Checker) checkDecl(d cast.Decl) {
	switch x := d.(type) {
	case *cast.VarDecl:
		if x.Init != nil {
			c.checkExpr(x.Init)
		}
	case *cast.MultiDecl:
		for _, vd := range x.Decls {
			c.checkDecl(vd)
		}
	case *cast.FuncDef:
		c.checkStmt(x.Body)
	}
}

func (c *Checker) checkStmt(s cast.Stmt) {
	if s == nil {
		return
	}
	switch x := s.(type) {
	case *cast.ExprStmt:
		c.checkExpr(x.X)
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			c.checkDecl(d)
		}
	case *cast.CompoundStmt:
		for _, item := range x.Items {
			c.checkStmt(item)
		}
	case *cast.IfStmt:
		c.checkExpr(x.Cond)
		c.checkStmt(x.Then)
		c.checkStmt(x.Else)
	case *cast.WhileStmt:
		c.checkExpr(x.Cond)
		c.checkStmt(x.Body)
	case *cast.DoWhileStmt:
		c.checkStmt(x.Body)
		c.checkExpr(x.Cond)
	case *cast.ForStmt:
		c.checkStmt(x.Init)
		if x.Cond != nil {
			c.checkExpr(x.Cond)
		}
		if x.Post != nil {
			c.checkExpr(x.Post)
		}
		c.checkStmt(x.Body)
	case *cast.ReturnStmt:
		if x.Result != nil {
			c.checkExpr(x.Result)
		}
	case *cast.LabeledStmt:
		c.checkStmt(x.Stmt)
	case *cast.SwitchStmt:
		c.checkExpr(x.Tag)
		c.checkStmt(x.Body)
	case *cast.CaseStmt:
		if x.Value != nil {
			c.checkExpr(x.Value)
		}
		c.checkStmt(x.Stmt)
	}
}

// checkExpr computes and records the type of e, returning it. The returned
// type is the expression's declared type — arrays are NOT decayed here so
// that analyses (notably Algorithm 1) can distinguish ArrayType from
// PointerType, exactly as the paper's GETBUFFERLENGTH does.
func (c *Checker) checkExpr(e cast.Expr) ctype.Type {
	if e == nil {
		return nil
	}
	t := c.typeOf(e)
	e.SetType(t)
	return t
}

func (c *Checker) typeOf(e cast.Expr) ctype.Type {
	switch x := e.(type) {
	case *cast.Ident:
		if x.Sym == nil {
			return nil
		}
		return x.Sym.Type
	case *cast.IntLit:
		return ctype.IntType
	case *cast.FloatLit:
		return ctype.DoubleType
	case *cast.CharLit:
		return ctype.IntType // char constants have type int in C
	case *cast.StringLit:
		return ctype.ArrayOf(ctype.CharType, len(x.Value)+1)
	case *cast.ParenExpr:
		return c.checkExpr(x.Inner)
	case *cast.UnaryExpr:
		return c.typeOfUnary(x)
	case *cast.PostfixExpr:
		return c.checkExpr(x.Operand)
	case *cast.BinaryExpr:
		return c.typeOfBinary(x)
	case *cast.AssignExpr:
		lt := c.checkExpr(x.LHS)
		c.checkExpr(x.RHS)
		return lt
	case *cast.CondExpr:
		c.checkExpr(x.Cond)
		tt := c.checkExpr(x.Then)
		et := c.checkExpr(x.Else)
		if tt != nil {
			return ctype.Decay(tt)
		}
		if et != nil {
			return ctype.Decay(et)
		}
		return nil
	case *cast.CallExpr:
		return c.typeOfCall(x)
	case *cast.IndexExpr:
		bt := c.checkExpr(x.Base)
		c.checkExpr(x.Index)
		if elem := ctype.Elem(bt); elem != nil {
			return elem
		}
		// index[base] with integer base: try the other operand.
		it := x.Index.Type()
		if elem := ctype.Elem(it); elem != nil {
			return elem
		}
		return nil
	case *cast.MemberExpr:
		return c.typeOfMember(x)
	case *cast.CastExpr:
		c.checkExpr(x.Operand)
		return x.ToType
	case *cast.SizeofExpr:
		if x.Operand != nil {
			c.checkExpr(x.Operand)
		}
		return ctype.SizeTType
	case *cast.CommaExpr:
		c.checkExpr(x.X)
		return c.checkExpr(x.Y)
	case *cast.InitListExpr:
		for _, el := range x.Elems {
			c.checkExpr(el)
		}
		return nil
	default:
		return nil
	}
}

func (c *Checker) typeOfUnary(x *cast.UnaryExpr) ctype.Type {
	ot := c.checkExpr(x.Operand)
	switch x.Op {
	case cast.UnaryAddrOf:
		if ot == nil {
			return nil
		}
		return ctype.PointerTo(ot)
	case cast.UnaryDeref:
		if elem := ctype.Elem(ot); elem != nil {
			return elem
		}
		return nil
	case cast.UnaryNot:
		return ctype.IntType
	case cast.UnaryPlus, cast.UnaryMinus, cast.UnaryBitNot:
		if ot != nil && ctype.IsInteger(ot) {
			return promote(ot)
		}
		return ot
	case cast.UnaryPreInc, cast.UnaryPreDec:
		return ot
	default:
		return nil
	}
}

func (c *Checker) typeOfBinary(x *cast.BinaryExpr) ctype.Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	switch x.Op {
	case cast.BinaryLt, cast.BinaryGt, cast.BinaryLe, cast.BinaryGe,
		cast.BinaryEq, cast.BinaryNe, cast.BinaryLAnd, cast.BinaryLOr:
		return ctype.IntType
	case cast.BinaryAdd, cast.BinarySub:
		lp := lt != nil && (ctype.IsPointer(lt) || ctype.IsArray(lt))
		rp := rt != nil && (ctype.IsPointer(rt) || ctype.IsArray(rt))
		switch {
		case lp && rp && x.Op == cast.BinarySub:
			return ctype.LongType // ptrdiff_t
		case lp:
			return ctype.Decay(lt)
		case rp:
			return ctype.Decay(rt)
		default:
			return usualArith(lt, rt)
		}
	default:
		return usualArith(lt, rt)
	}
}

func (c *Checker) typeOfCall(x *cast.CallExpr) ctype.Type {
	ft := c.checkExpr(x.Fun)
	for _, a := range x.Args {
		c.checkExpr(a)
	}
	switch f := ctype.Unqualify(ft).(type) {
	case *ctype.Func:
		return f.Result
	case *ctype.Pointer:
		if inner, ok := ctype.Unqualify(f.Elem).(*ctype.Func); ok {
			return inner.Result
		}
	}
	// Implicitly declared function: int per C89.
	return ctype.IntType
}

func (c *Checker) typeOfMember(x *cast.MemberExpr) ctype.Type {
	bt := c.checkExpr(x.Base)
	if bt == nil {
		return nil
	}
	rt := ctype.Unqualify(bt)
	if x.Arrow {
		p, ok := rt.(*ctype.Pointer)
		if !ok {
			c.errorf(x, "-> applied to non-pointer type %s", bt)
			return nil
		}
		rt = ctype.Unqualify(p.Elem)
	}
	rec, ok := rt.(*ctype.Record)
	if !ok {
		c.errorf(x, "member access on non-record type %s", bt)
		return nil
	}
	f, ok := rec.FieldNamed(x.Member)
	if !ok {
		c.errorf(x, "no member %q in %s", x.Member, rec)
		return nil
	}
	return f.Type
}

// promote applies the integer promotions.
func promote(t ctype.Type) ctype.Type {
	b, ok := ctype.Unqualify(t).(*ctype.Basic)
	if !ok {
		return t
	}
	switch b.Kind {
	case ctype.Bool, ctype.Char, ctype.SChar, ctype.UChar, ctype.Short, ctype.UShort:
		return ctype.IntType
	default:
		return t
	}
}

// usualArith applies the usual arithmetic conversions, approximately: the
// wider type wins; unsigned wins ties; float beats integer.
func usualArith(a, b ctype.Type) ctype.Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	ab, aok := ctype.Unqualify(a).(*ctype.Basic)
	bb, bok := ctype.Unqualify(b).(*ctype.Basic)
	if !aok || !bok {
		return promote(a)
	}
	if ab.IsFloat() && !bb.IsFloat() {
		return ab
	}
	if bb.IsFloat() && !ab.IsFloat() {
		return bb
	}
	pa, pb := promote(ab).(*ctype.Basic), promote(bb).(*ctype.Basic)
	if rank(pa.Kind) >= rank(pb.Kind) {
		return pa
	}
	return pb
}

func rank(k ctype.BasicKind) int {
	switch k {
	case ctype.Int:
		return 1
	case ctype.UInt:
		return 2
	case ctype.Long:
		return 3
	case ctype.ULong:
		return 4
	case ctype.LongLong:
		return 5
	case ctype.ULongLong:
		return 6
	case ctype.Float:
		return 7
	case ctype.Double:
		return 8
	case ctype.LongDouble:
		return 9
	default:
		return 0
	}
}
