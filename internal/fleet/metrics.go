package fleet

import (
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// routerMetrics holds the router's counters; everything atomic, same
// discipline as the single daemon's metrics.
type routerMetrics struct {
	start time.Time

	fixRequests    atomic.Int64
	lintRequests   atomic.Int64
	batchRequests  atomic.Int64
	batchFiles     atomic.Int64
	healthRequests atomic.Int64
	readyRequests  atomic.Int64

	clientErrors atomic.Int64
	serverErrors atomic.Int64
	panics       atomic.Int64

	routedTotal      atomic.Int64
	retriedTotal     atomic.Int64
	hedgedTotal      atomic.Int64
	brokenTotal      atomic.Int64
	collapsed        atomic.Int64
	upstreamFailures atomic.Int64
	unroutable       atomic.Int64

	latency server.LatencyHist
}

// BackendSnapshot is one backend's slice of the router's /metrics
// payload.
type BackendSnapshot struct {
	// Healthy reports the health overlay: false while ejected.
	Healthy bool `json:"healthy"`
	// BreakerState is "closed", "open" or "half_open".
	BreakerState string `json:"breaker_state"`
	// BreakerOpens counts cumulative open transitions.
	BreakerOpens int64 `json:"breaker_opens"`
	// Routed counts upstream attempts sent to this backend; Retried and
	// Hedged are the subsets launched as retries and hedges.
	Routed  int64 `json:"routed"`
	Retried int64 `json:"retried"`
	Hedged  int64 `json:"hedged"`
	// Broken counts times the backend was skipped on an open circuit.
	Broken int64 `json:"broken"`
	// EjectedTotal counts health ejection events.
	EjectedTotal int64 `json:"ejected_total"`
}

// RouterSnapshot is the JSON shape of the router's GET /metrics.
type RouterSnapshot struct {
	Router        bool    `json:"router"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      struct {
		Fix     int64 `json:"fix"`
		Lint    int64 `json:"lint"`
		Batch   int64 `json:"batch"`
		Healthz int64 `json:"healthz"`
		Readyz  int64 `json:"readyz"`
	} `json:"requests"`
	BatchFiles int64 `json:"batch_files"`
	Draining   bool  `json:"draining,omitempty"`

	Rejected429     int64 `json:"rejected_429"`
	ClientErrors    int64 `json:"client_errors"`
	ServerErrors    int64 `json:"server_errors"`
	PanicsRecovered int64 `json:"panics_recovered"`
	InFlight        int64 `json:"in_flight"`

	// RoutedTotal counts upstream attempts across all backends;
	// RetriedTotal/HedgedTotal the retry and hedge subsets. BrokenTotal
	// counts skips on open circuits, CollapsedTotal requests answered by
	// piggybacking on an identical in-flight one (fleet singleflight),
	// UpstreamFailures failed attempts (connect error, retryable status,
	// torn body), Unroutable requests that found no available backend.
	RoutedTotal      int64 `json:"routed_total"`
	RetriedTotal     int64 `json:"retried_total"`
	HedgedTotal      int64 `json:"hedged_total"`
	BrokenTotal      int64 `json:"broken_total"`
	CollapsedTotal   int64 `json:"singleflight_collapsed"`
	UpstreamFailures int64 `json:"upstream_failures"`
	Unroutable       int64 `json:"unroutable"`

	// Backends maps each backend base URL to its health, breaker state
	// and per-backend counters.
	Backends map[string]BackendSnapshot `json:"backends"`

	LatencyBuckets map[string]int64 `json:"latency_buckets"`
	LatencyTotalMs int64            `json:"latency_total_ms"`
}

// snapshot reads every counter.
func (rt *Router) snapshot() RouterSnapshot {
	var s RouterSnapshot
	s.Router = true
	s.UptimeSeconds = time.Since(rt.m.start).Seconds()
	s.Requests.Fix = rt.m.fixRequests.Load()
	s.Requests.Lint = rt.m.lintRequests.Load()
	s.Requests.Batch = rt.m.batchRequests.Load()
	s.Requests.Healthz = rt.m.healthRequests.Load()
	s.Requests.Readyz = rt.m.readyRequests.Load()
	s.BatchFiles = rt.m.batchFiles.Load()
	s.Draining = rt.draining.Load()
	s.Rejected429 = rt.gate.Rejected()
	s.ClientErrors = rt.m.clientErrors.Load()
	s.ServerErrors = rt.m.serverErrors.Load()
	s.PanicsRecovered = rt.m.panics.Load()
	s.InFlight = rt.gate.InFlight()
	s.RoutedTotal = rt.m.routedTotal.Load()
	s.RetriedTotal = rt.m.retriedTotal.Load()
	s.HedgedTotal = rt.m.hedgedTotal.Load()
	s.BrokenTotal = rt.m.brokenTotal.Load()
	s.CollapsedTotal = rt.m.collapsed.Load()
	s.UpstreamFailures = rt.m.upstreamFailures.Load()
	s.Unroutable = rt.m.unroutable.Load()
	s.Backends = make(map[string]BackendSnapshot, len(rt.backendList))
	for _, be := range rt.backendList {
		s.Backends[be.url] = BackendSnapshot{
			Healthy:      be.available(),
			BreakerState: be.breaker.State(),
			BreakerOpens: be.breaker.Opens(),
			Routed:       be.routed.Load(),
			Retried:      be.retried.Load(),
			Hedged:       be.hedged.Load(),
			Broken:       be.broken.Load(),
			EjectedTotal: be.ejection.Load(),
		}
	}
	s.LatencyBuckets = rt.m.latency.Buckets()
	s.LatencyTotalMs = rt.m.latency.TotalMs()
	return s
}
