// Package intflow is the integer-overflow oracle: a second static-
// analysis client on the shared interval facts. It runs an
// interprocedural value-range analysis over the same generic dataflow
// solver the buffer oracle uses, tracking signed/unsigned integer
// ranges and wraparound potential through arithmetic, casts, and
// truncating assignments, and classifies findings as
//
//	CWE-190 — integer wraparound past the top of the type,
//	CWE-191 — underflow below the bottom of the type,
//	CWE-680 — a possibly-wrapped value reaching an allocation-size
//	          sink (malloc/calloc/realloc/g_malloc or a wrapper
//	          discovered through the call graph).
//
// For CWE-680 sites the oracle additionally renders an IntRepair-style
// precondition guard (`if (a > MAX / b) ...`) as a *suggested*, never
// applied, repair annotation (Finding.Guard).
package intflow

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/interproc"
	"repro/internal/overflow"
)

// Options configures the oracle.
type Options struct {
	// ContextDepth bounds how many call edges argument ranges are
	// propagated along from each call-graph root. 0 disables the
	// interprocedural pass.
	ContextDepth int
	// Limits bounds the oracle the same way the buffer oracle is
	// bounded: the context is polled at solver iterations and between
	// interprocedural contexts; Limits.Steps budgets each per-function
	// solve and Limits.Contexts the interprocedural pass. Exhausted
	// budgets degrade — affected functions get a SevPossible
	// CWEIncomplete finding instead of silently passing.
	Limits fault.Limits
	// Memo, when non-nil, retains findings across runs for incremental
	// sessions. The type is shared with the buffer oracle (Finding is an
	// alias) but each oracle keeps its own instance; keys are namespaced
	// by oracle tag regardless. Arming conditions mirror
	// overflow.Options.Memo: unbudgeted runs with a facts provider that
	// exposes FuncHashes.
	Memo *overflow.Memo
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{ContextDepth: 2}
}

// Facts is the subset of shared analysis facts the oracle consumes when
// an analysis snapshot is threaded in: the unit call graph, per-function
// CFGs, and the may-modify summaries. Without a provider the oracle
// derives private copies.
type Facts interface {
	CallGraph() *callgraph.Graph
	CFG(fn *cast.FuncDef) *cfg.Graph
	MayModify() *interproc.Result
}

// Analyzer runs the integer-overflow oracle over one translation unit.
// It is not safe for concurrent use.
type Analyzer struct {
	unit  *cast.TranslationUnit
	opts  Options
	facts Facts

	cg        *callgraph.Graph
	mm        *interproc.Result
	globalIDs map[int]bool
	sinks     map[string][]int
	cfgs      map[string]*cfg.Graph
	memo      map[string]*solveEntry
	ready     bool

	// Cross-run memoization (incremental sessions).
	hashes  map[string]string
	useMemo bool
	optsSig string

	// Fault-containment bookkeeping, mirroring the buffer oracle's.
	degradedFns  map[string]bool
	ctxSpent     int
	interprocCut bool
}

type solveEntry struct {
	g   *cfg.Graph
	sol *dataflow.Solution[istate]
	p   *iproblem
}

// New creates an analyzer with default options.
func New(unit *cast.TranslationUnit) *Analyzer {
	return NewWithOptions(unit, DefaultOptions())
}

// NewWithOptions creates an analyzer with explicit options.
func NewWithOptions(unit *cast.TranslationUnit, opts Options) *Analyzer {
	return &Analyzer{unit: unit, opts: opts}
}

// NewWithFacts creates an analyzer that reuses shared analysis facts
// instead of rebuilding the call graph, CFGs and may-modify summaries.
func NewWithFacts(unit *cast.TranslationUnit, opts Options, facts Facts) *Analyzer {
	return &Analyzer{unit: unit, opts: opts, facts: facts}
}

func (a *Analyzer) ensure() {
	if a.ready {
		return
	}
	a.ready = true
	if a.facts != nil {
		a.cg = a.facts.CallGraph()
		a.mm = a.facts.MayModify()
	} else {
		a.cg = callgraph.Build(a.unit)
		a.mm = interproc.AnalyzeWith(a.unit, a.cg)
	}
	a.cfgs = make(map[string]*cfg.Graph)
	a.memo = make(map[string]*solveEntry)
	a.degradedFns = make(map[string]bool)
	a.globalIDs = make(map[int]bool)
	for _, sym := range a.unit.Symbols {
		if sym != nil && sym.Kind == cast.SymVar && sym.IsGlobal && isIntVar(sym) {
			a.globalIDs[sym.ID] = true
		}
	}
	a.discoverSinks()
	// Same arming conditions as the buffer oracle: unbudgeted runs only,
	// hash-providing facts snapshot only.
	if a.opts.Memo != nil && a.opts.Limits.Steps == 0 && a.opts.Limits.Contexts == 0 {
		if hp, ok := a.facts.(interface{ FuncHashes() map[string]string }); ok {
			a.hashes = hp.FuncHashes()
			a.useMemo = a.hashes != nil
			a.optsSig = fmt.Sprintf("%d", a.opts.ContextDepth)
			if a.useMemo {
				a.opts.Memo.BeginRun()
			}
		}
	}
}

// solves counts range fixpoint solves package-wide; incremental
// equivalence tests read it to prove untouched functions were not
// re-derived. See overflow.Solves.
var solves int64

// Solves returns the number of per-function fixpoint solves this package
// has run since process start.
func Solves() int64 { return atomic.LoadInt64(&solves) }

// subtreeKey builds the cross-run memo key for one propagation subtree,
// or "" when the context is not memoizable.
func (a *Analyzer) subtreeKey(fn *cast.FuncDef, seed map[int]ival, chain []string, depth int) string {
	if !a.useMemo {
		return ""
	}
	h, ok := a.hashes[fn.Name]
	if !ok {
		return ""
	}
	return overflow.Pass2Key("int", a.optsSig, h, chain, stableIvalSeed(fn, seed), depth)
}

// stableIvalSeed renders a parameter seed by parameter position so the
// serialization survives re-parses (symbol IDs do not).
func stableIvalSeed(fn *cast.FuncDef, seed map[int]ival) string {
	if len(seed) == 0 {
		return ""
	}
	paramIndex := make(map[int]int, len(fn.Params))
	for i, p := range fn.Params {
		if p.Sym != nil {
			paramIndex[p.Sym.ID] = i
		}
	}
	values := make(map[int]string, len(seed))
	for id, v := range seed {
		values[id] = fmt.Sprintf("%d,%d,%t,%t,%s", v.v.Lo, v.v.Hi, v.wrapped, v.definite, v.guard)
	}
	return overflow.StableSeedKey(paramIndex, values)
}

// discoverSinks seeds the allocation-size sinks with the library
// allocators and then closes them over the call graph: a function that
// forwards one of its integer parameters into a known sink's size
// argument is itself a sink at that parameter position. This is how
// `static char *wrapper(unsigned n) { return malloc(n); }` makes
// `wrapper(a * b)` a CWE-680 site.
func (a *Analyzer) discoverSinks() {
	a.sinks = map[string][]int{
		"malloc":   {0},
		"calloc":   {0, 1},
		"realloc":  {1},
		"g_malloc": {0},
	}
	// Fixpoint: at most one new function per round can become a sink.
	for round := 0; round <= len(a.unit.Funcs); round++ {
		changed := false
		for _, fn := range a.unit.Funcs {
			for _, idx := range a.forwardedParams(fn) {
				if !containsInt(a.sinks[fn.Name], idx) {
					a.sinks[fn.Name] = append(a.sinks[fn.Name], idx)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, positions := range a.sinks {
		sort.Ints(positions)
	}
}

// forwardedParams returns the indices of fn's integer parameters that
// appear inside a size argument of a call to a current sink.
func (a *Analyzer) forwardedParams(fn *cast.FuncDef) []int {
	paramIdx := make(map[int]int) // Symbol.ID -> parameter position
	for i, p := range fn.Params {
		if p.Sym != nil && isIntVar(p.Sym) {
			paramIdx[p.Sym.ID] = i
		}
	}
	if len(paramIdx) == 0 || fn.Body == nil {
		return nil
	}
	var out []int
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		call, ok := n.(*cast.CallExpr)
		if !ok {
			return true
		}
		positions, isSink := a.sinks[call.Callee()]
		if !isSink {
			return true
		}
		for _, pos := range positions {
			arg := argAt(call, pos)
			if arg == nil {
				continue
			}
			cast.InspectExprs(arg, func(e cast.Expr) bool {
				if id, isIdent := e.(*cast.Ident); isIdent && id.Sym != nil {
					if i, isParam := paramIdx[id.Sym.ID]; isParam && !containsInt(out, i) {
						out = append(out, i)
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (a *Analyzer) cfgFor(fn *cast.FuncDef) *cfg.Graph {
	if a.facts != nil {
		return a.facts.CFG(fn)
	}
	if g, ok := a.cfgs[fn.Name]; ok {
		return g
	}
	g := cfg.Build(fn)
	a.cfgs[fn.Name] = g
	return g
}

// solve runs (or recalls) the range analysis of fn under the given
// parameter seed.
func (a *Analyzer) solve(fn *cast.FuncDef, seed map[int]ival) *solveEntry {
	key := fn.Name + "|" + seedKey(seed)
	if ent, ok := a.memo[key]; ok {
		return ent
	}
	g := a.cfgFor(fn)
	atomic.AddInt64(&solves, 1)
	p := &iproblem{fn: fn, seed: seed, globalIDs: a.globalIDs, sinks: a.sinks, mm: a.mm}
	sol := dataflow.SolveForwardLimits[istate](g, p, a.opts.Limits)
	if sol.Degraded {
		a.degradedFns[fn.Name] = true
	}
	ent := &solveEntry{g: g, sol: sol, p: p}
	a.memo[key] = ent
	return ent
}

func seedKey(seed map[int]ival) string {
	if len(seed) == 0 {
		return ""
	}
	ids := make([]int, 0, len(seed))
	for id := range seed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		v := seed[id]
		// guard is part of the key: two seeds that differ only in their
		// rendered precondition must not share a solution, or the guard
		// that surfaces at a sink would depend on context visit order —
		// and incremental re-analysis (which skips some contexts via the
		// cross-run memo) would then disagree with a fresh run.
		fmt.Fprintf(&sb, "%d:%d,%d,%t,%t,%s;", id, v.v.Lo, v.v.Hi, v.wrapped, v.definite, v.guard)
	}
	return sb.String()
}

// Analyze runs the oracle and returns the deduplicated findings in
// source order. Budget-degraded functions contribute a SevPossible
// CWEIncomplete finding each, so an exhausted budget can never read as
// a clean file.
func (a *Analyzer) Analyze() []Finding {
	a.ensure()
	var all []Finding
	// Pass 1: every function with unknown parameters.
	for _, fn := range a.unit.Funcs {
		fault.CheckCtx(a.opts.Limits.Ctx)
		var key string
		if a.useMemo {
			if h, ok := a.hashes[fn.Name]; ok {
				key = overflow.Pass1Key("int", a.optsSig, fn.Name, h)
				if fs, ok := a.opts.Memo.Load(key, a.unit.File); ok {
					all = append(all, fs...)
					continue
				}
			}
		}
		ent := a.solve(fn, nil)
		fs := a.check(fn, ent, nil)
		if key != "" {
			a.opts.Memo.Store(key, fs)
		}
		all = append(all, fs...)
	}
	// Pass 2: propagate argument ranges from the call-graph roots.
	if a.opts.ContextDepth > 0 {
		for _, root := range a.cg.Roots() {
			all = append(all, a.propagate(root, nil, []string{root.Name}, a.opts.ContextDepth)...)
		}
	}
	// Unit.Funcs order keeps degraded findings deterministic.
	for _, fn := range a.unit.Funcs {
		if a.degradedFns[fn.Name] {
			all = append(all, a.degradedFinding(fn))
		}
	}
	return dedup(all)
}

// check replays the solved transfer functions over every reached node
// with a checker attached, so findings come from exactly the arithmetic
// the fixpoint evaluated.
func (a *Analyzer) check(fn *cast.FuncDef, ent *solveEntry, chain []string) []Finding {
	chk := &ichecker{a: a, fn: fn, chain: chain}
	rp := *ent.p
	rp.chk = chk
	for _, n := range ent.g.Nodes {
		if !ent.sol.Reached[n.ID] {
			continue
		}
		rp.transferNode(n, ent.sol.In[n.ID])
	}
	return chk.out
}

func (a *Analyzer) propagate(fn *cast.FuncDef, seed map[int]ival, chain []string, depth int) []Finding {
	fault.CheckCtx(a.opts.Limits.Ctx)
	if max := a.opts.Limits.Contexts; max > 0 && a.ctxSpent >= max {
		a.interprocCut = true
		return nil
	}
	// A subtree hit replays this context and everything below it; fn's
	// dependency hash covers its transitive callees.
	key := a.subtreeKey(fn, seed, chain, depth)
	if key != "" {
		if out, ok := a.opts.Memo.Load(key, a.unit.File); ok {
			return out
		}
	}
	a.ctxSpent++
	ent := a.solve(fn, seed)
	var out []Finding
	if len(chain) > 1 {
		// Pass 1 already checked the empty-seed root context.
		out = a.check(fn, ent, chain)
	}
	if depth > 0 {
		for _, e := range a.cg.CallsFrom(fn.Name) {
			if e.Callee == nil || inChain(chain, e.CalleeName) {
				continue
			}
			n := ent.g.NodeContaining(e.Call)
			if n == nil || !ent.sol.Reached[n.ID] {
				continue
			}
			next := a.argSeed(ent.p, ent.sol.In[n.ID], e)
			sub := append(append([]string(nil), chain...), e.CalleeName)
			out = append(out, a.propagate(e.Callee, next, sub, depth-1)...)
		}
	}
	if key != "" {
		a.opts.Memo.Store(key, out)
	}
	return out
}

// argSeed evaluates the call's arguments under the caller's state at
// the call site and binds the resulting values — including wrap taint —
// to the callee's integer parameters.
func (a *Analyzer) argSeed(p *iproblem, st istate, e callgraph.Edge) map[int]ival {
	seed := make(map[int]ival)
	for i, prm := range e.Callee.Params {
		if prm.Sym == nil || i >= len(e.Call.Args) {
			break
		}
		if !isIntVar(prm.Sym) {
			continue
		}
		v := p.convert(e.Call.Args[i], p.eval(st, e.Call.Args[i]), prm.Sym.Type)
		if !v.isTop() {
			seed[prm.Sym.ID] = v
		}
	}
	return seed
}

// degradedFinding is the never-silent marker for a function whose range
// solve was cut short by the step budget.
func (a *Analyzer) degradedFinding(fn *cast.FuncDef) Finding {
	f := Finding{
		CWE:          CWEIncomplete,
		Severity:     overflow.SevPossible,
		Function:     fn.Name,
		Degraded:     true,
		Msg:          "integer range analysis budget exhausted; arithmetic in this function is unverified",
		SuggestedFix: "raise the solver step budget or audit the function manually",
		Extent:       fn.Extent(),
	}
	if a.unit.File != nil {
		f.Pos = a.unit.File.Position(f.Extent.Pos)
	}
	return f
}

// Degradations describes every budget cut the oracle took, for the
// pipeline's Report.Degraded log.
func (a *Analyzer) Degradations() []string {
	if !a.ready {
		return nil
	}
	var out []string
	for _, fn := range a.unit.Funcs {
		if a.degradedFns[fn.Name] {
			out = append(out, fmt.Sprintf("intflow: range solve budget exhausted in %s", fn.Name))
		}
	}
	if a.interprocCut {
		out = append(out, fmt.Sprintf(
			"intflow: interprocedural context budget exhausted after %d contexts", a.ctxSpent))
	}
	return out
}

// CWEIncomplete re-exports the degraded-finding marker for clients that
// only import intflow.
const CWEIncomplete = overflow.CWEIncomplete

// Analyze is the package-level convenience entry point: run the oracle
// with default options.
func Analyze(unit *cast.TranslationUnit) []Finding {
	return New(unit).Analyze()
}
