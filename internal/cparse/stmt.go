package cparse

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// parseCompoundStmt parses a brace-enclosed block, opening a new scope.
func (p *Parser) parseCompoundStmt() *cast.CompoundStmt {
	lb := p.expect("{")
	cs := &cast.CompoundStmt{LBrace: lb.Extent}
	p.pushScope()
	for !p.atText("}") && !p.at(ctoken.KindEOF) {
		cs.Items = append(cs.Items, p.parseBlockItem())
	}
	rb := p.expect("}")
	cs.RBrace = rb.Extent
	cs.SetExtent(ctoken.Extent{Pos: lb.Extent.Pos, End: rb.Extent.End})
	p.popScope()
	return cs
}

// parseBlockItem parses a declaration or statement inside a block.
func (p *Parser) parseBlockItem() cast.Stmt {
	if p.startsDecl() {
		return p.parseDeclStmt()
	}
	return p.parseStmt()
}

// startsDecl reports whether the current token begins a declaration.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if t.Kind == ctoken.KindKeyword {
		switch t.Text {
		case "typedef", "extern", "static", "auto", "register",
			"void", "char", "short", "int", "long", "float", "double",
			"signed", "unsigned", "_Bool", "struct", "union", "enum",
			"const", "volatile", "restrict", "__restrict", "inline",
			"__inline", "__extension__":
			return true
		}
		return false
	}
	// A typedef name followed by something that can continue a declarator.
	if t.Kind == ctoken.KindIdent && p.isTypeName(t.Text) {
		n := p.peekN(1)
		if n.Is("*") || n.Kind == ctoken.KindIdent || n.Is("(") {
			// "T * x" is ambiguous with multiplication; C resolves it as a
			// declaration when T is a typedef name, and so do we.
			return true
		}
	}
	return false
}

// parseDeclStmt parses a local declaration statement.
func (p *Parser) parseDeclStmt() cast.Stmt {
	start := p.cur().Extent.Pos
	specs := p.parseDeclSpecs()
	if p.atText(";") {
		end := p.advance().Extent.End
		// Tag-only local declaration.
		ds := &cast.DeclStmt{}
		ds.SetExtent(ctoken.Extent{Pos: start, End: end})
		return ds
	}
	d := p.parseDeclarator(specs.base)
	decl := p.finishDeclaration(start, specs, d, false)
	ds := &cast.DeclStmt{}
	switch x := decl.(type) {
	case *cast.VarDecl:
		ds.Decls = []*cast.VarDecl{x}
	case *cast.MultiDecl:
		ds.Decls = x.Decls
	case *cast.TypedefDecl:
		// Local typedef: keep an empty DeclStmt (bound in scope already).
	}
	ds.SetExtent(ctoken.Extent{Pos: start, End: p.toks[p.pos-1].Extent.End})
	return ds
}

// parseStmt parses a single statement.
func (p *Parser) parseStmt() cast.Stmt {
	t := p.cur()
	switch {
	case t.Is("{"):
		return p.parseCompoundStmt()
	case t.Is(";"):
		tok := p.advance()
		ns := &cast.NullStmt{}
		ns.SetExtent(tok.Extent)
		return ns
	case t.IsKeyword("if"):
		return p.parseIfStmt()
	case t.IsKeyword("while"):
		return p.parseWhileStmt()
	case t.IsKeyword("do"):
		return p.parseDoWhileStmt()
	case t.IsKeyword("for"):
		return p.parseForStmt()
	case t.IsKeyword("return"):
		start := p.advance().Extent.Pos
		rs := &cast.ReturnStmt{}
		if !p.atText(";") {
			rs.Result = p.parseExpr()
		}
		end := p.expect(";").Extent.End
		rs.SetExtent(ctoken.Extent{Pos: start, End: end})
		return rs
	case t.IsKeyword("break"):
		start := p.advance().Extent.Pos
		end := p.expect(";").Extent.End
		bs := &cast.BreakStmt{}
		bs.SetExtent(ctoken.Extent{Pos: start, End: end})
		return bs
	case t.IsKeyword("continue"):
		start := p.advance().Extent.Pos
		end := p.expect(";").Extent.End
		cs := &cast.ContinueStmt{}
		cs.SetExtent(ctoken.Extent{Pos: start, End: end})
		return cs
	case t.IsKeyword("goto"):
		start := p.advance().Extent.Pos
		label := p.expectIdent().Text
		end := p.expect(";").Extent.End
		gs := &cast.GotoStmt{Label: label}
		gs.SetExtent(ctoken.Extent{Pos: start, End: end})
		return gs
	case t.IsKeyword("switch"):
		return p.parseSwitchStmt()
	case t.IsKeyword("case"), t.IsKeyword("default"):
		return p.parseCaseStmt()
	case t.Kind == ctoken.KindIdent && p.peekN(1).Is(":"):
		start := t.Extent.Pos
		label := p.advance().Text
		p.expect(":")
		var inner cast.Stmt
		if p.atText("}") {
			// Label at end of block: statement is empty.
			inner = &cast.NullStmt{}
		} else {
			inner = p.parseBlockItem()
		}
		ls := &cast.LabeledStmt{Label: label, Stmt: inner}
		ls.SetExtent(ctoken.Extent{Pos: start, End: inner.Extent().End})
		return ls
	default:
		start := t.Extent.Pos
		e := p.parseExpr()
		end := p.expect(";").Extent.End
		es := &cast.ExprStmt{X: e}
		es.SetExtent(ctoken.Extent{Pos: start, End: end})
		return es
	}
}

func (p *Parser) parseIfStmt() cast.Stmt {
	start := p.advance().Extent.Pos // if
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	thenS := p.parseStmt()
	is := &cast.IfStmt{Cond: cond, Then: thenS}
	end := thenS.Extent().End
	if p.cur().IsKeyword("else") {
		p.advance()
		is.Else = p.parseStmt()
		end = is.Else.Extent().End
	}
	is.SetExtent(ctoken.Extent{Pos: start, End: end})
	return is
}

func (p *Parser) parseWhileStmt() cast.Stmt {
	start := p.advance().Extent.Pos // while
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	body := p.parseStmt()
	ws := &cast.WhileStmt{Cond: cond, Body: body}
	ws.SetExtent(ctoken.Extent{Pos: start, End: body.Extent().End})
	return ws
}

func (p *Parser) parseDoWhileStmt() cast.Stmt {
	start := p.advance().Extent.Pos // do
	body := p.parseStmt()
	if !p.cur().IsKeyword("while") {
		p.errorf(p.cur().Extent.Pos, "expected 'while' after do-body, found %s", p.cur())
	}
	p.advance()
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	end := p.expect(";").Extent.End
	ds := &cast.DoWhileStmt{Body: body, Cond: cond}
	ds.SetExtent(ctoken.Extent{Pos: start, End: end})
	return ds
}

func (p *Parser) parseForStmt() cast.Stmt {
	start := p.advance().Extent.Pos // for
	p.expect("(")
	p.pushScope()
	defer p.popScope()
	fs := &cast.ForStmt{}
	if !p.atText(";") {
		if p.startsDecl() {
			fs.Init = p.parseDeclStmt()
		} else {
			initStart := p.cur().Extent.Pos
			e := p.parseExpr()
			end := p.expect(";").Extent.End
			es := &cast.ExprStmt{X: e}
			es.SetExtent(ctoken.Extent{Pos: initStart, End: end})
			fs.Init = es
		}
	} else {
		p.advance()
	}
	if !p.atText(";") {
		fs.Cond = p.parseExpr()
	}
	p.expect(";")
	if !p.atText(")") {
		fs.Post = p.parseExpr()
	}
	p.expect(")")
	fs.Body = p.parseStmt()
	fs.SetExtent(ctoken.Extent{Pos: start, End: fs.Body.Extent().End})
	return fs
}

func (p *Parser) parseSwitchStmt() cast.Stmt {
	start := p.advance().Extent.Pos // switch
	p.expect("(")
	tag := p.parseExpr()
	p.expect(")")
	body := p.parseStmt()
	ss := &cast.SwitchStmt{Tag: tag, Body: body}
	ss.SetExtent(ctoken.Extent{Pos: start, End: body.Extent().End})
	return ss
}

func (p *Parser) parseCaseStmt() cast.Stmt {
	t := p.cur()
	start := p.advance().Extent.Pos
	cs := &cast.CaseStmt{}
	if t.IsKeyword("case") {
		cs.Value = p.parseConditionalExpr()
	}
	end := p.expect(":").Extent.End
	// The labeled statement, unless another label or the block end follows.
	if !p.atText("}") && !p.cur().IsKeyword("case") && !p.cur().IsKeyword("default") {
		cs.Stmt = p.parseBlockItem()
		end = cs.Stmt.Extent().End
	}
	cs.SetExtent(ctoken.Extent{Pos: start, End: end})
	return cs
}
