// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure of Section IV — and prints them side by side with the
// paper's reported numbers.
//
//	experiments                  run everything (full 4,505-program corpus)
//	experiments -table 3         one table (1..6)
//	experiments -figure 2        Figure 2
//	experiments -rq 3            the RQ3 overhead measurement
//	experiments -cve             the LibTIFF case study
//	experiments -lint            cross-validate the static overflow oracle
//	                             against the checked interpreter on SAMATE,
//	                             then run the integer-overflow oracle on the
//	                             synthetic CWE-190/680 corpus
//	experiments -stride 10       sample the SAMATE corpus (faster)
//	experiments -iters 500       RQ3 workload iterations
//	experiments -table 3 -cache  additionally time cold vs cache-warm
//	                             core.Fix passes over the corpus
//	experiments -table 3 -stages additionally print the per-stage
//	                             pipeline time breakdown (traced)
//	experiments -table 3 -backend bsd
//	                             run Table III with a different repair
//	                             dialect (glib, bsd, c11k)
//	experiments -bench-json f    run the SAMATE pipeline benchmark and
//	                             write the per-stage report to f
//	                             (BENCH_pipeline.json in CI; honors -stride)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		table    = flag.Int("table", 0, "print one table (1..6); 0 = all")
		figure   = flag.Int("figure", 0, "print one figure (2)")
		rq       = flag.Int("rq", 0, "run one research question (3)")
		cve      = flag.Bool("cve", false, "run the LibTIFF case study")
		lint     = flag.Bool("lint", false, "cross-validate the static overflow oracle on SAMATE")
		ablation = flag.Bool("ablation", false, "run the alias-precision ablation")
		stride   = flag.Int("stride", 1, "sample every Nth SAMATE program")
		cacheRun = flag.Bool("cache", false, "with table 3: time cold vs cache-warm core.Fix passes")
		iters    = flag.Int("iters", 200, "RQ3 workload iterations")
		filler   = flag.Int("filler", 2, "filler functions per corpus file (Table IV bulk)")
		stages   = flag.Bool("stages", false, "with table 3: add the per-stage pipeline time breakdown")
		benchOut = flag.String("bench-json", "", "run the SAMATE pipeline benchmark and write BENCH_pipeline.json here")
		dialect  = flag.String("backend", "glib", `repair dialect for the SAMATE runs: "glib", "bsd", or "c11k"`)
	)
	flag.Parse()

	be, err := cfix.CanonicalBackend(*dialect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -backend: %v\n", err)
		return 2
	}

	if *benchOut != "" {
		return runBenchJSON(*benchOut, *stride, be)
	}

	specific := *table != 0 || *figure != 0 || *rq != 0 || *cve || *lint || *ablation
	want := func(t int) bool { return !specific || *table == t }

	if want(1) {
		fmt.Println(experiments.FormatTableI())
	}
	if want(2) {
		fmt.Println(experiments.FormatTableII())
	}
	if want(3) {
		rows, err := experiments.RunTableIII(experiments.TableIIIOptions{
			Stride: *stride, CacheWarm: *cacheRun, Stages: *stages, Backend: be})
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatTableIII(rows))
	}
	if want(4) {
		fmt.Println(experiments.FormatTableIV(experiments.RunTableIV(*filler)))
	}
	if want(5) || (!specific || *figure == 2) {
		res, err := experiments.RunTableV()
		if err != nil {
			return fail(err)
		}
		if want(5) {
			fmt.Println(experiments.FormatTableV(res))
			fmt.Println(experiments.FormatFailureTaxonomy(res))
		}
		if !specific || *figure == 2 {
			fmt.Println(experiments.FormatFigure2(res))
		}
	}
	if want(6) {
		rows, err := experiments.RunTableVI()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatTableVI(rows))
	}
	if !specific || *rq == 3 {
		rows, err := experiments.RunRQ3(*iters)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatRQ3(rows))
	}
	if !specific || *cve {
		r, err := experiments.RunCVE()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatCVE(r))
	}
	if !specific || *lint {
		rows, err := experiments.RunLint(experiments.LintOptions{Stride: *stride})
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatLint(rows))
		irows, err := experiments.RunIntLint(experiments.LintOptions{Stride: *stride})
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatIntLint(irows))
	}
	if !specific || *ablation {
		r, err := experiments.RunAliasPrecisionAblation()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatAliasPrecision(r))
	}
	return 0
}

// runBenchJSON runs the SAMATE pipeline benchmark (the Table III run
// with per-stage tracing) and writes the machine-readable report CI
// uploads as BENCH_pipeline.json. The table goes to stdout alongside.
func runBenchJSON(path string, stride int, backend string) int {
	opts := experiments.TableIIIOptions{Stride: stride, Stages: true, Backend: backend}
	start := time.Now()
	rows, err := experiments.RunTableIII(opts)
	if err != nil {
		return fail(err)
	}
	wall := time.Since(start)
	fmt.Println(experiments.FormatTableIII(rows))
	f, err := os.Create(path)
	if err != nil {
		return fail(err)
	}
	rep := experiments.BuildBenchReport(rows, opts, wall)
	// Supplementary stage: what would `-checks=int` add? The Table III
	// run keeps lint off, so the integer-overflow oracle is measured
	// separately and appended; benchguard -pipeline gates its share.
	ist, ok, err := experiments.MeasureIntflowStage(stride, 0)
	if err != nil {
		f.Close()
		return fail(err)
	}
	if ok {
		rep.Stages = append(rep.Stages, ist)
	}
	if err := experiments.WriteBenchJSON(f, rep); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s (%d programs, %d stages)\n", path, rep.Programs, len(rep.Stages))
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	return 1
}
