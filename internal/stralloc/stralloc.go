// Package stralloc provides the bounds-tracking string library that SAFE
// TYPE REPLACEMENT introduces (Section II-B3): a modified version of the
// stralloc data structure from qmail. The package emits the C header and
// implementation that transformed programs compile against; the checked
// interpreter (internal/cinterp) executes this C source directly, so the
// fix mechanism the paper evaluates — runtime bounds checks inside the
// library — is exercised end to end.
//
// The data structure:
//
//	typedef struct stralloc {
//	    char *s;          // the string storage
//	    char *f;          // base of the original allocation (for bounds)
//	    unsigned int len; // logical string length
//	    unsigned int a;   // allocated capacity in bytes
//	} stralloc;
//
// The library contains 18 functions (Section III-C: "Our implementation
// contains 18 functions"), listed in FunctionNames.
package stralloc

// FunctionNames lists the 18 library functions in a stable order.
var FunctionNames = []string{
	"stralloc_init",
	"stralloc_ready",
	"stralloc_free",
	"stralloc_copys",
	"stralloc_copybuf",
	"stralloc_copy",
	"stralloc_cats",
	"stralloc_catbuf",
	"stralloc_cat",
	"stralloc_append",
	"stralloc_memset",
	"stralloc_get_dereferenced_char_at",
	"stralloc_dereference_replace_by",
	"stralloc_increment_by",
	"stralloc_decrement_by",
	"stralloc_compare",
	"stralloc_find_char",
	"stralloc_substring_at",
}

// Header returns the C declarations for the stralloc type and library.
func Header() string {
	return `/* stralloc: bounds-tracking string library introduced by SAFE TYPE
   REPLACEMENT. Adapted from the stralloc structure of qmail. */
typedef struct stralloc {
    char* s;
    char* f;
    unsigned int len;
    unsigned int a;
} stralloc;

void stralloc_init(stralloc *sa);
int stralloc_ready(stralloc *sa, unsigned int n);
void stralloc_free(stralloc *sa);
int stralloc_copys(stralloc *sa, const char *src);
int stralloc_copybuf(stralloc *sa, const char *src, unsigned int n);
int stralloc_copy(stralloc *sa, stralloc *src);
int stralloc_cats(stralloc *sa, const char *src);
int stralloc_catbuf(stralloc *sa, const char *src, unsigned int n);
int stralloc_cat(stralloc *sa, stralloc *src);
int stralloc_append(stralloc *sa, char c);
int stralloc_memset(stralloc *sa, char c, unsigned int n);
char stralloc_get_dereferenced_char_at(stralloc *sa, long i);
int stralloc_dereference_replace_by(stralloc *sa, long i, char c);
int stralloc_increment_by(stralloc *sa, unsigned int n);
int stralloc_decrement_by(stralloc *sa, unsigned int n);
int stralloc_compare(stralloc *sa, stralloc *other);
long stralloc_find_char(stralloc *sa, char c);
char *stralloc_substring_at(stralloc *sa, unsigned int i);
`
}

// Implementation returns the C implementation of the library. Every
// operation checks bounds against the tracked capacity before touching
// memory; growth happens through stralloc_ready, so a former overflow
// becomes either a safe reallocation (writes through the copy/cat API) or
// a refused access (reads/writes through the dereference API).
func Implementation() string {
	return `/* stralloc implementation (see internal/stralloc). */

void stralloc_init(stralloc *sa) {
    sa->s = 0;
    sa->f = 0;
    sa->len = 0;
    sa->a = 0;
}

int stralloc_ready(stralloc *sa, unsigned int n) {
    char *ns;
    unsigned int i;
    if (n == 0) { n = 1; }
    if (sa->s && sa->a >= n) { return 1; }
    ns = malloc(n);
    if (!ns) { return 0; }
    for (i = 0; i < sa->len && i < n; i++) {
        ns[i] = sa->s[i];
    }
    if (sa->s && sa->s == sa->f) {
        free(sa->s);
    }
    sa->s = ns;
    sa->f = ns;
    sa->a = n;
    return 1;
}

void stralloc_free(stralloc *sa) {
    if (sa->s && sa->s == sa->f) {
        free(sa->s);
    }
    sa->s = 0;
    sa->f = 0;
    sa->len = 0;
    sa->a = 0;
}

int stralloc_copybuf(stralloc *sa, const char *src, unsigned int n) {
    unsigned int i;
    if (!stralloc_ready(sa, n + 1)) { return 0; }
    for (i = 0; i < n; i++) {
        sa->s[i] = src[i];
    }
    sa->s[n] = '\0';
    sa->len = n;
    return 1;
}

int stralloc_copys(stralloc *sa, const char *src) {
    return stralloc_copybuf(sa, src, strlen(src));
}

int stralloc_copy(stralloc *sa, stralloc *src) {
    return stralloc_copybuf(sa, src->s, src->len);
}

int stralloc_catbuf(stralloc *sa, const char *src, unsigned int n) {
    unsigned int i;
    if (!stralloc_ready(sa, sa->len + n + 1)) { return 0; }
    for (i = 0; i < n; i++) {
        sa->s[sa->len + i] = src[i];
    }
    sa->len = sa->len + n;
    sa->s[sa->len] = '\0';
    return 1;
}

int stralloc_cats(stralloc *sa, const char *src) {
    return stralloc_catbuf(sa, src, strlen(src));
}

int stralloc_cat(stralloc *sa, stralloc *src) {
    return stralloc_catbuf(sa, src->s, src->len);
}

int stralloc_append(stralloc *sa, char c) {
    return stralloc_catbuf(sa, &c, 1);
}

int stralloc_memset(stralloc *sa, char c, unsigned int n) {
    unsigned int i;
    unsigned int limit;
    limit = n;
    if (sa->a != 0 && limit > sa->a) {
        /* Clamp to the declared capacity: this is the bounds check that
           removes CWE-121/122 overflows from memset-style fills. */
        limit = sa->a;
    }
    if (!stralloc_ready(sa, limit + 1)) { return 0; }
    for (i = 0; i < limit; i++) {
        sa->s[i] = c;
    }
    sa->s[limit] = '\0';
    if (limit > sa->len) { sa->len = limit; }
    return 1;
}

char stralloc_get_dereferenced_char_at(stralloc *sa, long i) {
    /* Bounds-checked read: out-of-range indexes (CWE-126 overread,
       CWE-127 underread) return NUL instead of touching memory. */
    if (i < 0) { return '\0'; }
    if (!sa->s || (unsigned int)i >= sa->a) { return '\0'; }
    return sa->s[i];
}

int stralloc_dereference_replace_by(stralloc *sa, long i, char c) {
    /* Bounds-checked write: refuses CWE-124 underwrites and grows for
       in-range-but-unallocated indexes. Writing NUL keeps C string
       semantics: it terminates the string, so len shrinks to i. */
    if (i < 0) { return 0; }
    if (!stralloc_ready(sa, (unsigned int)i + 1)) { return 0; }
    sa->s[i] = c;
    if (c == '\0') {
        if ((unsigned int)i < sa->len) { sa->len = (unsigned int)i; }
    } else if ((unsigned int)i + 1 > sa->len) {
        sa->len = (unsigned int)i + 1;
    }
    return 1;
}

int stralloc_increment_by(stralloc *sa, unsigned int n) {
    /* Pointer arithmetic replacement: advance s, keeping f for bounds. */
    if (!sa->s) { return 0; }
    if ((unsigned int)(sa->s - sa->f) + n > sa->a) { return 0; }
    sa->s = sa->s + n;
    if (sa->len >= n) { sa->len = sa->len - n; } else { sa->len = 0; }
    return 1;
}

int stralloc_decrement_by(stralloc *sa, unsigned int n) {
    if (!sa->s) { return 0; }
    if (sa->s - n < sa->f) { return 0; }
    sa->s = sa->s - n;
    sa->len = sa->len + n;
    return 1;
}

int stralloc_compare(stralloc *sa, stralloc *other) {
    unsigned int i;
    unsigned int min;
    min = sa->len;
    if (other->len < min) { min = other->len; }
    for (i = 0; i < min; i++) {
        if (sa->s[i] != other->s[i]) {
            if (sa->s[i] < other->s[i]) { return -1; }
            return 1;
        }
    }
    if (sa->len < other->len) { return -1; }
    if (sa->len > other->len) { return 1; }
    return 0;
}

long stralloc_find_char(stralloc *sa, char c) {
    unsigned int i;
    for (i = 0; i < sa->len; i++) {
        if (sa->s[i] == c) { return (long)i; }
    }
    return -1;
}

char *stralloc_substring_at(stralloc *sa, unsigned int i) {
    if (!sa->s || i >= sa->len) { return 0; }
    return sa->s + i;
}
`
}

// FullSource returns header plus implementation, ready to prepend to a
// transformed translation unit.
func FullSource() string {
	return Header() + "\n" + Implementation()
}
