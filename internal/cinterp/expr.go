package cinterp

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/ctype"
)

// lvalue is a resolved assignable location.
type lvalue struct {
	ptr Pointer
	typ ctype.Type
}

// evalExpr evaluates an expression to a value. Array- and struct-typed
// results are represented as pointers to their storage (decay).
func (in *Interp) evalExpr(e cast.Expr) (Value, error) {
	if err := in.step(); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *cast.IntLit:
		return IntV(x.Value), nil
	case *cast.FloatLit:
		return FloatV(x.Value), nil
	case *cast.CharLit:
		return IntV(int64(int8(x.Value))), nil
	case *cast.StringLit:
		return PtrV(Pointer{Obj: in.stringObject(x)}), nil
	case *cast.ParenExpr:
		return in.evalExpr(x.Inner)

	case *cast.Ident:
		return in.evalIdent(x)

	case *cast.UnaryExpr:
		return in.evalUnary(x)

	case *cast.PostfixExpr:
		lv, err := in.evalLValue(x.Operand)
		if err != nil {
			return Value{}, err
		}
		old := in.loadTyped(lv.ptr, lv.typ, x.Extent())
		delta := int64(1)
		if x.Op == cast.PostfixDec {
			delta = -1
		}
		in.storeTyped(lv.ptr, lv.typ, in.addScaled(old, delta, lv.typ), x.Extent())
		return old, nil

	case *cast.BinaryExpr:
		return in.evalBinary(x)

	case *cast.AssignExpr:
		return in.evalAssign(x)

	case *cast.CondExpr:
		cond, err := in.evalExpr(x.Cond)
		if err != nil {
			return Value{}, err
		}
		if cond.AsBool() {
			return in.evalExpr(x.Then)
		}
		return in.evalExpr(x.Else)

	case *cast.CallExpr:
		return in.evalCall(x)

	case *cast.IndexExpr:
		lv, err := in.indexLValue(x)
		if err != nil {
			return Value{}, err
		}
		return in.loadTyped(lv.ptr, lv.typ, x.Extent()), nil

	case *cast.MemberExpr:
		lv, err := in.memberLValue(x)
		if err != nil {
			return Value{}, err
		}
		return in.loadTyped(lv.ptr, lv.typ, x.Extent()), nil

	case *cast.CastExpr:
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return Value{}, err
		}
		return castValue(v, x.ToType), nil

	case *cast.SizeofExpr:
		if x.OfType != nil {
			return IntV(sizeOfType(x.OfType)), nil
		}
		if x.Operand != nil && x.Operand.Type() != nil {
			return IntV(sizeOfType(x.Operand.Type())), nil
		}
		return IntV(8), nil

	case *cast.CommaExpr:
		if _, err := in.evalExpr(x.X); err != nil {
			return Value{}, err
		}
		return in.evalExpr(x.Y)

	default:
		return Value{}, fmt.Errorf("cinterp: unsupported expression %T", e)
	}
}

// evalIdent loads a variable's value (decaying aggregates to pointers).
func (in *Interp) evalIdent(x *cast.Ident) (Value, error) {
	if x.Sym == nil {
		return Value{}, fmt.Errorf("cinterp: unbound identifier %q", x.Name)
	}
	switch x.Sym.Kind {
	case cast.SymEnumConst:
		if en, ok := ctype.Unqualify(x.Sym.Type).(*ctype.Enum); ok {
			for _, c := range en.Consts {
				if c.Name == x.Name {
					return IntV(c.Value), nil
				}
			}
		}
		return IntV(0), nil
	case cast.SymFunc:
		// Function designator: represented as a named marker pointer.
		return PtrV(Pointer{Obj: in.funcMarker(x.Name)}), nil
	}
	if x.Name == "NULL" {
		return NullV(), nil
	}
	if x.Name == "stdin" || x.Name == "stdout" || x.Name == "stderr" {
		return PtrV(Pointer{Obj: in.funcMarker(x.Name)}), nil
	}
	obj := in.objectFor(x.Sym)
	t := x.Sym.Type
	if ctype.IsArray(t) || isRecord(t) {
		return PtrV(Pointer{Obj: obj}), nil
	}
	return in.loadTyped(Pointer{Obj: obj}, t, x.Extent()), nil
}

// funcMarker returns a 1-byte marker object representing a function or
// stream designator.
func (in *Interp) funcMarker(name string) *Object {
	for _, o := range in.objects {
		if o.Kind == ObjGlobal && o.Name == "__marker_"+name {
			return o
		}
	}
	o := in.newObject("__marker_"+name, ObjGlobal, 1)
	return o
}

// stringObject interns a string literal as a read-only object.
func (in *Interp) stringObject(lit *cast.StringLit) *Object {
	if o, ok := in.strLits[lit]; ok {
		return o
	}
	data := append([]byte(lit.Value), 0)
	o := in.newObject("string literal", ObjString, len(data))
	copy(o.Data, data)
	o.ReadOnly = true
	in.strLits[lit] = o
	return o
}

func isRecord(t ctype.Type) bool {
	_, ok := ctype.Unqualify(t).(*ctype.Record)
	return ok
}

// evalLValue resolves an assignable location.
func (in *Interp) evalLValue(e cast.Expr) (lvalue, error) {
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		if x.Sym == nil {
			return lvalue{}, fmt.Errorf("cinterp: unbound identifier %q", x.Name)
		}
		return lvalue{ptr: Pointer{Obj: in.objectFor(x.Sym)}, typ: x.Sym.Type}, nil
	case *cast.UnaryExpr:
		if x.Op != cast.UnaryDeref {
			return lvalue{}, fmt.Errorf("cinterp: not an lvalue: unary %s", x.Op)
		}
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return lvalue{}, err
		}
		t := x.Type()
		if t == nil {
			t = ctype.CharType
		}
		return lvalue{ptr: v.P, typ: t}, nil
	case *cast.IndexExpr:
		return in.indexLValue(x)
	case *cast.MemberExpr:
		return in.memberLValue(x)
	case *cast.CastExpr:
		lv, err := in.evalLValue(x.Operand)
		if err != nil {
			return lvalue{}, err
		}
		lv.typ = x.ToType
		return lv, nil
	default:
		return lvalue{}, fmt.Errorf("cinterp: not an lvalue: %T", e)
	}
}

// indexLValue resolves a[i].
func (in *Interp) indexLValue(x *cast.IndexExpr) (lvalue, error) {
	base, err := in.evalExpr(x.Base)
	if err != nil {
		return lvalue{}, err
	}
	idx, err := in.evalExpr(x.Index)
	if err != nil {
		return lvalue{}, err
	}
	elemT := x.Type()
	if elemT == nil {
		elemT = ctype.CharType
	}
	es := sizeOfType(elemT)
	if base.K != VPtr {
		// Indexing a non-pointer (e.g. int[int]); treat as null deref.
		return lvalue{ptr: Pointer{}, typ: elemT}, nil
	}
	p := base.P
	p.Off += idx.AsInt() * es
	return lvalue{ptr: p, typ: elemT}, nil
}

// memberLValue resolves s.f / p->f.
func (in *Interp) memberLValue(x *cast.MemberExpr) (lvalue, error) {
	baseT := cast.Unparen(x.Base).Type()
	var basePtr Pointer
	if x.Arrow {
		v, err := in.evalExpr(x.Base)
		if err != nil {
			return lvalue{}, err
		}
		basePtr = v.P
		if baseT != nil {
			if pt, ok := ctype.Unqualify(baseT).(*ctype.Pointer); ok {
				baseT = pt.Elem
			}
		}
	} else {
		lv, err := in.evalLValue(x.Base)
		if err != nil {
			return lvalue{}, err
		}
		basePtr = lv.ptr
		baseT = lv.typ
	}
	rec, ok := ctype.Unqualify(baseT).(*ctype.Record)
	if !ok {
		return lvalue{}, fmt.Errorf("cinterp: member access on non-record")
	}
	f, ok := rec.FieldNamed(x.Member)
	if !ok {
		return lvalue{}, fmt.Errorf("cinterp: no member %q", x.Member)
	}
	basePtr.Off += int64(f.Offset)
	return lvalue{ptr: basePtr, typ: f.Type}, nil
}

// evalUnary handles prefix operators.
func (in *Interp) evalUnary(x *cast.UnaryExpr) (Value, error) {
	switch x.Op {
	case cast.UnaryAddrOf:
		lv, err := in.evalLValue(x.Operand)
		if err != nil {
			return Value{}, err
		}
		return PtrV(lv.ptr), nil
	case cast.UnaryDeref:
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return Value{}, err
		}
		t := x.Type()
		if t == nil {
			t = ctype.CharType
		}
		if v.K != VPtr {
			return IntV(0), nil
		}
		return in.loadTyped(v.P, t, x.Extent()), nil
	case cast.UnaryPlus:
		return in.evalExpr(x.Operand)
	case cast.UnaryMinus:
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return Value{}, err
		}
		if v.K == VFloat {
			return FloatV(-v.F), nil
		}
		return IntV(-v.I), nil
	case cast.UnaryNot:
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return Value{}, err
		}
		if v.AsBool() {
			return IntV(0), nil
		}
		return IntV(1), nil
	case cast.UnaryBitNot:
		v, err := in.evalExpr(x.Operand)
		if err != nil {
			return Value{}, err
		}
		return IntV(^v.AsInt()), nil
	case cast.UnaryPreInc, cast.UnaryPreDec:
		lv, err := in.evalLValue(x.Operand)
		if err != nil {
			return Value{}, err
		}
		old := in.loadTyped(lv.ptr, lv.typ, x.Extent())
		delta := int64(1)
		if x.Op == cast.UnaryPreDec {
			delta = -1
		}
		nv := in.addScaled(old, delta, lv.typ)
		in.storeTyped(lv.ptr, lv.typ, nv, x.Extent())
		return nv, nil
	default:
		return Value{}, fmt.Errorf("cinterp: unary %v", x.Op)
	}
}

// addScaled adds delta (scaled by element size for pointers) to v.
func (in *Interp) addScaled(v Value, delta int64, t ctype.Type) Value {
	if v.K == VPtr {
		es := int64(1)
		if elem := ctype.Elem(t); elem != nil {
			es = sizeOfType(elem)
		}
		p := v.P
		p.Off += delta * es
		return PtrV(p)
	}
	if v.K == VFloat {
		return FloatV(v.F + float64(delta))
	}
	return IntV(v.I + delta)
}

// evalBinary handles binary operators including pointer arithmetic.
func (in *Interp) evalBinary(x *cast.BinaryExpr) (Value, error) {
	// Short-circuit logical operators.
	if x.Op == cast.BinaryLAnd || x.Op == cast.BinaryLOr {
		l, err := in.evalExpr(x.X)
		if err != nil {
			return Value{}, err
		}
		if x.Op == cast.BinaryLAnd && !l.AsBool() {
			return IntV(0), nil
		}
		if x.Op == cast.BinaryLOr && l.AsBool() {
			return IntV(1), nil
		}
		r, err := in.evalExpr(x.Y)
		if err != nil {
			return Value{}, err
		}
		if r.AsBool() {
			return IntV(1), nil
		}
		return IntV(0), nil
	}

	l, err := in.evalExpr(x.X)
	if err != nil {
		return Value{}, err
	}
	r, err := in.evalExpr(x.Y)
	if err != nil {
		return Value{}, err
	}
	return in.applyBinary(x.Op, l, r, x)
}

func (in *Interp) applyBinary(op cast.BinaryOp, l, r Value, x *cast.BinaryExpr) (Value, error) {
	// Pointer arithmetic and comparisons.
	if l.K == VPtr || r.K == VPtr {
		return in.pointerBinary(op, l, r, x)
	}
	if l.K == VFloat || r.K == VFloat {
		a, b := l.AsFloat(), r.AsFloat()
		switch op {
		case cast.BinaryAdd:
			return FloatV(a + b), nil
		case cast.BinarySub:
			return FloatV(a - b), nil
		case cast.BinaryMul:
			return FloatV(a * b), nil
		case cast.BinaryDiv:
			if b == 0 {
				return FloatV(0), nil
			}
			return FloatV(a / b), nil
		case cast.BinaryLt:
			return boolV(a < b), nil
		case cast.BinaryGt:
			return boolV(a > b), nil
		case cast.BinaryLe:
			return boolV(a <= b), nil
		case cast.BinaryGe:
			return boolV(a >= b), nil
		case cast.BinaryEq:
			return boolV(a == b), nil
		case cast.BinaryNe:
			return boolV(a != b), nil
		}
		return IntV(0), nil
	}
	a, b := l.I, r.I
	// Unsigned semantics matter for comparisons of size_t and for
	// div/mod; consult the checked operand types.
	unsigned := isUnsignedExpr(x)
	switch op {
	case cast.BinaryAdd:
		return IntV(a + b), nil
	case cast.BinarySub:
		return IntV(a - b), nil
	case cast.BinaryMul:
		return IntV(a * b), nil
	case cast.BinaryDiv:
		if b == 0 {
			in.events = append(in.events, Violation{
				CWE: 369, Pos: in.unit.File.Position(x.Extent().Pos), Msg: "division by zero",
			})
			return IntV(0), nil
		}
		if unsigned {
			return IntV(int64(uint64(a) / uint64(b))), nil
		}
		return IntV(a / b), nil
	case cast.BinaryRem:
		if b == 0 {
			return IntV(0), nil
		}
		if unsigned {
			return IntV(int64(uint64(a) % uint64(b))), nil
		}
		return IntV(a % b), nil
	case cast.BinaryShl:
		return IntV(a << (uint64(b) & 63)), nil
	case cast.BinaryShr:
		if unsigned {
			return IntV(int64(uint64(a) >> (uint64(b) & 63))), nil
		}
		return IntV(a >> (uint64(b) & 63)), nil
	case cast.BinaryLt:
		if unsigned {
			return boolV(uint64(a) < uint64(b)), nil
		}
		return boolV(a < b), nil
	case cast.BinaryGt:
		if unsigned {
			return boolV(uint64(a) > uint64(b)), nil
		}
		return boolV(a > b), nil
	case cast.BinaryLe:
		if unsigned {
			return boolV(uint64(a) <= uint64(b)), nil
		}
		return boolV(a <= b), nil
	case cast.BinaryGe:
		if unsigned {
			return boolV(uint64(a) >= uint64(b)), nil
		}
		return boolV(a >= b), nil
	case cast.BinaryEq:
		return boolV(a == b), nil
	case cast.BinaryNe:
		return boolV(a != b), nil
	case cast.BinaryAnd:
		return IntV(a & b), nil
	case cast.BinaryXor:
		return IntV(a ^ b), nil
	case cast.BinaryOr:
		return IntV(a | b), nil
	default:
		return Value{}, fmt.Errorf("cinterp: binary %v", op)
	}
}

// pointerBinary handles arithmetic/comparison where a pointer is involved.
func (in *Interp) pointerBinary(op cast.BinaryOp, l, r Value, x *cast.BinaryExpr) (Value, error) {
	elemSize := func(e cast.Expr) int64 {
		if t := e.Type(); t != nil {
			if el := ctype.Elem(t); el != nil {
				return sizeOfType(el)
			}
		}
		return 1
	}
	switch op {
	case cast.BinaryAdd:
		if l.K == VPtr && r.K == VInt {
			p := l.P
			p.Off += r.I * elemSize(x.X)
			return PtrV(p), nil
		}
		if r.K == VPtr && l.K == VInt {
			p := r.P
			p.Off += l.I * elemSize(x.Y)
			return PtrV(p), nil
		}
	case cast.BinarySub:
		if l.K == VPtr && r.K == VPtr {
			es := elemSize(x.X)
			if es == 0 {
				es = 1
			}
			if l.P.Obj == r.P.Obj {
				return IntV((l.P.Off - r.P.Off) / es), nil
			}
			return IntV(0), nil
		}
		if l.K == VPtr && r.K == VInt {
			p := l.P
			p.Off -= r.I * elemSize(x.X)
			return PtrV(p), nil
		}
	case cast.BinaryEq, cast.BinaryNe, cast.BinaryLt, cast.BinaryGt, cast.BinaryLe, cast.BinaryGe:
		li, ri := ptrOrd(l), ptrOrd(r)
		switch op {
		case cast.BinaryEq:
			return boolV(li == ri), nil
		case cast.BinaryNe:
			return boolV(li != ri), nil
		case cast.BinaryLt:
			return boolV(li < ri), nil
		case cast.BinaryGt:
			return boolV(li > ri), nil
		case cast.BinaryLe:
			return boolV(li <= ri), nil
		default:
			return boolV(li >= ri), nil
		}
	}
	return IntV(0), nil
}

// ptrOrd gives a total order for pointer comparisons (object ID then
// offset); null sorts lowest. The ID is offset by one so a pointer to
// the base of object 0 never collides with null — `p != 0` on a valid
// pointer must be true.
func ptrOrd(v Value) int64 {
	if v.K != VPtr {
		return v.AsInt()
	}
	if v.P.IsNull() {
		return v.P.Off
	}
	return int64(v.P.Obj.ID+1)<<32 + v.P.Off
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

// isUnsignedExpr reports whether the binary expression compares/computes
// in unsigned arithmetic per the checked types.
func isUnsignedExpr(x *cast.BinaryExpr) bool {
	return isUnsignedType(x.X.Type()) || isUnsignedType(x.Y.Type())
}

func isUnsignedType(t ctype.Type) bool {
	b, ok := ctype.Unqualify(t).(*ctype.Basic)
	if !ok {
		return false
	}
	switch b.Kind {
	case ctype.UChar, ctype.UShort, ctype.UInt, ctype.ULong, ctype.ULongLong, ctype.Bool:
		return true
	default:
		return false
	}
}

// evalAssign executes assignments including compound forms.
func (in *Interp) evalAssign(x *cast.AssignExpr) (Value, error) {
	lv, err := in.evalLValue(x.LHS)
	if err != nil {
		return Value{}, err
	}
	rhs, err := in.evalExpr(x.RHS)
	if err != nil {
		return Value{}, err
	}
	var nv Value
	if x.Op == cast.AssignPlain {
		nv = rhs
	} else {
		old := in.loadTyped(lv.ptr, lv.typ, x.Extent())
		binOp := map[cast.AssignOp]cast.BinaryOp{
			cast.AssignAdd: cast.BinaryAdd, cast.AssignSub: cast.BinarySub,
			cast.AssignMul: cast.BinaryMul, cast.AssignDiv: cast.BinaryDiv,
			cast.AssignRem: cast.BinaryRem, cast.AssignShl: cast.BinaryShl,
			cast.AssignShr: cast.BinaryShr, cast.AssignAnd: cast.BinaryAnd,
			cast.AssignXor: cast.BinaryXor, cast.AssignOr: cast.BinaryOr,
		}[x.Op]
		// Synthesize a binary node view for type-driven semantics.
		shim := &cast.BinaryExpr{Op: binOp, X: x.LHS, Y: x.RHS}
		shim.SetExtent(x.Extent())
		nv, err = in.applyBinary(binOp, old, rhs, shim)
		if err != nil {
			return Value{}, err
		}
	}
	in.storeTyped(lv.ptr, lv.typ, nv, x.Extent())
	return nv, nil
}

// castValue converts v to the target type.
func castValue(v Value, t ctype.Type) Value {
	ut := ctype.Unqualify(t)
	switch tt := ut.(type) {
	case *ctype.Pointer:
		if v.K == VPtr {
			return v
		}
		if v.I == 0 {
			return NullV()
		}
		return v
	case *ctype.Basic:
		if tt.IsFloat() {
			return FloatV(v.AsFloat())
		}
		if v.K == VPtr {
			return v // pointer-to-int casts keep identity for round-trips
		}
		i := v.AsInt()
		size := int64(tt.Size())
		if size > 0 && size < 8 {
			mask := (int64(1) << (8 * size)) - 1
			i &= mask
			if isSignedInt(tt) {
				signBit := int64(1) << (8*size - 1)
				if i&signBit != 0 {
					i |= ^mask
				}
			}
		}
		return IntV(i)
	default:
		return v
	}
}
