package samate

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/harness"
)

func TestTableIIICountsMatchPaper(t *testing.T) {
	want := map[int]int{121: 1877, 122: 890, 124: 680, 126: 416, 127: 624, 242: 18}
	for cwe, n := range want {
		if TableIIICounts[cwe] != n {
			t.Errorf("CWE-%d count: got %d, want %d", cwe, TableIIICounts[cwe], n)
		}
	}
	if TotalPrograms() != 4505 {
		t.Fatalf("total: got %d, want 4505", TotalPrograms())
	}
}

func TestGenerateExactCounts(t *testing.T) {
	for _, cwe := range CWEs {
		n := TableIIICounts[cwe]
		progs := Generate(cwe, n)
		if len(progs) != n {
			t.Errorf("CWE-%d: generated %d, want %d", cwe, len(progs), n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(121, 50)
	b := Generate(121, 50)
	for i := range a {
		if a[i].Source != b[i].Source || a[i].ID != b[i].ID {
			t.Fatalf("generation must be deterministic (program %d differs)", i)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	progs := Generate(121, 200)
	seen := make(map[string]bool, len(progs))
	for _, p := range progs {
		if seen[p.ID] {
			t.Fatalf("duplicate program ID %s", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestSLRSubsetCounts(t *testing.T) {
	// Table III: SLR applies to 1,096 / 644 / 18 programs of CWEs
	// 121/122/242.
	for cwe, want := range SLRApplicableCounts {
		progs := Generate(cwe, TableIIICounts[cwe])
		got := 0
		for _, p := range progs {
			if p.SLRTargeted {
				got++
			}
		}
		if got != want {
			t.Errorf("CWE-%d SLR-targeted: got %d, want %d", cwe, got, want)
		}
	}
}

func TestAllProgramsParse(t *testing.T) {
	// Parse a deterministic slice of every CWE's corpus (full-corpus
	// parsing is covered by the experiments harness).
	for _, cwe := range CWEs {
		n := TableIIICounts[cwe]
		if n > 120 {
			n = 120
		}
		for _, p := range Generate(cwe, n) {
			if _, err := cparse.Parse(p.ID+".c", p.Source); err != nil {
				t.Fatalf("%s does not parse: %v\n%s", p.ID, err, p.Source)
			}
		}
	}
}

// stdinFor supplies input lines for gets/fgets programs.
func stdinFor(p Program) []string {
	if p.CWE != 242 {
		return nil
	}
	long := strings.Repeat("Q", 120)
	return []string{long, long}
}

// verifySample runs the full harness protocol over the first k programs of
// each CWE.
func verifySample(t *testing.T, k int) {
	t.Helper()
	for _, cwe := range CWEs {
		n := TableIIICounts[cwe]
		if n > k {
			n = k
		}
		for _, p := range Generate(cwe, n) {
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
				harness.Options{Stdin: stdinFor(p)})
			if err != nil {
				t.Fatalf("%s: %v\n%s", p.ID, err, p.Source)
			}
			if !v.VulnDetected {
				t.Errorf("%s: bad function did not trigger a violation\n%s", p.ID, p.Source)
				continue
			}
			if !v.Fixed {
				t.Errorf("%s: vulnerability not fixed after transformation; post-bad events: %v\n--- transformed ---\n%s",
					p.ID, v.PostBad.Violations, v.TransformedSource)
			}
			if !v.Preserved {
				t.Errorf("%s: good behavior not preserved (pre=%q post=%q, events=%v)\n--- transformed ---\n%s",
					p.ID, v.PreGood.Stdout, v.PostGood.Stdout, v.PostGood.Violations, v.TransformedSource)
			}
		}
	}
}

func TestSampleProgramsFixedAndPreserved(t *testing.T) {
	// Every (sink × flow) combination appears within the first
	// len(flows)*len(sinks) programs because flows iterate fastest after
	// sinks; 100 per CWE covers all sinks with several flows each.
	verifySample(t, 60)
}

func TestBadFunctionsDetectExpectedCWE(t *testing.T) {
	// The violation class of each program's bad function should match its
	// CWE for the write/read direction cases (the checked interpreter
	// distinguishes all five classes of Table III).
	for _, cwe := range []int{121, 122, 124, 126, 127} {
		p := Generate(cwe, 1)[0]
		v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
			harness.Options{Stdin: stdinFor(p), SkipSLR: true, SkipSTR: true})
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		found := false
		for _, viol := range v.PreBad.Violations {
			if viol.CWE == cwe {
				found = true
			}
		}
		if !found {
			t.Errorf("CWE-%d program %s: violations %v lack the expected class",
				cwe, p.ID, v.PreBad.Violations)
		}
	}
}

func TestGoodFunctionsClean(t *testing.T) {
	for _, cwe := range CWEs {
		n := 24
		if TableIIICounts[cwe] < n {
			n = TableIIICounts[cwe]
		}
		for _, p := range Generate(cwe, n) {
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
				harness.Options{Stdin: stdinFor(p), SkipSLR: true, SkipSTR: true})
			if err != nil {
				t.Fatalf("%s: %v", p.ID, err)
			}
			if v.PreGood.HasViolations() {
				t.Errorf("%s: good function must be violation-free, got %v\n%s",
					p.ID, v.PreGood.Violations, p.Source)
			}
		}
	}
}

func TestProgramLOCReasonable(t *testing.T) {
	p := Generate(121, 1)[0]
	if p.LOC() < 15 || p.LOC() > 120 {
		t.Fatalf("program LOC out of expected range: %d", p.LOC())
	}
}

func TestFlowVariantsAllUsed(t *testing.T) {
	progs := Generate(121, 400)
	flows := make(map[string]bool)
	for _, p := range progs {
		flows[p.Flow] = true
	}
	if len(flows) != len(_flows) {
		t.Fatalf("flow variants used: %d, want %d", len(flows), len(_flows))
	}
}
