package cinterp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctoken"
	"repro/internal/ctype"
	"repro/internal/typecheck"
)

// ctokenExtent aliases the source-extent type for brevity in the typed
// load/store helpers.
type ctokenExtent = ctoken.Extent

// Limits bounds an execution.
type Limits struct {
	// MaxSteps caps statement/expression evaluations (default 20M).
	MaxSteps int64
	// MaxFrames caps call depth (default 256).
	MaxFrames int
	// MaxHeap caps total heap bytes (default 64 MiB).
	MaxHeap int64
}

func (l *Limits) fill() {
	if l.MaxSteps == 0 {
		l.MaxSteps = 20_000_000
	}
	if l.MaxFrames == 0 {
		l.MaxFrames = 256
	}
	if l.MaxHeap == 0 {
		l.MaxHeap = 64 << 20
	}
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("cinterp: step limit exceeded")

// Result is the outcome of running an entry point.
type Result struct {
	// Stdout is everything the program printed.
	Stdout string
	// Return is the entry function's return value (0 for void).
	Return int64
	// Violations lists the memory-safety events in occurrence order.
	Violations []Violation
}

// HasViolations reports whether any memory-safety event occurred.
func (r *Result) HasViolations() bool { return len(r.Violations) > 0 }

// ViolationsByCWE counts events per CWE.
func (r *Result) ViolationsByCWE() map[int]int {
	out := make(map[int]int)
	for _, v := range r.Violations {
		out[v.CWE]++
	}
	return out
}

// Interp executes functions of one translation unit.
type Interp struct {
	unit    *cast.TranslationUnit
	funcs   map[string]*cast.FuncDef
	limits  Limits
	objects []*Object
	globals map[*cast.Symbol]*Object
	strLits map[*cast.StringLit]*Object

	ptrHandles map[Pointer]int64
	ptrTable   []Pointer

	out       strings.Builder
	stdin     []string // queued input lines for gets/fgets
	env       map[string]string
	events    []Violation
	steps     int64
	heapUsed  int64
	randState uint64

	frames []*frame
}

// frame is one function activation.
type frame struct {
	fn     *cast.FuncDef
	vars   map[*cast.Symbol]*Object
	retVal Value
}

// New prepares an interpreter for a parsed, type-checked unit.
func New(unit *cast.TranslationUnit, limits Limits) (*Interp, error) {
	limits.fill()
	in := &Interp{
		unit:       unit,
		funcs:      make(map[string]*cast.FuncDef, len(unit.Funcs)),
		limits:     limits,
		globals:    make(map[*cast.Symbol]*Object),
		strLits:    make(map[*cast.StringLit]*Object),
		ptrHandles: make(map[Pointer]int64),
	}
	for _, f := range unit.Funcs {
		in.funcs[f.Name] = f
	}
	if err := in.initGlobals(); err != nil {
		return nil, err
	}
	return in, nil
}

// LoadAndRun parses, checks and runs src's entry function with the given
// stdin lines. It is the one-call convenience used by the evaluation
// harness.
func LoadAndRun(name, src, entry string, stdin []string, limits Limits) (*Result, error) {
	unit, err := cparse.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("cinterp: parse: %w", err)
	}
	typecheck.Check(unit)
	in, err := New(unit, limits)
	if err != nil {
		return nil, err
	}
	in.SetStdin(stdin)
	return in.Run(entry)
}

// SetStdin queues input lines consumed by gets/fgets.
func (in *Interp) SetStdin(lines []string) {
	in.stdin = append([]string(nil), lines...)
}

// SetEnv provides the environment visible to getenv.
func (in *Interp) SetEnv(env map[string]string) {
	in.env = make(map[string]string, len(env))
	for k, v := range env {
		in.env[k] = v
	}
}

// Run executes the named function with no arguments and collects the
// result. The interpreter may be Run multiple times; globals persist,
// output and events accumulate per run.
func (in *Interp) Run(entry string) (*Result, error) {
	fn, ok := in.funcs[entry]
	if !ok {
		return nil, fmt.Errorf("cinterp: no function %q", entry)
	}
	in.out.Reset()
	in.events = nil
	in.steps = 0
	ret, err := in.call(fn, nil, fn.Extent())
	if err != nil {
		var ex exitErr
		if errors.As(err, &ex) {
			return &Result{
				Stdout:     in.out.String(),
				Return:     ex.code,
				Violations: in.events,
			}, nil
		}
		return &Result{Stdout: in.out.String(), Violations: in.events}, err
	}
	return &Result{
		Stdout:     in.out.String(),
		Return:     ret.AsInt(),
		Violations: in.events,
	}, nil
}

// initGlobals allocates and initializes file-scope objects.
func (in *Interp) initGlobals() error {
	initOne := func(d *cast.VarDecl) error {
		if d.Sym == nil || d.Sym.Kind != cast.SymVar {
			return nil
		}
		size := d.Type.Size()
		if size < 0 {
			size = 8
		}
		obj := in.newObject(d.Name, ObjGlobal, size)
		in.globals[d.Sym] = obj
		if d.Init != nil {
			if err := in.initObject(obj, d.Type, d.Init); err != nil {
				return err
			}
		}
		return nil
	}
	for _, decl := range in.unit.Decls {
		switch x := decl.(type) {
		case *cast.VarDecl:
			if err := initOne(x); err != nil {
				return err
			}
		case *cast.MultiDecl:
			for _, d := range x.Decls {
				if err := initOne(d); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// initObject evaluates an initializer into an object.
func (in *Interp) initObject(obj *Object, typ ctype.Type, init cast.Expr) error {
	ptr := Pointer{Obj: obj}
	return in.initAt(ptr, typ, init)
}

// initAt writes an initializer value at ptr with the given type.
func (in *Interp) initAt(ptr Pointer, typ ctype.Type, init cast.Expr) error {
	ut := ctype.Unqualify(typ)
	if lst, ok := cast.Unparen(init).(*cast.InitListExpr); ok {
		switch t := ut.(type) {
		case *ctype.Array:
			es := int64(t.Elem.Size())
			if es <= 0 {
				es = 1
			}
			for i, el := range lst.Elems {
				if err := in.initAt(Pointer{Obj: ptr.Obj, Off: ptr.Off + int64(i)*es}, t.Elem, el); err != nil {
					return err
				}
			}
			return nil
		case *ctype.Record:
			for i, el := range lst.Elems {
				if i >= len(t.Fields) {
					break
				}
				f := t.Fields[i]
				if err := in.initAt(Pointer{Obj: ptr.Obj, Off: ptr.Off + int64(f.Offset)}, f.Type, el); err != nil {
					return err
				}
			}
			return nil
		default:
			if len(lst.Elems) > 0 {
				return in.initAt(ptr, typ, lst.Elems[0])
			}
			return nil
		}
	}
	// char array initialized from a string literal copies the bytes.
	if arr, ok := ut.(*ctype.Array); ok && ctype.IsCharLike(arr.Elem) {
		if s, ok := cast.Unparen(init).(*cast.StringLit); ok {
			data := append([]byte(s.Value), 0)
			in.storeBytes(ptr, data, init.Extent())
			return nil
		}
	}
	v, err := in.evalExpr(init)
	if err != nil {
		return err
	}
	in.storeTyped(ptr, typ, v, init.Extent())
	return nil
}

// step counts one evaluation unit and enforces the budget.
func (in *Interp) step() error {
	in.steps++
	if in.steps > in.limits.MaxSteps {
		return ErrStepLimit
	}
	return nil
}

// Steps returns the number of evaluation steps consumed by the last Run
// (the RQ3 overhead metric: interpreted work per program).
func (in *Interp) Steps() int64 { return in.steps }

// ctrl describes how a statement terminated.
type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
	ctrlGoto
)

// flow carries control-flow state between statement executions.
type flow struct {
	c     ctrl
	label string
}

var _flowNormal = flow{}

// typedSize returns the byte size for loads/stores of a type (minimum 1).
func typedSize(t ctype.Type) int64 {
	s := t.Size()
	if s <= 0 {
		return 8
	}
	return int64(s)
}

// isSignedInt reports signed integer types (char is signed on the modeled
// target — the property the LibTIFF CVE depends on).
func isSignedInt(t ctype.Type) bool {
	b, ok := ctype.Unqualify(t).(*ctype.Basic)
	if !ok {
		return false
	}
	switch b.Kind {
	case ctype.Char, ctype.SChar, ctype.Short, ctype.Int, ctype.Long, ctype.LongLong:
		return true
	default:
		return false
	}
}

func isFloatType(t ctype.Type) bool {
	b, ok := ctype.Unqualify(t).(*ctype.Basic)
	return ok && b.IsFloat()
}

// storeTyped stores v at ptr according to the C type.
func (in *Interp) storeTyped(ptr Pointer, t ctype.Type, v Value, at ctokenExtent) {
	ut := ctype.Unqualify(t)
	switch ut.(type) {
	case *ctype.Pointer:
		in.storeScalar(ptr, v, 8, true, at)
	case *ctype.Record:
		// Struct assignment: byte copy from the source pointer.
		if v.K == VPtr && !v.P.IsNull() {
			n := int64(ut.Size())
			data := in.loadBytes(v.P, n, at)
			in.storeBytes(ptr, data, at)
		}
	case *ctype.Array:
		// Arrays are not assignable in C; ignore.
	default:
		in.storeScalar(ptr, v, typedSize(ut), false, at)
	}
}

// loadTyped loads a value of type t from ptr.
func (in *Interp) loadTyped(ptr Pointer, t ctype.Type, at ctokenExtent) Value {
	ut := ctype.Unqualify(t)
	switch ut.(type) {
	case *ctype.Pointer:
		return in.loadScalar(ptr, 8, true, false, false, at)
	case *ctype.Record, *ctype.Array:
		// Aggregates load as a pointer to their storage.
		return PtrV(ptr)
	default:
		return in.loadScalar(ptr, typedSize(ut), false, isFloatType(ut), isSignedInt(ut), at)
	}
}

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
