// Package clex tokenizes preprocessed C source text.
//
// The lexer is hand-written and byte-oriented. It recognises the full C
// punctuator set, all literal forms used by the paper's target programs
// (decimal/octal/hex integers with suffixes, floats, char and string
// literals with escapes), keywords, identifiers and residual preprocessor
// line markers. Comments are tokenized (not discarded) so that the rewrite
// engine can reproduce source text faithfully, but the parser-facing stream
// filters them out.
package clex

import (
	"fmt"

	"repro/internal/ctoken"
)

// Error describes a lexical error with its source position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("lex error at offset %d: %s", e.Pos, e.Msg) }

// Lexer produces tokens from a source string.
type Lexer struct {
	src    string
	off    int
	errs   []*Error
	tokens []ctoken.Token
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src}
}

// Tokenize scans the entire input and returns the token stream, excluding
// whitespace but including comments and directives. The final token is
// always KindEOF. Lexical errors are collected and returned together; the
// token stream is still usable (offending bytes are skipped).
func Tokenize(src string) ([]ctoken.Token, error) {
	l := New(src)
	l.run()
	if len(l.errs) > 0 {
		return l.tokens, l.errs[0]
	}
	return l.tokens, nil
}

// TokenizeForParser scans the input and returns only the tokens the parser
// consumes: comments, directives and whitespace are filtered out.
func TokenizeForParser(src string) ([]ctoken.Token, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	out := make([]ctoken.Token, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case ctoken.KindComment, ctoken.KindDirective, ctoken.KindWhitespace:
			continue
		default:
			out = append(out, t)
		}
	}
	return out, nil
}

func (l *Lexer) errorf(pos int, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: ctoken.Pos(pos), Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) emit(kind ctoken.Kind, start int) {
	l.tokens = append(l.tokens, ctoken.Token{
		Kind: kind,
		Text: l.src[start:l.off],
		Extent: ctoken.Extent{
			Pos: ctoken.Pos(start),
			End: ctoken.Pos(l.off),
		},
	})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) run() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			l.off++
		case c == '#':
			l.scanDirective()
		case c == '/' && l.peekAt(1) == '/':
			l.scanLineComment()
		case c == '/' && l.peekAt(1) == '*':
			l.scanBlockComment()
		case c == 'L' && (l.peekAt(1) == '"' || l.peekAt(1) == '\''):
			// Wide literal prefix; treat as part of the literal. This must
			// precede the identifier case, which would otherwise swallow
			// the L.
			l.off++
			if l.peek() == '"' {
				l.scanStringLit()
			} else {
				l.scanCharLit()
			}
		case isIdentStart(c):
			l.scanIdent()
		case c >= '0' && c <= '9':
			l.scanNumber()
		case c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9':
			l.scanNumber()
		case c == '\'':
			l.scanCharLit()
		case c == '"':
			l.scanStringLit()
		default:
			l.scanPunct()
		}
	}
	l.tokens = append(l.tokens, ctoken.Token{
		Kind:   ctoken.KindEOF,
		Extent: ctoken.Extent{Pos: ctoken.Pos(len(l.src)), End: ctoken.Pos(len(l.src))},
	})
}

func (l *Lexer) scanDirective() {
	start := l.off
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		// Line continuations extend the directive.
		if l.src[l.off] == '\\' && l.off+1 < len(l.src) && l.src[l.off+1] == '\n' {
			l.off += 2
			continue
		}
		l.off++
	}
	l.emit(ctoken.KindDirective, start)
}

func (l *Lexer) scanLineComment() {
	start := l.off
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		l.off++
	}
	l.emit(ctoken.KindComment, start)
}

func (l *Lexer) scanBlockComment() {
	start := l.off
	l.off += 2
	for l.off < len(l.src) {
		if l.src[l.off] == '*' && l.peekAt(1) == '/' {
			l.off += 2
			l.emit(ctoken.KindComment, start)
			return
		}
		l.off++
	}
	l.errorf(start, "unterminated block comment")
	l.emit(ctoken.KindComment, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *Lexer) scanIdent() {
	start := l.off
	for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
		l.off++
	}
	text := l.src[start:l.off]
	// The wide-literal prefix case ("L") is handled in run before this.
	if ctoken.IsKeywordText(text) {
		l.emit(ctoken.KindKeyword, start)
		return
	}
	l.emit(ctoken.KindIdent, start)
}

func (l *Lexer) scanNumber() {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.off += 2
		for isHexDigit(l.peek()) {
			l.off++
		}
	} else {
		for isDigit(l.peek()) {
			l.off++
		}
		if l.peek() == '.' {
			isFloat = true
			l.off++
			for isDigit(l.peek()) {
				l.off++
			}
		}
		if c := l.peek(); c == 'e' || c == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				isFloat = true
				l.off++
				if c := l.peek(); c == '+' || c == '-' {
					l.off++
				}
				for isDigit(l.peek()) {
					l.off++
				}
			}
		}
	}
	// Suffixes: u, l, ll, f combinations.
	for {
		c := l.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			l.off++
			continue
		}
		if (c == 'f' || c == 'F') && isFloat {
			l.off++
			continue
		}
		break
	}
	if isFloat {
		l.emit(ctoken.KindFloatLit, start)
		return
	}
	l.emit(ctoken.KindIntLit, start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanCharLit() {
	start := l.off
	l.off++ // opening quote
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\\' {
			l.off += 2
			if l.off > len(l.src) {
				l.off = len(l.src)
			}
			continue
		}
		if c == '\'' {
			l.off++
			l.emit(ctoken.KindCharLit, start)
			return
		}
		if c == '\n' {
			break
		}
		l.off++
	}
	l.errorf(start, "unterminated character literal")
	l.emit(ctoken.KindCharLit, start)
}

func (l *Lexer) scanStringLit() {
	start := l.off
	l.off++ // opening quote
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\\' {
			l.off += 2
			if l.off > len(l.src) {
				l.off = len(l.src)
			}
			continue
		}
		if c == '"' {
			l.off++
			l.emit(ctoken.KindStringLit, start)
			return
		}
		if c == '\n' {
			break
		}
		l.off++
	}
	l.errorf(start, "unterminated string literal")
	l.emit(ctoken.KindStringLit, start)
}

// Multi-byte punctuators, longest first within each leading byte. The
// scanner tries three, then two, then one byte.
var _punct3 = map[string]struct{}{
	"<<=": {}, ">>=": {}, "...": {},
}

var _punct2 = map[string]struct{}{
	"->": {}, "++": {}, "--": {}, "<<": {}, ">>": {}, "<=": {}, ">=": {},
	"==": {}, "!=": {}, "&&": {}, "||": {}, "+=": {}, "-=": {}, "*=": {},
	"/=": {}, "%=": {}, "&=": {}, "^=": {}, "|=": {},
}

var _punct1 = map[byte]struct{}{
	'[': {}, ']': {}, '(': {}, ')': {}, '{': {}, '}': {}, '.': {}, '&': {},
	'*': {}, '+': {}, '-': {}, '~': {}, '!': {}, '/': {}, '%': {}, '<': {},
	'>': {}, '^': {}, '|': {}, '?': {}, ':': {}, ';': {}, '=': {}, ',': {},
}

func (l *Lexer) scanPunct() {
	start := l.off
	if l.off+3 <= len(l.src) {
		if _, ok := _punct3[l.src[l.off:l.off+3]]; ok {
			l.off += 3
			l.emit(ctoken.KindPunct, start)
			return
		}
	}
	if l.off+2 <= len(l.src) {
		if _, ok := _punct2[l.src[l.off:l.off+2]]; ok {
			l.off += 2
			l.emit(ctoken.KindPunct, start)
			return
		}
	}
	if _, ok := _punct1[l.src[l.off]]; ok {
		l.off++
		l.emit(ctoken.KindPunct, start)
		return
	}
	l.errorf(l.off, "unexpected byte %q", l.src[l.off])
	l.off++
}
