package fault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosBackend is a deterministic upstream: it echoes a fixed payload
// and counts arrivals.
func chaosBackend(t *testing.T) (*httptest.Server, *int, *sync.Mutex) {
	t.Helper()
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		if isProbe(r) {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"status":"ready"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"result":"the full, untruncated payload with enough bytes to halve"}`)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits, &mu
}

func startProxy(t *testing.T, target string, rules ...ChaosRule) *ChaosProxy {
	t.Helper()
	p := NewChaosProxy(target, rules...)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("starting chaos proxy: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func get(t *testing.T, url string) (status int, body string, err error) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, string(b), err
	}
	return resp.StatusCode, string(b), nil
}

// TestChaosPassthrough: with no matching rule the proxy is transparent.
func TestChaosPassthrough(t *testing.T) {
	ts, _, _ := chaosBackend(t)
	p := startProxy(t, ts.URL)
	status, body, err := get(t, p.URL()+"/v1/fix")
	if err != nil || status != http.StatusOK || !strings.Contains(body, "untruncated") {
		t.Fatalf("passthrough broken: status=%d body=%q err=%v", status, body, err)
	}
	if p.Injected() != 0 {
		t.Errorf("no fault should have fired, got %d", p.Injected())
	}
}

// TestChaosError: requests in the rule window answer 500 without
// reaching the backend; outside it they pass through.
func TestChaosError(t *testing.T) {
	ts, hits, mu := chaosBackend(t)
	p := startProxy(t, ts.URL, ChaosRule{From: 2, To: 3, Action: ChaosError})
	wantStatuses := []int{200, 500, 500, 200}
	for i, want := range wantStatuses {
		status, _, err := get(t, p.URL()+"/v1/fix")
		if err != nil || status != want {
			t.Fatalf("request %d: want %d, got %d (%v)", i+1, want, status, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if *hits != 2 {
		t.Errorf("backend should see only the 2 passthrough requests, saw %d", *hits)
	}
	if p.Injected() != 2 {
		t.Errorf("want 2 injected faults, got %d", p.Injected())
	}
}

// TestChaosLatency: a matched request is delayed by the rule's latency.
func TestChaosLatency(t *testing.T) {
	ts, _, _ := chaosBackend(t)
	p := startProxy(t, ts.URL, ChaosRule{From: 1, To: 1, Action: ChaosLatency, Latency: 200 * time.Millisecond})
	start := time.Now()
	if status, _, err := get(t, p.URL()+"/v1/fix"); err != nil || status != 200 {
		t.Fatalf("latency-injected request should still succeed: %d %v", status, err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("latency not injected: took %s", elapsed)
	}
}

// TestChaosDropAndTruncate: both faults must surface as transport
// errors, never as plausible short responses.
func TestChaosDropAndTruncate(t *testing.T) {
	ts, _, _ := chaosBackend(t)
	p := startProxy(t, ts.URL,
		ChaosRule{From: 1, To: 1, Action: ChaosDrop},
		ChaosRule{From: 2, To: 2, Action: ChaosTruncate})

	if _, _, err := get(t, p.URL()+"/v1/fix"); err == nil {
		t.Fatal("dropped connection must error, got a response")
	}
	_, body, err := get(t, p.URL()+"/v1/fix")
	if err == nil {
		t.Fatalf("truncated response must error, got complete body %q", body)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") &&
		!strings.Contains(err.Error(), "reset") {
		t.Logf("truncation surfaced as: %v (acceptable as long as it errors)", err)
	}
}

// TestChaosKillByRequestCount: the Nth request takes the whole backend
// down; subsequent connections are refused like a dead process.
func TestChaosKillByRequestCount(t *testing.T) {
	ts, _, _ := chaosBackend(t)
	p := startProxy(t, ts.URL, ChaosRule{From: 3, Action: ChaosKill})
	for i := 0; i < 2; i++ {
		if status, _, err := get(t, p.URL()+"/v1/fix"); err != nil || status != 200 {
			t.Fatalf("request %d before the kill should succeed: %d %v", i+1, status, err)
		}
	}
	if _, _, err := get(t, p.URL()+"/v1/fix"); err == nil {
		t.Fatal("the killing request must not get a response")
	}
	if !p.Killed() {
		t.Fatal("proxy should report itself killed")
	}
	// A fresh TCP connection must now be refused outright.
	if conn, err := net.DialTimeout("tcp", p.Addr(), time.Second); err == nil {
		conn.Close()
		t.Fatal("a killed backend must refuse connections")
	}
}

// TestChaosProbesSpared: health probes pass through untouched unless a
// rule opts in, so a chaos script on the serving path cannot blind the
// router's prober by accident.
func TestChaosProbesSpared(t *testing.T) {
	ts, _, _ := chaosBackend(t)
	p := startProxy(t, ts.URL, ChaosRule{From: 1, Action: ChaosError})
	if status, _, err := get(t, p.URL()+"/readyz"); err != nil || status != 200 {
		t.Fatalf("probe should be spared: %d %v", status, err)
	}
	if status, _, _ := get(t, p.URL()+"/v1/fix"); status != 500 {
		t.Fatalf("serving request should be faulted, got %d", status)
	}

	p2 := startProxy(t, ts.URL, ChaosRule{From: 1, Action: ChaosError, IncludeProbes: true})
	if status, _, err := get(t, p2.URL()+"/readyz"); err == nil && status == 200 {
		t.Fatal("IncludeProbes rule should fault the probe")
	}
}
