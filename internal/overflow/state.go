package overflow

import (
	"repro/internal/cast"
	"repro/internal/ctype"
)

// region classifies the storage of the object a pointer refers to; it
// decides the stack/heap CWE split (121 vs 122).
type region uint8

// Storage regions.
const (
	regUnknown region = iota
	regStack          // automatic or static storage
	regHeap           // heap allocation
)

// varState is the abstract value of one variable. Integer variables use
// only val; pointer and array variables use size/off/strl/reg, all in
// bytes relative to the start of the referenced object:
//
//	size — allocation size of the object
//	off  — the pointer's offset into the object
//	strl — index of the first NUL byte (string length from object start)
type varState struct {
	size Interval
	off  Interval
	strl Interval
	val  Interval
	reg  region
}

// topVar is the unknown variable state (the implicit value of variables
// absent from the state map).
func topVar() varState {
	return varState{
		size: Top(),
		off:  Top(),
		strl: Range(0, PosInf), // a first-NUL index is never negative
		val:  Top(),
		reg:  regUnknown,
	}
}

func (v varState) isTop() bool { return v == topVar() }

func (v varState) join(o varState) varState {
	reg := v.reg
	if o.reg != v.reg {
		reg = regUnknown
	}
	return varState{
		size: v.size.Join(o.size),
		off:  v.off.Join(o.off),
		strl: v.strl.Join(o.strl),
		val:  v.val.Join(o.val),
		reg:  reg,
	}
}

func (v varState) widen(next varState) varState {
	reg := v.reg
	if next.reg != v.reg {
		reg = regUnknown
	}
	return varState{
		size: v.size.Widen(next.size),
		off:  v.off.Widen(next.off),
		strl: v.strl.Widen(next.strl).ClampMin(0),
		val:  v.val.Widen(next.val),
		reg:  reg,
	}
}

// state is the abstract memory at one program point: reachability plus a
// map from Symbol.ID to varState. Absent keys are topVar(); maps are
// normalized so that equality is map equality.
type state struct {
	reach bool
	vars  map[int]varState
}

func unreached() state { return state{} }

func (s state) get(id int) varState {
	if vs, ok := s.vars[id]; ok {
		return vs
	}
	return topVar()
}

// set returns a copy of s with the variable updated (top values are
// removed to keep the map normalized).
func (s state) set(id int, vs varState) state {
	out := s.clone()
	if vs.isTop() {
		delete(out.vars, id)
	} else {
		out.vars[id] = vs
	}
	return out
}

func (s state) clone() state {
	out := state{reach: s.reach, vars: make(map[int]varState, len(s.vars))}
	for k, v := range s.vars {
		out.vars[k] = v
	}
	return out
}

func (s state) equal(o state) bool {
	if s.reach != o.reach {
		return false
	}
	if len(s.vars) != len(o.vars) {
		return false
	}
	for k, v := range s.vars {
		ov, ok := o.vars[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

func (s state) join(o state) state {
	if !s.reach {
		return o
	}
	if !o.reach {
		return s
	}
	out := state{reach: true, vars: make(map[int]varState)}
	// Absent keys are top; joining anything with top is top, so only keys
	// present in both survive.
	for k, v := range s.vars {
		if ov, ok := o.vars[k]; ok {
			j := v.join(ov)
			if !j.isTop() {
				out.vars[k] = j
			}
		}
	}
	return out
}

func (s state) widenFrom(next state) state {
	if !s.reach {
		return next
	}
	if !next.reach {
		return s
	}
	out := state{reach: true, vars: make(map[int]varState)}
	for k, v := range s.vars {
		nv, ok := next.vars[k]
		if !ok {
			continue // widened to top
		}
		w := v.widen(nv)
		if !w.isTop() {
			out.vars[k] = w
		}
	}
	return out
}

// isIntVar reports whether the symbol holds an arithmetic value the
// analysis tracks through val.
func isIntVar(sym *cast.Symbol) bool {
	return sym != nil && ctype.IsInteger(sym.Type)
}

// isPtrVar reports whether the symbol denotes a buffer (array) or may
// point into one.
func isPtrVar(sym *cast.Symbol) bool {
	return sym != nil && (ctype.IsPointer(sym.Type) || ctype.IsArray(sym.Type))
}
