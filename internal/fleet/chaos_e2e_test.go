package fleet

// End-to-end chaos suite: three real cfixd backends behind the router,
// one of them reached through a chaos proxy that injects latency
// spikes, a window of 500s, and finally kills the backend mid-run. A
// 500-request SAMATE workload driven through the router must complete
// with zero client-visible failures, every fix output byte-identical
// to a direct single-cfixd run, and the retry/ejection machinery
// observable in /metrics.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/samate"
	"repro/internal/server"

	"repro/pkg/cfix"
)

// startCfixd runs a real in-process cfixd backend with its own result
// cache and returns its base URL.
func startCfixd(t *testing.T) string {
	t.Helper()
	rc, err := cfix.NewResultCache(32<<20, "")
	if err != nil {
		t.Fatalf("NewResultCache: %v", err)
	}
	srv := server.New(server.Config{Cache: rc, MaxInFlight: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// fixOnce posts one fix request and returns the status and decoded
// response with the Cached flag normalized away (whether a backend
// answered from its cache is not part of the fix output).
func fixOnce(t *testing.T, baseURL string, p samate.Program) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(cfix.FixRequest{Filename: p.ID + ".c", Source: p.Source})
	resp, err := http.Post(baseURL+"/v1/fix", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, []byte(err.Error())
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, raw
	}
	var fr cfix.FixResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatalf("decoding fix response: %v", err)
	}
	fr.Cached = false
	norm, _ := json.Marshal(fr)
	return resp.StatusCode, norm
}

func TestChaosFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos E2E suite is not a -short test")
	}

	// The SAMATE workload: every generated program, cycled to 500
	// requests so the fleet sees repeats (cache hits, singleflight).
	var corpus []samate.Program
	for _, progs := range samate.GenerateAll() {
		corpus = append(corpus, progs...)
	}
	if len(corpus) == 0 {
		t.Fatal("empty SAMATE corpus")
	}
	const totalRequests = 500

	// Ground truth: run every unique program through a direct,
	// chaos-free single cfixd.
	direct := startCfixd(t)
	want := make(map[string][]byte, len(corpus))
	for _, p := range corpus {
		status, norm := fixOnce(t, direct, p)
		if status != http.StatusOK {
			t.Fatalf("direct run of %s failed: %d %s", p.ID, status, norm)
		}
		want[p.ID] = norm
	}

	// The fleet: two healthy backends plus one reached through the
	// chaos proxy. The proxy injects a latency spike window, then a
	// window of 500s, then kills the backend for good mid-run.
	a, b := startCfixd(t), startCfixd(t)
	chaotic := startCfixd(t)
	// The 500s window (3 consecutive) deliberately stays under the
	// breaker threshold (5): an open circuit would stop traffic to the
	// proxy for a cooldown, and on a fast machine the whole workload
	// can finish inside it — the kill at serving request 20 must be
	// reached regardless of run speed. The breaker's own open/recover
	// path is unit-tested in router_test.go.
	proxy := fault.NewChaosProxy(chaotic,
		fault.ChaosRule{From: 3, To: 8, Action: fault.ChaosLatency, Latency: 150 * time.Millisecond},
		fault.ChaosRule{From: 10, To: 12, Action: fault.ChaosError},
		fault.ChaosRule{From: 20, To: 20, Action: fault.ChaosKill},
	)
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("starting chaos proxy: %v", err)
	}
	t.Cleanup(proxy.Close)

	rt, err := NewRouter(Config{
		Backends:         []string{a, b, proxy.URL()},
		MaxInFlight:      64,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		HedgeAfter:       100 * time.Millisecond,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     2 * time.Second, // -race + full pipeline saturates CPU; don't eject on jitter
		ProbeFailLimit:   2,
		ProbeMaxBackoff:  200 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
		UpstreamTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { router.Close(); rt.Close() })

	// Drive the 500-request workload with a small worker pool so the
	// kill lands while requests are in flight.
	type result struct {
		id     string
		status int
		norm   []byte
	}
	results := make([]result, totalRequests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < totalRequests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := corpus[i%len(corpus)]
			status, norm := fixOnce(t, router.URL, p)
			results[i] = result{id: p.ID, status: status, norm: norm}
		}(i)
	}
	wg.Wait()

	// Acceptance: zero failed requests, every output byte-identical to
	// the direct run.
	failures, mismatches := 0, 0
	for i, r := range results {
		if r.status != http.StatusOK {
			failures++
			if failures <= 3 {
				t.Errorf("request %d (%s): status %d: %s", i, r.id, r.status, r.norm)
			}
			continue
		}
		if !bytes.Equal(r.norm, want[r.id]) {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("request %d (%s): output differs from direct run:\n fleet: %s\ndirect: %s",
					i, r.id, r.norm, want[r.id])
			}
		}
	}
	if failures > 0 || mismatches > 0 {
		t.Fatalf("chaos run: %d failed requests, %d output mismatches (want 0, 0)", failures, mismatches)
	}
	if !proxy.Killed() {
		t.Fatal("the kill rule never fired: the workload did not exercise the backend loss")
	}

	// The machinery must be observable through the router's /metrics
	// endpoint, not just internal state.
	resp, err := http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m RouterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if len(m.Backends) != 3 {
		t.Fatalf("want 3 backends in /metrics, got %d", len(m.Backends))
	}
	if m.RetriedTotal == 0 {
		t.Error("injected 500s and a kill: want retried_total > 0")
	}
	var ejections int64
	for _, bs := range m.Backends {
		ejections += bs.EjectedTotal
	}
	if ejections != 1 {
		t.Errorf("exactly one backend died: want 1 ejection, got %d (%+v)", ejections, m.Backends)
	}
	dead := m.Backends[proxy.URL()]
	if dead.Healthy {
		t.Error("the killed backend must be marked unhealthy in /metrics")
	}
	if m.RoutedTotal == 0 || m.UpstreamFailures == 0 {
		t.Errorf("want routed_total > 0 and upstream_failures > 0, got %+v", m)
	}
	// Breaker state is part of the payload for every backend.
	for url, bs := range m.Backends {
		switch bs.BreakerState {
		case "closed", "open", "half_open":
		default:
			t.Errorf("backend %s: unobservable breaker state %q", url, bs.BreakerState)
		}
	}

	t.Logf("chaos run: %d requests, routed=%d retried=%d hedged=%d broken=%d collapsed=%d upstream_failures=%d ejections=%d",
		totalRequests, m.RoutedTotal, m.RetriedTotal, m.HedgedTotal, m.BrokenTotal, m.CollapsedTotal, m.UpstreamFailures, ejections)
}
