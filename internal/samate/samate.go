// Package samate generates a synthetic stand-in for the buffer-overflow
// slice of NIST SAMATE's Juliet Test Suite 1.2, the benchmark of Section
// IV-A (Table III).
//
// Substitution note (see DESIGN.md): the real Juliet suite is itself
// mechanically generated from flaw templates crossed with control-flow
// variants. This generator reproduces that structure for the six CWEs the
// paper evaluates — every program has a good function (bounded operation,
// prints its result) and a bad function (the same operation overflowing),
// wrapped in one of the suite-style control-flow variants. Program counts
// per CWE match Table III exactly.
package samate

import (
	"fmt"
	"strings"
)

// TableIIICounts reproduces the "Total C Programs" column of Table III.
var TableIIICounts = map[int]int{
	121: 1877,
	122: 890,
	124: 680,
	126: 416,
	127: 624,
	242: 18,
}

// SLRApplicableCounts reproduces the SLR column of Table III: programs
// whose flaw uses one of the six unsafe functions.
var SLRApplicableCounts = map[int]int{
	121: 1096,
	122: 644,
	242: 18,
}

// CWEs lists the six CWEs in Table III order.
var CWEs = []int{121, 122, 124, 126, 127, 242}

// CWENames gives the Table III descriptions.
var CWENames = map[int]string{
	121: "Stack Based Overflow",
	122: "Heap Based Overflow",
	124: "Buffer Underwrite",
	126: "Buffer Overread",
	127: "Buffer Underread",
	242: "Use of Inherently Dangerous Function",
}

// Program is one generated benchmark program.
type Program struct {
	ID     string
	CWE    int
	Source string
	// SLRTargeted reports that the flaw goes through an unsafe library
	// function SLR replaces.
	SLRTargeted bool
	// STRTargeted reports that the program contains STR-eligible local
	// char buffers.
	STRTargeted bool
	// Sink names the flaw mechanism (for reporting).
	Sink string
	// Flow names the control-flow variant.
	Flow string
}

// LOC returns the program's line count.
func (p *Program) LOC() int { return strings.Count(p.Source, "\n") + 1 }

// flowVariant wraps the flaw statements in a Juliet-style control-flow
// shape.
type flowVariant struct {
	name string
	wrap func(body, indent string) string
}

var _flows = []flowVariant{
	{"01_direct", func(body, ind string) string { return body }},
	{"02_if_1", func(body, ind string) string {
		return ind + "if (1) {\n" + body + "\n" + ind + "}"
	}},
	{"03_if_global", func(body, ind string) string {
		return ind + "if (GLOBAL_CONST_TRUE) {\n" + body + "\n" + ind + "}"
	}},
	{"04_if_static_fn", func(body, ind string) string {
		return ind + "if (static_returns_true()) {\n" + body + "\n" + ind + "}"
	}},
	{"05_while_1_break", func(body, ind string) string {
		return ind + "while (1) {\n" + body + "\n" + ind + "    break;\n" + ind + "}"
	}},
	{"06_for_once", func(body, ind string) string {
		return ind + "{\n" + ind + "    int flow_i;\n" + ind + "    for (flow_i = 0; flow_i < 1; flow_i++) {\n" +
			body + "\n" + ind + "    }\n" + ind + "}"
	}},
	{"07_do_while_0", func(body, ind string) string {
		return ind + "do {\n" + body + "\n" + ind + "} while (0);"
	}},
	{"08_switch_7", func(body, ind string) string {
		return ind + "switch (7) {\n" + ind + "case 7:\n" + body + "\n" + ind + "    break;\n" +
			ind + "default:\n" + ind + "    break;\n" + ind + "}"
	}},
	{"09_goto", func(body, ind string) string {
		return ind + "goto flow_sink;\n" + ind + "flow_sink:\n" + body
	}},
	{"10_if_else", func(body, ind string) string {
		return ind + "if (GLOBAL_CONST_TRUE) {\n" + body + "\n" + ind + "} else {\n" +
			ind + "    printf(\"dead\\n\");\n" + ind + "}"
	}},
	{"11_nested_if", func(body, ind string) string {
		return ind + "if (1) {\n" + ind + "    if (1) {\n" + body + "\n" + ind + "    }\n" + ind + "}"
	}},
	{"12_while_flag", func(body, ind string) string {
		return ind + "{\n" + ind + "    int flow_flag = 1;\n" + ind + "    while (flow_flag) {\n" +
			body + "\n" + ind + "        flow_flag = 0;\n" + ind + "    }\n" + ind + "}"
	}},
}

// sink produces the declarations and flaw/fixed statement bodies for one
// mechanism. size is the destination capacity; over is the out-of-bounds
// reach used by the bad function.
type sink struct {
	name string
	slr  bool
	str  bool
	// gen emits (decls, goodBody, badBody, print). Bodies are the lines
	// wrapped by the flow variant; decls and print stay outside it.
	gen func(size, over int) (decls, good, bad, print string)
	// support optionally emits file-scope helper code (Juliet's
	// cross-function data-flow variants). The placeholder __HELPER__ in
	// support and in gen's outputs is replaced with a program-unique
	// function name.
	support func(size, over int) string
}

// preamble is shared by all programs.
const _preamble = `/* Synthetic Juliet-style benchmark (see internal/samate). */
int GLOBAL_CONST_TRUE = 1;
int GLOBAL_CONST_FALSE = 0;
static int static_returns_true(void) { return 1; }
`

// buildProgram assembles a complete translation unit.
func buildProgram(id string, cwe int, s sink, fl flowVariant, size, over int) Program {
	decls, good, bad, print := s.gen(size, over)
	helper := id + "_prepare"
	var supportCode string
	if s.support != nil {
		supportCode = strings.ReplaceAll(s.support(size, over), "__HELPER__", helper)
		decls = strings.ReplaceAll(decls, "__HELPER__", helper)
		good = strings.ReplaceAll(good, "__HELPER__", helper)
		bad = strings.ReplaceAll(bad, "__HELPER__", helper)
	}
	indent := "    "
	goodBody := fl.wrap(good, indent)
	badBody := fl.wrap(bad, indent)

	var sb strings.Builder
	sb.WriteString(_preamble)
	if supportCode != "" {
		sb.WriteString("\n" + supportCode)
	}
	fmt.Fprintf(&sb, "\n/* %s: CWE-%d %s, sink=%s, flow=%s */\n", id, cwe, CWENames[cwe], s.name, fl.name)
	fmt.Fprintf(&sb, "void %s_good(void) {\n%s\n%s\n%s\n}\n", id, decls, goodBody, print)
	fmt.Fprintf(&sb, "\nvoid %s_bad(void) {\n%s\n%s\n%s\n}\n", id, decls, badBody, print)
	fmt.Fprintf(&sb, "\nint main(void) {\n    %s_good();\n    %s_bad();\n    return 0;\n}\n", id, id)

	return Program{
		ID:          id,
		CWE:         cwe,
		Source:      sb.String(),
		SLRTargeted: s.slr,
		STRTargeted: s.str,
		Sink:        s.name,
		Flow:        fl.name,
	}
}

// --- CWE-121: stack-based overflow -----------------------------------------

var _sinks121 = []sink{
	{
		name: "strcpy", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char src[%d];
    char *dst;
    memset(src, 'A', %d);
    src[%d] = '\0';
    dst = buf;`, size, size+over+2, size+over, size+over)
			good := fmt.Sprintf("    strncpy(dst, src, %d);\n    buf[%d] = '\\0';", size-1, size-1)
			bad := "    strcpy(dst, src);"
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		name: "strcat", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char src[%d];
    memset(src, 'B', %d);
    src[%d] = '\0';
    buf[0] = 'x';
    buf[1] = '\0';`, size, size+over+2, size+over, size+over)
			good := fmt.Sprintf("    strncat(buf, src, %d);", size-3)
			bad := "    strcat(buf, src);"
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		name: "sprintf", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char src[%d];
    memset(src, 'C', %d);
    src[%d] = '\0';`, size, size+over+2, size+over, size+over)
			good := fmt.Sprintf("    snprintf(buf, %d, \"%%s\", src);", size)
			bad := "    sprintf(buf, \"%s\", src);"
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		name: "memcpy", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char src[%d];
    memset(src, 'D', %d);
    src[%d] = '\0';`, size, size+over+2, size+over+1, size+over+1)
			good := fmt.Sprintf("    memcpy(buf, src, %d);\n    buf[%d] = '\\0';", size-1, size-1)
			bad := fmt.Sprintf("    memcpy(buf, src, %d);\n    buf[%d] = '\\0';", size+over, size-1)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		// Juliet cross-function flow: the attack data is prepared by a
		// static helper, so the source buffer's contents are only known
		// interprocedurally; the destination stays local and SLR's
		// Algorithm 1 still sizes it.
		name: "strcpy_fn_source", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char src[%d];
    __HELPER__(src, %d);`, size, size+over+2, size+over)
			good := fmt.Sprintf("    strncpy(buf, src, %d);\n    buf[%d] = '\\0';", size-1, size-1)
			bad := "    strcpy(buf, src);"
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
		support: func(size, over int) string {
			return `static void __HELPER__(char *out, int n) {
    int i;
    for (i = 0; i < n; i++) { out[i] = 'R'; }
    out[n] = '\0';
}
`
		},
	},
	{
		name: "index_write", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    int i;
    for (i = 0; i < %d; i++) { buf[i] = 'E'; }
    buf[%d] = '\0';`, size, size-1, size-1)
			good := fmt.Sprintf("    buf[%d] = 'Z';", size-2)
			bad := fmt.Sprintf("    buf[%d] = 'Z';", size+over-1)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		// Juliet's signature idiom: a char* aliasing a stack buffer, with
		// the flaw expressed through the pointer. Exercises STR pattern 5
		// (buffer-to-buffer assignment shares the stralloc) end to end.
		name: "alias_index_write", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char dataBuffer[%d];
    char *data;
    memset(dataBuffer, 'P', %d);
    dataBuffer[%d] = '\0';
    data = dataBuffer;`, size, size-1, size-1)
			good := "    data[1] = 'Z';"
			bad := fmt.Sprintf("    data[%d] = 'Z';", size+over-1)
			print := `    printf("%s\n", dataBuffer);`
			return decls, good, bad, print
		},
	},
	{
		name: "loop_fill", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    int i;`, size)
			good := fmt.Sprintf(`    for (i = 0; i < %d; i++) { buf[i] = 'F'; }
    buf[%d] = '\0';`, size-1, size-1)
			bad := fmt.Sprintf(`    for (i = 0; i < %d; i++) { buf[i] = 'F'; }
    buf[%d] = '\0';`, size+over, size-1)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-122: heap-based overflow -------------------------------------------

var _sinks122 = []sink{
	{
		name: "strcpy_heap", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char *buf;
    char src[%d];
    buf = malloc(%d);
    memset(src, 'G', %d);
    src[%d] = '\0';`, size+over+2, size, size+over, size+over)
			good := fmt.Sprintf("    strncpy(buf, src, %d);\n    buf[%d] = '\\0';", size-1, size-1)
			bad := "    strcpy(buf, src);"
			print := "    printf(\"%s\\n\", buf);\n    free(buf);"
			return decls, good, bad, print
		},
	},
	{
		name: "memcpy_heap", slr: true, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char *buf;
    char src[%d];
    buf = malloc(%d);
    memset(src, 'H', %d);
    src[%d] = '\0';`, size+over+2, size, size+over+1, size+over+1)
			good := fmt.Sprintf("    memcpy(buf, src, %d);\n    buf[%d] = '\\0';", size-1, size-1)
			bad := fmt.Sprintf("    memcpy(buf, src, %d);\n    buf[%d] = '\\0';", size+over, size-1)
			print := "    printf(\"%s\\n\", buf);\n    free(buf);"
			return decls, good, bad, print
		},
	},
	{
		name: "heap_index_write", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			// The STR-eligible variant keeps a stack mirror so STR has a
			// local array target; the heap write itself goes through a
			// local char pointer assigned from malloc (pattern 3).
			decls := fmt.Sprintf(`    char *buf;
    int i;
    buf = malloc(%d);
    for (i = 0; i < %d; i++) { buf[i] = 'I'; }
    buf[%d] = '\0';`, size, size-1, size-1)
			good := fmt.Sprintf("    buf[%d] = 'Z';", size-2)
			bad := fmt.Sprintf("    buf[%d] = 'Z';", size+over-1)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-124: buffer underwrite ----------------------------------------------

var _sinks124 = []sink{
	{
		name: "ptr_decrement_write", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    memset(buf, 'J', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    buf[0] = 'Z';"
			bad := fmt.Sprintf(`    {
        char *p;
        p = buf;
        p -= %d;
        *p = 'Z';
    }`, over)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
	{
		name: "negative_index_write", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    int idx;
    memset(buf, 'K', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    idx = 1;\n    buf[idx] = 'Z';"
			bad := fmt.Sprintf("    idx = -%d;\n    buf[idx] = 'Z';", over)
			print := `    printf("%s\n", buf);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-126: buffer overread -------------------------------------------------

var _sinks126 = []sink{
	{
		name: "index_overread", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char out[4];
    char c;
    memset(buf, 'L', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    c = buf[2];"
			bad := fmt.Sprintf("    c = buf[%d];", size+over-1)
			print := "    out[0] = c;\n    out[1] = '\\0';\n    printf(\"%d\\n\", out[0]);"
			return decls, good, bad, print
		},
	},
	{
		name: "deref_overread", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char c;
    memset(buf, 'M', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    c = *(buf + 1);"
			bad := fmt.Sprintf("    c = *(buf + %d);", size+over-1)
			print := `    printf("%d\n", c);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-127: buffer underread --------------------------------------------------

var _sinks127 = []sink{
	{
		name: "ptr_decrement_read", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    char c;
    memset(buf, 'N', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    c = *(buf + 1);"
			bad := fmt.Sprintf("    c = *(buf - %d);", over)
			print := `    printf("%d\n", c);`
			return decls, good, bad, print
		},
	},
	{
		name: "negative_index_read", slr: false, str: true,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf(`    char buf[%d];
    int idx;
    char c;
    memset(buf, 'O', %d);
    buf[%d] = '\0';`, size, size-1, size-1)
			good := "    idx = 2;\n    c = buf[idx];"
			bad := fmt.Sprintf("    idx = -%d;\n    c = buf[idx];", over)
			print := `    printf("%d\n", c);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-242: gets -----------------------------------------------------------

var _sinks242 = []sink{
	{
		name: "gets", slr: true, str: false,
		gen: func(size, over int) (string, string, string, string) {
			decls := fmt.Sprintf("    char dest[%d];", size)
			good := fmt.Sprintf("    fgets(dest, %d, stdin);", size)
			bad := "    gets(dest);"
			print := `    printf("%s\n", dest);`
			return decls, good, bad, print
		},
	},
}

var _sinksByCWE = map[int][]sink{
	121: _sinks121,
	122: _sinks122,
	124: _sinks124,
	126: _sinks126,
	127: _sinks127,
	242: _sinks242,
}

// sizes and overflow amounts crossed with sinks and flows.
var _sizes = []int{8, 10, 16, 24, 32, 48, 64}
var _overs = []int{2, 6, 14, 40}

// Generate returns exactly n programs for the CWE, enumerated
// deterministically over (sink, flow, size, over) in that nesting order.
// For CWEs where Table III reports an SLR-applicable subset, the SLR
// sinks are enumerated first so the subset matches the paper's counts.
func Generate(cwe, n int) []Program {
	sinks := _sinksByCWE[cwe]
	if len(sinks) == 0 {
		return nil
	}
	// Order: SLR sinks first.
	ordered := make([]sink, 0, len(sinks))
	for _, s := range sinks {
		if s.slr {
			ordered = append(ordered, s)
		}
	}
	for _, s := range sinks {
		if !s.slr {
			ordered = append(ordered, s)
		}
	}
	slrTarget := SLRApplicableCounts[cwe]

	out := make([]Program, 0, n)
	seq := 0
	emit := func(s sink, fl flowVariant, size, over int) bool {
		seq++
		id := fmt.Sprintf("CWE%d_v%04d", cwe, seq)
		out = append(out, buildProgram(id, cwe, s, fl, size, over))
		return len(out) >= n
	}
	// First pass: SLR sinks up to the Table III SLR count (when defined).
	if slrTarget > 0 {
		done := false
		for !done {
			progress := false
			for _, s := range ordered {
				if !s.slr {
					continue
				}
				for _, fl := range _flows {
					for _, size := range _sizes {
						for _, over := range _overs {
							if len(out) >= slrTarget || len(out) >= n {
								done = true
								break
							}
							progress = true
							if emit(s, fl, size, over) {
								done = true
							}
						}
						if done {
							break
						}
					}
					if done {
						break
					}
				}
				if done {
					break
				}
			}
			if !progress {
				break
			}
			if len(out) >= slrTarget {
				break
			}
		}
	}
	// Remaining programs from the full (or non-SLR) sink set, cycling the
	// combination space as often as needed.
	for len(out) < n {
		before := len(out)
		for _, s := range ordered {
			if slrTarget > 0 && s.slr && len(out) >= slrTarget {
				// SLR quota met: use the STR-only sinks for the rest so the
				// Table III split holds.
				continue
			}
			for _, fl := range _flows {
				for _, size := range _sizes {
					for _, over := range _overs {
						if len(out) >= n {
							return out
						}
						emit(s, fl, size, over)
					}
				}
			}
		}
		if len(out) == before {
			// No eligible sinks (should not happen); bail out.
			break
		}
	}
	return out
}

// GenerateAll produces the full Table III corpus: 4,505 programs.
func GenerateAll() map[int][]Program {
	out := make(map[int][]Program, len(TableIIICounts))
	for cwe, n := range TableIIICounts {
		out[cwe] = Generate(cwe, n)
	}
	return out
}

// TotalPrograms returns the Table III total (4,505).
func TotalPrograms() int {
	total := 0
	for _, n := range TableIIICounts {
		total += n
	}
	return total
}
