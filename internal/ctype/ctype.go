// Package ctype models the C type system used by the analyses and
// transformations: basic types, pointers, arrays, functions, records
// (struct/union) and enums, with a concrete size model matching a 64-bit
// LP64 target (the environment the paper evaluated on).
package ctype

import (
	"fmt"
	"strings"
)

// Type is implemented by all C types.
type Type interface {
	// String renders the type approximately as C source.
	String() string
	// Size returns the object size in bytes, or -1 when unknown (e.g.
	// incomplete arrays, void, functions).
	Size() int
	typeNode()
}

// BasicKind enumerates the built-in scalar types.
type BasicKind int

// Basic type kinds. Enums start at one; the zero value is invalid.
const (
	Invalid BasicKind = iota
	Void
	Bool
	Char
	SChar
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	LongLong
	ULongLong
	Float
	Double
	LongDouble
)

var _basicInfo = map[BasicKind]struct {
	name string
	size int
}{
	Invalid:    {"<invalid>", -1},
	Void:       {"void", -1},
	Bool:       {"_Bool", 1},
	Char:       {"char", 1},
	SChar:      {"signed char", 1},
	UChar:      {"unsigned char", 1},
	Short:      {"short", 2},
	UShort:     {"unsigned short", 2},
	Int:        {"int", 4},
	UInt:       {"unsigned int", 4},
	Long:       {"long", 8},
	ULong:      {"unsigned long", 8},
	LongLong:   {"long long", 8},
	ULongLong:  {"unsigned long long", 8},
	Float:      {"float", 4},
	Double:     {"double", 8},
	LongDouble: {"long double", 16},
}

// Basic is a built-in scalar type.
type Basic struct {
	Kind BasicKind
}

func (b *Basic) typeNode() {}

// String renders the type name.
func (b *Basic) String() string { return _basicInfo[b.Kind].name }

// Size returns the LP64 size of the type in bytes.
func (b *Basic) Size() int { return _basicInfo[b.Kind].size }

// IsInteger reports whether the type is an integer type (including char
// and _Bool).
func (b *Basic) IsInteger() bool {
	switch b.Kind {
	case Bool, Char, SChar, UChar, Short, UShort, Int, UInt, Long, ULong, LongLong, ULongLong:
		return true
	default:
		return false
	}
}

// IsFloat reports whether the type is a floating-point type.
func (b *Basic) IsFloat() bool {
	switch b.Kind {
	case Float, Double, LongDouble:
		return true
	default:
		return false
	}
}

// Shared singleton instances for the common basics. Types are immutable so
// sharing is safe.
var (
	VoidType      = &Basic{Kind: Void}
	BoolType      = &Basic{Kind: Bool}
	CharType      = &Basic{Kind: Char}
	SCharType     = &Basic{Kind: SChar}
	UCharType     = &Basic{Kind: UChar}
	ShortType     = &Basic{Kind: Short}
	UShortType    = &Basic{Kind: UShort}
	IntType       = &Basic{Kind: Int}
	UIntType      = &Basic{Kind: UInt}
	LongType      = &Basic{Kind: Long}
	ULongType     = &Basic{Kind: ULong}
	LongLongType  = &Basic{Kind: LongLong}
	ULongLongType = &Basic{Kind: ULongLong}
	FloatType     = &Basic{Kind: Float}
	DoubleType    = &Basic{Kind: Double}
	SizeTType     = ULongType // size_t on LP64
)

// Pointer is a pointer type.
type Pointer struct {
	Elem Type
}

func (p *Pointer) typeNode() {}

// String renders the pointer type.
func (p *Pointer) String() string { return p.Elem.String() + " *" }

// Size returns the pointer size (8 on LP64).
func (p *Pointer) Size() int { return 8 }

// PointerTo returns a pointer type to elem.
func PointerTo(elem Type) *Pointer { return &Pointer{Elem: elem} }

// Array is an array type. Len < 0 means the length is unknown (incomplete
// array, e.g. a parameter declared T a[]).
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) typeNode() {}

// String renders the array type.
func (a *Array) String() string {
	if a.Len < 0 {
		return a.Elem.String() + " []"
	}
	return fmt.Sprintf("%s [%d]", a.Elem.String(), a.Len)
}

// Size returns the total array size in bytes, or -1 when incomplete.
func (a *Array) Size() int {
	if a.Len < 0 {
		return -1
	}
	es := a.Elem.Size()
	if es < 0 {
		return -1
	}
	return es * a.Len
}

// ArrayOf returns an array type of n elements of elem.
func ArrayOf(elem Type, n int) *Array { return &Array{Elem: elem, Len: n} }

// Func is a function type.
type Func struct {
	Result   Type
	Params   []Type
	Variadic bool
}

func (f *Func) typeNode() {}

// String renders the function type.
func (f *Func) String() string {
	var sb strings.Builder
	sb.WriteString(f.Result.String())
	sb.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	if f.Variadic {
		if len(f.Params) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("...")
	}
	sb.WriteString(")")
	return sb.String()
}

// Size returns -1; functions are not objects.
func (f *Func) Size() int { return -1 }

// Field is a member of a record type.
type Field struct {
	Name   string
	Type   Type
	Offset int // byte offset within the record
}

// Record is a struct or union type.
type Record struct {
	Tag     string // may be "" for anonymous records
	IsUnion bool
	Fields  []Field
	// Complete is false for forward declarations (struct S;).
	Complete bool
	size     int
}

func (r *Record) typeNode() {}

// String renders the record type.
func (r *Record) String() string {
	kw := "struct"
	if r.IsUnion {
		kw = "union"
	}
	if r.Tag != "" {
		return kw + " " + r.Tag
	}
	return kw + " <anonymous>"
}

// Size returns the record size in bytes, or -1 when incomplete.
func (r *Record) Size() int {
	if !r.Complete {
		return -1
	}
	return r.size
}

// FieldNamed returns the field with the given name and true, or a zero
// Field and false.
func (r *Record) FieldNamed(name string) (Field, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// SetFields completes the record with the given members, computing offsets
// with natural alignment (struct) or overlay (union).
func (r *Record) SetFields(fields []Field) {
	r.Fields = fields
	r.Complete = true
	if r.IsUnion {
		maxSize := 0
		for i := range r.Fields {
			r.Fields[i].Offset = 0
			if s := r.Fields[i].Type.Size(); s > maxSize {
				maxSize = s
			}
		}
		r.size = maxSize
		return
	}
	off := 0
	maxAlign := 1
	for i := range r.Fields {
		a := alignOf(r.Fields[i].Type)
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		r.Fields[i].Offset = off
		s := r.Fields[i].Type.Size()
		if s < 0 {
			s = 0
		}
		off += s
	}
	r.size = roundUp(off, maxAlign)
}

func alignOf(t Type) int {
	switch x := t.(type) {
	case *Basic:
		if s := x.Size(); s > 0 {
			return s
		}
		return 1
	case *Pointer:
		return 8
	case *Array:
		return alignOf(x.Elem)
	case *Record:
		a := 1
		for _, f := range x.Fields {
			if fa := alignOf(f.Type); fa > a {
				a = fa
			}
		}
		return a
	case *Enum:
		return 4
	default:
		return 1
	}
}

func roundUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Enum is an enumeration type.
type Enum struct {
	Tag    string
	Consts []EnumConst
}

// EnumConst is one enumerator.
type EnumConst struct {
	Name  string
	Value int64
}

func (e *Enum) typeNode() {}

// String renders the enum type.
func (e *Enum) String() string {
	if e.Tag != "" {
		return "enum " + e.Tag
	}
	return "enum <anonymous>"
}

// Size returns the enum size (int-sized).
func (e *Enum) Size() int { return 4 }

// Named is a typedef-introduced alias. Analyses usually look through it via
// Unqualify.
type Named struct {
	Name       string
	Underlying Type
}

func (n *Named) typeNode() {}

// String renders the typedef name.
func (n *Named) String() string { return n.Name }

// Size returns the underlying type's size.
func (n *Named) Size() int { return n.Underlying.Size() }

// Hole is a placeholder type used by the parser while assembling declarator
// types inside-out; it never appears in a finished AST.
type Hole struct{}

func (*Hole) typeNode() {}

// String renders the placeholder.
func (*Hole) String() string { return "<hole>" }

// Size returns -1; a hole has no size.
func (*Hole) Size() int { return -1 }

// Unqualify resolves typedef aliases to the underlying type.
func Unqualify(t Type) Type {
	for {
		n, ok := t.(*Named)
		if !ok {
			return t
		}
		t = n.Underlying
	}
}

// IsCharPointer reports whether t is char* (after resolving typedefs),
// including signed/unsigned char pointers.
func IsCharPointer(t Type) bool {
	p, ok := Unqualify(t).(*Pointer)
	if !ok {
		return false
	}
	return IsCharLike(p.Elem)
}

// IsCharArray reports whether t is an array of char.
func IsCharArray(t Type) bool {
	a, ok := Unqualify(t).(*Array)
	if !ok {
		return false
	}
	return IsCharLike(a.Elem)
}

// IsCharLike reports whether t is a character type.
func IsCharLike(t Type) bool {
	b, ok := Unqualify(t).(*Basic)
	if !ok {
		return false
	}
	return b.Kind == Char || b.Kind == SChar || b.Kind == UChar
}

// IsPointer reports whether t is a pointer type after typedef resolution.
func IsPointer(t Type) bool {
	_, ok := Unqualify(t).(*Pointer)
	return ok
}

// IsArray reports whether t is an array type after typedef resolution.
func IsArray(t Type) bool {
	_, ok := Unqualify(t).(*Array)
	return ok
}

// IsInteger reports whether t is an integer type after typedef resolution.
func IsInteger(t Type) bool {
	switch x := Unqualify(t).(type) {
	case *Basic:
		return x.IsInteger()
	case *Enum:
		return true
	default:
		return false
	}
}

// IsArithmetic reports whether t is an arithmetic (integer or floating)
// type.
func IsArithmetic(t Type) bool {
	switch x := Unqualify(t).(type) {
	case *Basic:
		return x.IsInteger() || x.IsFloat()
	case *Enum:
		return true
	default:
		return false
	}
}

// IsScalar reports whether t is arithmetic or a pointer.
func IsScalar(t Type) bool { return IsArithmetic(t) || IsPointer(t) }

// Elem returns the element type of a pointer or array, or nil.
func Elem(t Type) Type {
	switch x := Unqualify(t).(type) {
	case *Pointer:
		return x.Elem
	case *Array:
		return x.Elem
	default:
		return nil
	}
}

// Decay converts array types to pointer types (array-to-pointer decay) and
// function types to function pointers; other types pass through.
func Decay(t Type) Type {
	switch x := Unqualify(t).(type) {
	case *Array:
		return PointerTo(x.Elem)
	case *Func:
		return PointerTo(x)
	default:
		return t
	}
}

// Equal reports structural equality of two types, resolving typedefs.
// Record types compare by identity (C tag compatibility is per-unit here).
func Equal(a, b Type) bool {
	a, b = Unqualify(a), Unqualify(b)
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		return ok && x.Kind == y.Kind
	case *Pointer:
		y, ok := b.(*Pointer)
		return ok && Equal(x.Elem, y.Elem)
	case *Array:
		y, ok := b.(*Array)
		return ok && x.Len == y.Len && Equal(x.Elem, y.Elem)
	case *Func:
		y, ok := b.(*Func)
		if !ok || x.Variadic != y.Variadic || len(x.Params) != len(y.Params) || !Equal(x.Result, y.Result) {
			return false
		}
		for i := range x.Params {
			if !Equal(x.Params[i], y.Params[i]) {
				return false
			}
		}
		return true
	case *Record:
		return a == b
	case *Enum:
		return a == b
	default:
		return false
	}
}
