// Command cfixd is the long-running fix/lint service: the paper's two
// buffer-overflow-fixing transformations and the static overflow oracle
// behind an HTTP/JSON API, with content-addressed result caching so
// re-analyzing unchanged translation units costs a cache lookup instead
// of a parse and a fixpoint solve.
//
// Usage:
//
//	cfixd [flags]
//
//	-addr host:port       listen address (default 127.0.0.1:8347;
//	                      port 0 picks a free port, printed on startup)
//	-cache-size n         in-memory result cache bound in MiB (default
//	                      256; 0 disables caching)
//	-cache-dir dir        persist cache entries under dir (atomic
//	                      writes, checksum-verified reads) so restarts
//	                      start warm
//	-max-inflight n       concurrently admitted analysis requests;
//	                      beyond this the daemon answers 429 +
//	                      Retry-After (default 2 per CPU)
//	-max-request-bytes n  request body cap (default 16 MiB; 413 beyond)
//	-timeout d            default per-request deadline (default 30s)
//	-max-timeout d        upper clamp on requested deadlines (default 2m)
//	-budget n             default per-request solver budget; exhausted
//	                      budgets degrade conservatively, never silence
//	                      (default 0 = unlimited)
//	-backend name         default repair backend for requests that name
//	                      none: "glib" (default), "bsd", or "c11k";
//	                      unknown names exit 2
//	-j n                  batch endpoint worker pool (0 = one per CPU)
//	-drain-timeout d      how long a SIGTERM waits for in-flight
//	                      requests before forcing exit (default 30s)
//	-slow-threshold d     log requests slower than d with a per-stage
//	                      time breakdown (default 0 = disabled)
//	-pprof-addr host:port serve net/http/pprof on a separate, opt-in
//	                      listener (default off; keep it loopback-only)
//
// Endpoints: POST /v1/fix, POST /v1/lint, POST /v1/batch, GET /healthz,
// GET /metrics — see internal/server and DESIGN.md Section 10.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, drains
// in-flight requests up to -drain-timeout, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr            = flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks a free port)")
		cacheSize       = flag.Int64("cache-size", 256, "in-memory result cache bound in MiB (0 disables caching)")
		cacheDir        = flag.String("cache-dir", "", "persist cache entries under this directory")
		maxInFlight     = flag.Int("max-inflight", 0, "concurrently admitted analysis requests (0 = 2 per CPU); excess answers 429")
		maxRequestBytes = flag.Int64("max-request-bytes", 16<<20, "request body cap in bytes")
		timeout         = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout      = flag.Duration("max-timeout", 2*time.Minute, "upper clamp on requested deadlines")
		budget          = flag.Int("budget", 0, "default per-request solver budget (0 = unlimited); exhaustion degrades, never silences")
		backendName     = flag.String("backend", "glib", `default repair backend for requests that name none: "glib", "bsd", or "c11k"`)
		workers         = flag.Int("j", 0, "batch endpoint worker pool (0 = one worker per CPU; must be >= 0)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline for in-flight requests")
		slowThreshold   = flag.Duration("slow-threshold", 0, "log requests slower than this with a per-stage breakdown (0 = disabled)")
		pprofAddr       = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = disabled)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "cfixd: unexpected arguments; cfixd serves over HTTP, see -h")
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "cfixd: -j must be >= 0 (0 = one worker per CPU)")
		return 2
	}
	defaultBackend, err := cfix.CanonicalBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfixd: -backend: %v\n", err)
		return 2
	}

	var rc *cfix.ResultCache
	if *cacheSize > 0 || *cacheDir != "" {
		size := *cacheSize << 20
		if size <= 0 {
			size = 256 << 20
		}
		var err error
		rc, err = cfix.NewResultCache(size, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
			return 1
		}
	}

	srv := server.New(server.Config{
		Cache:           rc,
		MaxInFlight:     *maxInFlight,
		MaxRequestBytes: *maxRequestBytes,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		Budget:          *budget,
		Backend:         defaultBackend,
		Workers:         *workers,
		SlowThreshold:   *slowThreshold,
		Log:             logger,
	})

	// pprof stays off the API listener: profiles are opt-in and never
	// reachable through the address a load balancer fronts. The default
	// mux is avoided so only the pprof handlers are exposed.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixd: pprof listener: %v\n", err)
			return 1
		}
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("cfixd: pprof listening on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, pprofMux); err != nil {
				logger.Printf("cfixd: pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	}
	// The resolved address line is part of the interface: scripts (and
	// the CI smoke test) parse it when -addr ends in :0.
	logger.Printf("cfixd: listening on http://%s", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	logger.Printf("cfixd: shutting down, draining in-flight requests (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("cfixd: drain incomplete: %v", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	}
	logger.Printf("cfixd: drained cleanly")
	return 0
}
