// Package corpus generates synthetic stand-ins for the four open-source
// programs of Section IV-B (zlib 1.2.5, libpng 1.2.6, GMP 4.3.2, LibTIFF
// 3.8.2).
//
// Substitution note (see DESIGN.md): RQ2 measures transformation
// applicability and safety, which depend on the distribution of C idioms —
// array vs pointer destinations, reachable heap allocations, aliased
// structs, interprocedurally-modified buffers — not on the libraries'
// domain logic. The generator plants those idioms in the proportions the
// paper reports: 317 unsafe call sites of which 259 satisfy SLR's
// preconditions (Table V, Figure 2), and 296 local char pointers of which
// 237 pass STR's preconditions (Table VI), with the four SLR failure
// classes of Section IV-B appearing exactly as often as the paper observed
// (one aliased struct member, one array of buffers, one ternary
// allocation, the rest unreachable allocations).
package corpus

import (
	"fmt"
	"strings"
)

// Project describes one synthetic project.
type Project struct {
	Name  string
	Files []File
	// Calibration carries the paper's reported statistics for the real
	// project (Table IV columns and Table V/VI rows).
	Calibration Calibration
	// DriverCalls are the benign invocations the make-test driver issues
	// (see driver.go).
	DriverCalls []string
}

// File is one generated C translation unit.
type File struct {
	Name   string
	Source string
}

// LOC returns the file's line count.
func (f *File) LOC() int { return strings.Count(f.Source, "\n") + 1 }

// Calibration is the paper-reported shape for one project.
type Calibration struct {
	// Table IV.
	CFiles int
	KLOC   float64
	PPKLOC float64
	// Table V.
	UnsafeCalls    int
	SLRTransformed int
	// Table VI.
	STRCandidates int
	STRFailed     int // interprocedural precondition failures
	STRReplaced   int
}

// siteSpec plants one SLR call site.
type siteSpec struct {
	fn   string // strcpy | strcat | sprintf | vsprintf | memcpy
	ok   bool   // passes SLR preconditions
	fail string // failure idiom when !ok: noalloc | aliased | arraybuf | ternary
}

// varSpec plants one STR candidate variable.
type varSpec struct {
	ok bool // passes STR preconditions (false → passed to modifying fn)
}

// mix describes what one project contains.
type mix struct {
	calibration Calibration
	sites       []siteSpec
	vars        []varSpec
}

// buildSites expands per-function (ok, fail) counts into site specs.
// Failure idioms: one strcpy fails via array-of-buffers, one memcpy via
// aliased struct, one memcpy via ternary allocation, everything else via
// unreachable allocation (Section IV-B's four classes).
func buildSites() []siteSpec {
	var sites []siteSpec
	add := func(fn string, ok int, fails []string) {
		for i := 0; i < ok; i++ {
			sites = append(sites, siteSpec{fn: fn, ok: true})
		}
		for _, f := range fails {
			sites = append(sites, siteSpec{fn: fn, ok: false, fail: f})
		}
	}
	failsOf := func(n int, specials ...string) []string {
		out := make([]string, 0, n)
		out = append(out, specials...)
		for len(out) < n {
			out = append(out, "noalloc")
		}
		return out
	}
	add("strcpy", 28, failsOf(11, "arraybuf"))
	add("strcat", 8, nil)
	add("sprintf", 150, failsOf(3))
	add("vsprintf", 1, failsOf(1))
	add("memcpy", 72, failsOf(43, "aliased", "ternary"))
	return sites
}

// projectMixes splits the 317 sites and 296 variables across the four
// projects so the per-project Table V/VI rows come out at the paper's
// ratios (zlib 76.47%, libpng 81.01%, GMP 85.26%, libtiff 80.73% for SLR).
func projectMixes() map[string]*mix {
	calib := map[string]Calibration{
		"zlib": {
			CFiles: 29, KLOC: 20.7, PPKLOC: 45.3,
			UnsafeCalls: 34, SLRTransformed: 26,
			STRCandidates: 36, STRFailed: 7, STRReplaced: 29,
		},
		"libpng": {
			CFiles: 40, KLOC: 36.3, PPKLOC: 84.2,
			UnsafeCalls: 79, SLRTransformed: 64,
			STRCandidates: 74, STRFailed: 15, STRReplaced: 59,
		},
		"gmp": {
			CFiles: 496, KLOC: 120.5, PPKLOC: 1097.7,
			UnsafeCalls: 95, SLRTransformed: 81,
			STRCandidates: 102, STRFailed: 21, STRReplaced: 81,
		},
		"libtiff": {
			CFiles: 80, KLOC: 62.1, PPKLOC: 511.8,
			UnsafeCalls: 109, SLRTransformed: 88,
			STRCandidates: 84, STRFailed: 16, STRReplaced: 68,
		},
	}

	all := buildSites()
	// Distribute deterministically: walk the site list round-robin-by-need
	// so each project receives exactly UnsafeCalls sites of which exactly
	// SLRTransformed are ok.
	names := []string{"zlib", "libpng", "gmp", "libtiff"}
	mixes := make(map[string]*mix, len(names))
	for _, n := range names {
		mixes[n] = &mix{calibration: calib[n]}
	}
	needOK := map[string]int{}
	needFail := map[string]int{}
	for _, n := range names {
		needOK[n] = calib[n].SLRTransformed
		needFail[n] = calib[n].UnsafeCalls - calib[n].SLRTransformed
	}
	for _, s := range all {
		placed := false
		for _, n := range names {
			if s.ok && needOK[n] > 0 {
				mixes[n].sites = append(mixes[n].sites, s)
				needOK[n]--
				placed = true
				break
			}
			if !s.ok && needFail[n] > 0 {
				mixes[n].sites = append(mixes[n].sites, s)
				needFail[n]--
				placed = true
				break
			}
		}
		if !placed {
			// Shouldn't happen: totals match by construction.
			mixes[names[len(names)-1]].sites = append(mixes[names[len(names)-1]].sites, s)
		}
	}
	for _, n := range names {
		c := calib[n]
		for i := 0; i < c.STRReplaced; i++ {
			mixes[n].vars = append(mixes[n].vars, varSpec{ok: true})
		}
		for i := 0; i < c.STRFailed; i++ {
			mixes[n].vars = append(mixes[n].vars, varSpec{ok: false})
		}
	}
	return mixes
}

// ProjectNames lists the four projects in Table IV order.
var ProjectNames = []string{"zlib", "libpng", "gmp", "libtiff"}

// Generate builds all four projects. fillerPerFile adds that many filler
// functions to each file to approximate the Table IV line counts (0 keeps
// the corpus minimal; the experiments harness uses a small value and
// reports measured vs calibrated KLOC).
func Generate(fillerPerFile int) []Project {
	mixes := projectMixes()
	out := make([]Project, 0, len(ProjectNames))
	for _, name := range ProjectNames {
		m := mixes[name]
		out = append(out, buildProject(name, m, fillerPerFile))
	}
	return out
}

// ProjectByName generates a single project.
func ProjectByName(name string, fillerPerFile int) (Project, bool) {
	for _, p := range Generate(fillerPerFile) {
		if p.Name == name {
			return p, true
		}
	}
	return Project{}, false
}

// buildProject distributes the planted sites/vars across the calibrated
// number of files.
func buildProject(name string, m *mix, fillerPerFile int) Project {
	nFiles := m.calibration.CFiles
	files := make([]File, 0, nFiles)
	var driverCalls []string
	siteIdx, varIdx := 0, 0
	for f := 0; f < nFiles; f++ {
		// Spread work over files front-loaded: sites/vars go into the
		// earliest files, matching real projects where string handling
		// clusters in a few translation units.
		sitesHere := spread(len(m.sites), nFiles, f)
		varsHere := spread(len(m.vars), nFiles, f)
		var sb strings.Builder
		fmt.Fprintf(&sb, "/* %s: synthetic corpus file %d (see internal/corpus). */\n", name, f)
		emitFilePreamble(&sb, name, f)
		for i := 0; i < sitesHere && siteIdx < len(m.sites); i++ {
			fn := fmt.Sprintf("%s_f%d_slr%d", name, f, i)
			emitSLRSite(&sb, name, f, i, m.sites[siteIdx])
			if call := driverCallFor(fn, m.sites[siteIdx]); call != "" {
				driverCalls = append(driverCalls, call)
			}
			siteIdx++
		}
		for i := 0; i < varsHere && varIdx < len(m.vars); i++ {
			fn := fmt.Sprintf("%s_f%d_str%d", name, f, i)
			emitSTRVar(&sb, name, f, i, m.vars[varIdx])
			driverCalls = append(driverCalls, driverCallForVar(fn))
			varIdx++
		}
		for i := 0; i < fillerPerFile; i++ {
			emitFiller(&sb, name, f, i)
		}
		files = append(files, File{
			Name:   fmt.Sprintf("%s_%03d.c", name, f),
			Source: sb.String(),
		})
	}
	return Project{Name: name, Files: files, Calibration: m.calibration, DriverCalls: driverCalls}
}

// spread gives file f its share of n items over nFiles, front-loaded in
// blocks of up to 8.
func spread(n, nFiles, f int) int {
	const block = 8
	start := f * block
	if start >= n {
		return 0
	}
	if n-start < block {
		return n - start
	}
	return block
}

func emitFilePreamble(sb *strings.Builder, name string, f int) {
	fmt.Fprintf(sb, "static int %s_f%d_flag = 1;\n\n", name, f)
	// A writer helper used by failing STR variables.
	fmt.Fprintf(sb, "static void %s_f%d_fill(char *out, int n) {\n", name, f)
	fmt.Fprintf(sb, "    int i;\n    for (i = 0; i < n; i++) { out[i] = 'x'; }\n}\n\n")
	// A reader helper used by passing STR variables.
	fmt.Fprintf(sb, "static int %s_f%d_scan(char *s) {\n", name, f)
	fmt.Fprintf(sb, "    return strlen(s);\n}\n\n")
}

// emitSLRSite plants one call site whose SLR outcome is known by
// construction.
func emitSLRSite(sb *strings.Builder, proj string, f, i int, s siteSpec) {
	fn := fmt.Sprintf("%s_f%d_slr%d", proj, f, i)
	switch {
	case s.ok:
		emitPassingSite(sb, fn, s.fn)
	case s.fail == "aliased":
		// Section IV-B class (2): "one other member of the struct was
		// aliased in this case, not the entire struct" — the cursor
		// aliases h.other, while the memcpy destination is h.data. With
		// structs as aggregate nodes the whole struct reads as aliased;
		// the field-sensitive ablation (DESIGN.md §6) recovers this site.
		// The cursor is file-scope so it is not an STR candidate.
		fmt.Fprintf(sb, `struct %s_hdr { char *data; char *other; };
static char *%s_cursor;
void %s(char *src, unsigned long n) {
    struct %s_hdr h;
    h.other = malloc(16);
    %s_cursor = h.other;
    h.data = malloc(64);
    memcpy(h.data, src, n);
}

`, fn, fn, fn, fn, fn)
	case s.fail == "arraybuf":
		fmt.Fprintf(sb, `void %s(char *src) {
    char *slots[4];
    slots[0] = malloc(32);
    strcpy(slots[0], src);
}

`, fn)
	case s.fail == "ternary":
		// Section IV-B class (4): the definition is a ternary with heap
		// allocation in both branches. The destination is file-scope so it
		// does not enter the STR candidate count.
		fmt.Fprintf(sb, `static char *%s_dst;
void %s(char *src, int wide, unsigned long n) {
    %s_dst = wide ? malloc(128) : malloc(32);
    memcpy(%s_dst, src, n);
}

`, fn, fn, fn, fn)
	default: // noalloc: the buffer reaches the call without a visible allocation
		switch s.fn {
		case "strcpy", "strcat", "sprintf":
			fmt.Fprintf(sb, `void %s(char *dst, char *src) {
    %s
}

`, fn, callFor(s.fn, "dst", "src"))
		case "vsprintf":
			fmt.Fprintf(sb, `void %s(char *dst, char *fmt, va_list ap) {
    vsprintf(dst, fmt, ap);
}

`, fn)
		default: // memcpy
			fmt.Fprintf(sb, `void %s(char *dst, char *src, unsigned long n) {
    memcpy(dst, src, n);
}

`, fn)
		}
	}
}

// emitPassingSite plants a site whose destination size is computable.
func emitPassingSite(sb *strings.Builder, fn, unsafe string) {
	switch unsafe {
	case "strcpy":
		fmt.Fprintf(sb, `void %s(char *src) {
    char out[64];
    strcpy(out, src);
    puts(out);
}

`, fn)
	case "strcat":
		fmt.Fprintf(sb, `void %s(char *suffix) {
    char path[128];
    path[0] = '/';
    path[1] = '\0';
    strcat(path, suffix);
    puts(path);
}

`, fn)
	case "sprintf":
		fmt.Fprintf(sb, `void %s(int value) {
    char msg[48];
    sprintf(msg, "value=%%d", value);
    puts(msg);
}

`, fn)
	case "vsprintf":
		fmt.Fprintf(sb, `void %s(char *fmt, va_list ap) {
    char msg[96];
    vsprintf(msg, fmt, ap);
    puts(msg);
}

`, fn)
	case "memcpy":
		fmt.Fprintf(sb, `void %s(char *src, unsigned long n) {
    char block[32];
    memcpy(block, src, n);
    block[31] = '\0';
    puts(block);
}

`, fn)
	}
}

func callFor(unsafe, dst, src string) string {
	switch unsafe {
	case "strcpy":
		return fmt.Sprintf("strcpy(%s, %s);", dst, src)
	case "strcat":
		return fmt.Sprintf("strcat(%s, %s);", dst, src)
	case "sprintf":
		return fmt.Sprintf("sprintf(%s, \"%%s\", %s);", dst, src)
	default:
		return fmt.Sprintf("strcpy(%s, %s);", dst, src)
	}
}

// emitSTRVar plants one local char pointer whose STR outcome is known by
// construction: passing variables only flow through supported patterns;
// failing ones are handed to a user-defined function that writes them.
func emitSTRVar(sb *strings.Builder, proj string, f, i int, v varSpec) {
	fn := fmt.Sprintf("%s_f%d_str%d", proj, f, i)
	if v.ok {
		fmt.Fprintf(sb, `int %s(void) {
    char *name;
    int n;
    name = malloc(24);
    name[0] = 'a';
    name[1] = '\0';
    n = %s_f%d_scan(name);
    return n + name[0];
}

`, fn, proj, f)
		return
	}
	fmt.Fprintf(sb, `int %s(void) {
    char *scratch;
    scratch = malloc(16);
    %s_f%d_fill(scratch, 8);
    return scratch[0];
}

`, fn, proj, f)
}

// emitFiller adds deterministic arithmetic filler approximating the real
// projects' bulk (compression loops, bignum kernels...).
func emitFiller(sb *strings.Builder, proj string, f, i int) {
	fmt.Fprintf(sb, `static unsigned long %s_f%d_fill%d(unsigned long x) {
    unsigned long acc = x;
    int i;
    for (i = 0; i < 13; i++) {
        acc = acc * 31 + %d;
        acc = acc ^ (acc >> 7);
        if (acc & 1) { acc += %d; } else { acc -= 3; }
    }
    return acc;
}

`, proj, f, i, i+1, i*2+5)
}
