// Command cfixd is the long-running fix/lint service: the paper's two
// buffer-overflow-fixing transformations and the static overflow oracle
// behind an HTTP/JSON API, with content-addressed result caching so
// re-analyzing unchanged translation units costs a cache lookup instead
// of a parse and a fixpoint solve.
//
// With -route it instead runs as the fleet router: the same API surface
// consistent-hash-routed by content fingerprint over N cfixd backends,
// with health ejection, bounded retries, tail-latency hedging and
// per-backend circuit breaking (see internal/fleet and DESIGN.md
// Section 14).
//
// Usage:
//
//	cfixd [flags]
//
//	-addr host:port       listen address (default 127.0.0.1:8347;
//	                      port 0 picks a free port, printed on startup)
//	-cache-size n         in-memory result cache bound in MiB (default
//	                      256; 0 disables caching)
//	-cache-dir dir        persist cache entries under dir (atomic
//	                      writes, checksum-verified reads) so restarts
//	                      start warm
//	-max-inflight n       concurrently admitted analysis requests;
//	                      beyond this the daemon answers 429 +
//	                      Retry-After (default 2 per CPU; 8 per CPU in
//	                      router mode, which only shuffles bytes)
//	-max-request-bytes n  request body cap (default 16 MiB; 413 beyond)
//	-timeout d            default per-request deadline (default 30s)
//	-max-timeout d        upper clamp on requested deadlines (default 2m;
//	                      in router mode also the per-attempt upstream
//	                      timeout)
//	-budget n             default per-request solver budget; exhausted
//	                      budgets degrade conservatively, never silence
//	                      (default 0 = unlimited)
//	-backend name         default repair backend for requests that name
//	                      none: "glib" (default), "bsd", or "c11k";
//	                      unknown names exit 2
//	-j n                  batch endpoint worker pool (0 = one per CPU)
//	-drain-grace d        after SIGTERM, how long to stay alive failing
//	                      /readyz before closing the listener, so
//	                      routing tiers eject this instance first
//	                      (default 0 = close immediately)
//	-drain-timeout d      how long a SIGTERM waits for in-flight
//	                      requests before forcing connections closed
//	                      (default 30s)
//	-slow-threshold d     log requests slower than d with a per-stage
//	                      time breakdown (default 0 = disabled)
//	-pprof-addr host:port serve net/http/pprof on a separate, opt-in
//	                      listener (default off; keep it loopback-only)
//
//	-route b1,b2,...      run as the fleet router over these cfixd
//	                      backends instead of serving locally; the
//	                      cache/budget/backend/-j analysis flags are
//	                      ignored (backends own those)
//	-retries n            router: upstream attempts after the first on
//	                      connect errors and retryable statuses
//	                      (default 2; -1 disables)
//	-hedge-after d        router: duplicate a slow attempt on the next
//	                      replica after d (default 0 = disabled)
//	-probe-interval d     router: readiness-probe period per backend
//	                      (default 1s)
//
// Endpoints: POST /v1/fix, POST /v1/lint, POST /v1/batch, GET /healthz,
// GET /readyz, GET /metrics — see internal/server and DESIGN.md
// Sections 10 and 14.
//
// On SIGTERM or SIGINT the daemon fails /readyz, waits -drain-grace,
// stops accepting connections, drains in-flight requests up to
// -drain-timeout (then forces the stragglers closed, loudly), and
// exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr            = flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks a free port)")
		cacheSize       = flag.Int64("cache-size", 256, "in-memory result cache bound in MiB (0 disables caching)")
		cacheDir        = flag.String("cache-dir", "", "persist cache entries under this directory")
		maxInFlight     = flag.Int("max-inflight", 0, "concurrently admitted analysis requests (0 = 2 per CPU); excess answers 429")
		maxRequestBytes = flag.Int64("max-request-bytes", 16<<20, "request body cap in bytes")
		timeout         = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout      = flag.Duration("max-timeout", 2*time.Minute, "upper clamp on requested deadlines")
		budget          = flag.Int("budget", 0, "default per-request solver budget (0 = unlimited); exhaustion degrades, never silences")
		backendName     = flag.String("backend", "glib", `default repair backend for requests that name none: "glib", "bsd", or "c11k"`)
		workers         = flag.Int("j", 0, "batch endpoint worker pool (0 = one worker per CPU; must be >= 0)")
		maxSessions     = flag.Int("max-sessions", 0, "open incremental-session cap for /v1/session/* (0 = 64); excess opens answer 429")
		drainGrace      = flag.Duration("drain-grace", 0, "after SIGTERM, keep serving while failing /readyz for this long so routers eject first")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline; expired drains force connections closed")
		slowThreshold   = flag.Duration("slow-threshold", 0, "log requests slower than this with a per-stage breakdown (0 = disabled)")
		pprofAddr       = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = disabled)")

		route         = flag.String("route", "", "comma-separated cfixd backend URLs: run as the fleet router instead of serving locally")
		retries       = flag.Int("retries", 2, "router: upstream attempts after the first (-1 disables retrying)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "router: hedge a slow attempt to the next replica after this long (0 = disabled)")
		probeInterval = flag.Duration("probe-interval", time.Second, "router: readiness-probe period per backend")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "cfixd: unexpected arguments; cfixd serves over HTTP, see -h")
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "cfixd: -j must be >= 0 (0 = one worker per CPU)")
		return 2
	}

	if err := startPprof(logger, *pprofAddr); err != nil {
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	}

	// Router mode: the same API surface, routed over a fleet of cfixd
	// backends. The analysis flags stay with the backends.
	if *route != "" {
		rt, err := fleet.NewRouter(fleet.Config{
			Backends:        strings.Split(*route, ","),
			MaxInFlight:     *maxInFlight,
			MaxRequestBytes: *maxRequestBytes,
			Retries:         *retries,
			HedgeAfter:      *hedgeAfter,
			UpstreamTimeout: *maxTimeout,
			ProbeInterval:   *probeInterval,
			Log:             logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixd: -route: %v\n", err)
			return 2
		}
		defer rt.Close()
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
			return 1
		}
		logger.Printf("cfixd: routing over %d backends, listening on http://%s", len(rt.Backends()), ln.Addr())
		return serveUntilSignal(logger, ln, rt.Handler(), rt.BeginDrain, *drainGrace, *drainTimeout)
	}

	defaultBackend, err := cfix.CanonicalBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfixd: -backend: %v\n", err)
		return 2
	}

	var rc *cfix.ResultCache
	if *cacheSize > 0 || *cacheDir != "" {
		size := *cacheSize << 20
		if size <= 0 {
			size = 256 << 20
		}
		var err error
		rc, err = cfix.NewResultCache(size, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
			return 1
		}
	}

	srv := server.New(server.Config{
		Cache:           rc,
		MaxInFlight:     *maxInFlight,
		MaxRequestBytes: *maxRequestBytes,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		Budget:          *budget,
		Backend:         defaultBackend,
		Workers:         *workers,
		MaxSessions:     *maxSessions,
		SlowThreshold:   *slowThreshold,
		Log:             logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	}
	// The resolved address line is part of the interface: scripts (and
	// the CI smoke test) parse it when -addr ends in :0.
	logger.Printf("cfixd: listening on http://%s", ln.Addr())
	return serveUntilSignal(logger, ln, srv.Handler(), srv.BeginDrain, *drainGrace, *drainTimeout)
}

// startPprof serves net/http/pprof on its own opt-in listener. pprof
// stays off the API listener: profiles are never reachable through the
// address a load balancer fronts. The default mux is avoided so only
// the pprof handlers are exposed.
func startPprof(logger *log.Logger, addr string) error {
	if addr == "" {
		return nil
	}
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	pprofMux := http.NewServeMux()
	pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
	pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Printf("cfixd: pprof listening on http://%s/debug/pprof/", pln.Addr())
	go func() {
		if err := http.Serve(pln, pprofMux); err != nil {
			logger.Printf("cfixd: pprof server: %v", err)
		}
	}()
	return nil
}

// serveUntilSignal serves handler on ln until SIGTERM/SIGINT, then runs
// the drain protocol shared by the single daemon and the router:
//
//  1. beginDrain flips /readyz to 503 so routing tiers and load
//     balancers stop sending new work;
//  2. after drainGrace (time for those tiers to actually probe and
//     eject this instance) the listener closes and in-flight requests
//     drain for up to drainTimeout;
//  3. a drain that outlives its deadline is forced: remaining
//     connections are closed and the expiry is logged loudly, because a
//     silent hang on shutdown is how fleets end up with zombie members.
func serveUntilSignal(logger *log.Logger, ln net.Listener, handler http.Handler, beginDrain func(), drainGrace, drainTimeout time.Duration) int {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	beginDrain()
	if drainGrace > 0 {
		logger.Printf("cfixd: readiness withdrawn, waiting %v for routers to eject this instance", drainGrace)
		select {
		case <-time.After(drainGrace):
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
			return 1
		}
	}

	logger.Printf("cfixd: shutting down, draining in-flight requests (up to %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("cfixd: DRAIN TIMEOUT after %v: forcing remaining connections closed (%v)", drainTimeout, err)
		_ = httpSrv.Close()
		<-serveErr
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "cfixd: %v\n", err)
		return 1
	}
	logger.Printf("cfixd: drained cleanly")
	return 0
}
