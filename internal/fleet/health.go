package fleet

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// backendState is one cfixd backend as the router sees it: its base
// URL, its circuit breaker, its health overlay, and its share of the
// per-backend /metrics counters. Counter semantics:
//
//	routed   — upstream attempts sent to this backend (primaries,
//	           retries and hedges all count; they are also counted in
//	           their own columns)
//	retried  — attempts that were retries of a failure elsewhere
//	hedged   — attempts launched because the previous replica was slow
//	broken   — times this backend was skipped because its breaker was open
//	ejected  — health ejection events (cumulative)
type backendState struct {
	url     string
	breaker *Breaker

	ejected  atomic.Bool
	routed   atomic.Int64
	retried  atomic.Int64
	hedged   atomic.Int64
	broken   atomic.Int64
	ejection atomic.Int64
	// probeFails counts consecutive failed probes; prober-goroutine-only.
	probeFails int
}

// available reports whether the router may send this backend a request.
func (b *backendState) available() bool { return !b.ejected.Load() }

// probeBackends runs the active health loop for every backend until
// done closes. Each backend is probed on its own schedule so one slow
// probe target cannot starve the others' checks.
func (rt *Router) probeBackends() {
	for _, be := range rt.backendList {
		rt.wg.Add(1)
		go func(be *backendState) {
			defer rt.wg.Done()
			rt.probeLoop(be)
		}(be)
	}
}

// probeLoop probes one backend's /readyz forever: a healthy backend is
// probed every ProbeInterval; ProbeFailLimit consecutive failures eject
// it (the ring is untouched — requests simply skip it); an ejected
// backend keeps being probed with exponential backoff up to
// ProbeMaxBackoff, and a single success reinstates it with a reset
// breaker. /readyz rather than /healthz is deliberate: a draining
// backend fails readiness while still alive, so the router stops
// routing to it before its listener closes.
func (rt *Router) probeLoop(be *backendState) {
	interval := rt.conf.ProbeInterval
	wait := interval
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-timer.C:
		}
		if rt.probeOnce(be) {
			if be.ejected.Load() {
				rt.conf.Log.Printf("fleet: backend %s ready again, reinstating", be.url)
				be.breaker.Reset()
				be.ejected.Store(false)
			}
			be.probeFails = 0
			wait = interval
		} else {
			be.probeFails++
			if be.probeFails >= rt.conf.ProbeFailLimit && !be.ejected.Load() {
				rt.conf.Log.Printf("fleet: backend %s failed %d consecutive probes, ejecting",
					be.url, be.probeFails)
				be.ejected.Store(true)
				be.ejection.Add(1)
			}
			if be.ejected.Load() {
				// Exponential backoff while ejected: a dead backend is
				// probed less and less often, a restarted one is still
				// noticed within one backoff period.
				wait = min(2*wait, rt.conf.ProbeMaxBackoff)
			} else {
				wait = interval
			}
		}
		timer.Reset(wait)
	}
}

// probeOnce issues one readiness probe.
func (rt *Router) probeOnce(be *backendState) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.conf.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// normalizeBackendURL canonicalizes one -route element: scheme added
// when missing, trailing slash dropped.
func normalizeBackendURL(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimRight(s, "/")
	if s == "" {
		return s
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}
