// Package cache provides the content-addressed result cache behind the
// cfixd service and `cfix -cache-dir`: a byte-bounded in-memory LRU over
// serialized analysis results, with singleflight deduplication of
// concurrent identical requests and optional disk persistence.
//
// Keys are sha256 digests computed by Key over the request's content
// (source text, options fingerprint, diagnostic filename), so a cache
// entry can never be served for a request it does not exactly describe —
// invalidation is free: editing the source or changing an option changes
// the key, and stale entries age out of the LRU (or sit as unreachable
// garbage on disk). Values are opaque byte slices; callers serialize
// their results (core.Report, lint findings) to JSON before storing.
//
// The package sits below internal/core and must not import it.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list element, entry struct) charged against the byte bound on top of
// the key and payload sizes.
const entryOverhead = 128

// diskMagic heads every persisted entry; bumping it invalidates every
// on-disk cache in one stroke when the payload format changes.
const diskMagic = "cfixcache1"

// Key derives the content-addressed cache key for a request: the hex
// sha256 over the length-prefixed parts. Length prefixing keeps the
// digest injective — ("ab","c") and ("a","bc") hash differently — so two
// distinct requests can never collide by concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of the cache's effectiveness
// counters, exported verbatim by cfixd's /metrics endpoint.
type Stats struct {
	// Hits counts requests answered from the cache (memory or disk).
	Hits int64 `json:"hits"`
	// Misses counts requests that had to compute their result.
	Misses int64 `json:"misses"`
	// Collapsed counts requests that piggybacked on an identical
	// in-flight computation instead of starting their own (singleflight).
	Collapsed int64 `json:"collapsed"`
	// Evictions counts entries dropped to keep Bytes under MaxBytes.
	Evictions int64 `json:"evictions"`
	// DiskHits counts hits served by the persistence directory after a
	// memory miss (a subset of Hits).
	DiskHits int64 `json:"disk_hits"`
	// DiskRejects counts persisted entries discarded as corrupt
	// (truncated file, checksum mismatch, foreign format).
	DiskRejects int64 `json:"disk_rejects"`
	// Entries and Bytes describe the current in-memory footprint.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured byte bound.
	MaxBytes int64 `json:"max_bytes"`
}

// entry is one cached (key, payload) pair.
type entry struct {
	key string
	val []byte
}

func (e *entry) cost() int64 { return int64(len(e.key)) + int64(len(e.val)) + entryOverhead }

// flight tracks one in-progress computation so concurrent identical
// requests wait for it instead of duplicating the work.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is a byte-bounded LRU over content-addressed results. All
// methods are safe for concurrent use.
type Cache struct {
	maxBytes int64
	dir      string

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	byKey   map[string]*list.Element
	bytes   int64
	flights map[string]*flight

	hits, misses, collapsed, evictions, diskHits, diskRejects int64
}

// New creates a cache bounded to maxBytes of in-memory entries
// (maxBytes <= 0 means a modest 64 MiB default). dir, when non-empty,
// enables disk persistence under that directory: every stored entry is
// also written to disk (atomic temp+rename, like `cfix -o`), and a
// memory miss falls back to a checksum-verified disk read. The directory
// is created if needed.
func New(maxBytes int64, dir string) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{
		maxBytes: maxBytes,
		dir:      dir,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Collapsed:   c.collapsed,
		Evictions:   c.evictions,
		DiskHits:    c.diskHits,
		DiskRejects: c.diskRejects,
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
	}
}

// Get returns the cached payload for key, consulting memory first and
// the persistence directory second. The returned slice is shared; the
// caller must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	val, ok := c.loadDisk(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.diskHits++
	c.putLocked(key, val)
	c.mu.Unlock()
	return val, true
}

// Put stores the payload under key, evicting least-recently-used
// entries as needed to respect the byte bound, and persists it to disk
// when persistence is enabled. Payloads larger than the whole bound are
// still persisted but not held in memory.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.putLocked(key, val)
	c.mu.Unlock()
	if c.dir != "" {
		c.storeDisk(key, val)
	}
}

// putLocked inserts or refreshes an entry and evicts to the bound.
// Callers hold c.mu.
func (c *Cache) putLocked(key string, val []byte) {
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, val: val}
		if e.cost() > c.maxBytes {
			return // would evict everything and still not fit
		}
		c.byKey[key] = c.ll.PushFront(e)
		c.bytes += e.cost()
	}
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := c.ll.Remove(el).(*entry)
		delete(c.byKey, e.key)
		c.bytes -= e.cost()
		c.evictions++
	}
}

// Do returns the cached payload for key or computes it with fn,
// collapsing concurrent calls for the same key into one computation —
// every caller gets the same payload, but fn runs once. hit reports
// whether this caller avoided the computation (a cache hit or a
// collapsed duplicate). fn's store result controls whether a computed
// payload enters the cache: degraded or otherwise non-reusable results
// return store=false and are handed back without being remembered.
// A failed fn (err != nil) is never cached; each waiter receives the
// same error.
func (c *Cache) Do(key string, fn func() (val []byte, store bool, err error)) (val []byte, hit bool, err error) {
	if val, ok := c.Get(key); ok {
		return val, true, nil
	}
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.collapsed++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	var store bool
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("cache: computation panicked: %v", r)
				c.finishFlight(key, f)
				panic(r)
			}
		}()
		f.val, store, f.err = fn()
	}()
	if f.err == nil && store {
		c.Put(key, f.val)
	}
	c.finishFlight(key, f)
	return f.val, false, f.err
}

// finishFlight publishes the flight's result and removes it from the
// in-progress table.
func (c *Cache) finishFlight(key string, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// diskPath maps a key to its persisted location, sharded by the first
// key byte to keep directories small.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".cfe")
}

// storeDisk persists one entry with a checksum header through a
// temporary file and rename, so readers never observe a torn write.
// Persistence is best-effort: a full disk degrades to a memory-only
// cache, never to an error on the serving path.
func (c *Cache) storeDisk(key string, val []byte) {
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	sum := sha256.Sum256(val)
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+".tmp*")
	if err != nil {
		return
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := fmt.Fprintf(tmp, "%s %s\n", diskMagic, hex.EncodeToString(sum[:])); err != nil {
		return
	}
	if _, err := tmp.Write(val); err != nil {
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// loadDisk reads and verifies one persisted entry. Anything that does
// not parse back byte-for-byte — wrong magic, short file, checksum
// mismatch — is deleted and counted as a reject: a corrupt cache entry
// must become a recomputation, never a corrupt result.
func (c *Cache) loadDisk(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	reject := func() ([]byte, bool) {
		os.Remove(c.diskPath(key))
		c.mu.Lock()
		c.diskRejects++
		c.mu.Unlock()
		return nil, false
	}
	// Header: "cfixcache1 <64 hex digest>\n"
	headerLen := len(diskMagic) + 1 + 64 + 1
	if len(data) < headerLen {
		return reject()
	}
	if string(data[:len(diskMagic)]) != diskMagic || data[len(diskMagic)] != ' ' || data[headerLen-1] != '\n' {
		return reject()
	}
	wantHex := string(data[len(diskMagic)+1 : headerLen-1])
	val := data[headerLen:]
	sum := sha256.Sum256(val)
	if hex.EncodeToString(sum[:]) != wantHex {
		return reject()
	}
	return val, true
}
