package cparse

import (
	"strings"
	"testing"

	"repro/internal/clex"
	"repro/internal/ctoken"
)

// FuzzParse asserts the parser's crash-freedom contract: arbitrary input
// produces either a unit or an error, never a panic (the internal bail
// panic must not escape).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int x;",
		"void f(void) { char buf[10]; strcpy(buf, \"x\"); }",
		"struct s { int a; } v; int f(struct s *p) { return p->a; }",
		"typedef int i32; i32 g(i32 a, ...) { return a; }",
		"void f() { for(;;) if (1) while(0) do ; while(1); }",
		"int a[3] = {1,2,3}; char *s = \"\\x41\\n\";",
		"void f(){ goto l; l: switch(1){case 1: break; default:;} }",
		"int (*fp)(char*, ...);",
		"void broken( {",
		"8'\x00\"/*",
		"sizeof sizeof (int)(((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound pathological inputs; the parser is recursive descent.
		if len(src) > 4096 || strings.Count(src, "(") > 200 {
			t.Skip()
		}
		unit, err := Parse("fuzz.c", src)
		if err == nil && unit == nil {
			t.Fatal("nil unit without error")
		}
	})
}

// FuzzLexer asserts that tokenization always terminates, never panics,
// and produces tokens whose extents tile within the source.
func FuzzLexer(f *testing.F) {
	f.Add("int main(void) { return 0; }")
	f.Add("\"unterminated")
	f.Add("/* unterminated")
	f.Add("'\\")
	f.Add("0x 1e+ 3..7 L'x' L\"y\"")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			t.Skip()
		}
		toks, _ := clex.Tokenize(src)
		var prev ctoken.Pos
		for _, tok := range toks {
			if tok.Kind == ctoken.KindEOF {
				continue
			}
			e := tok.Extent
			if !e.IsValid() || int(e.End) > len(src) {
				t.Fatalf("bad extent %+v for source of %d bytes", e, len(src))
			}
			if e.Pos < prev {
				t.Fatalf("tokens out of order: %d after %d", e.Pos, prev)
			}
			prev = e.Pos
			if src[e.Pos:e.End] != tok.Text {
				t.Fatalf("text/extent mismatch: %q vs %q", src[e.Pos:e.End], tok.Text)
			}
		}
	})
}
