// IDE-style refactoring: fix a single selected call site.
//
// The paper positions the transformations next to the refactorings of
// popular IDEs (Section II): a developer selects one function call
// expression and invokes SAFE LIBRARY REPLACEMENT on just that site,
// leaving the rest of the file untouched. This example simulates the
// selection by byte offset — the way an editor integration would pass the
// cursor position — and prints a unified before/after view.
//
//	go run ./examples/ide-refactor
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/pkg/cfix"
)

const file = `
void format_header(int seq, char *payload) {
    char header[32];
    char trailer[32];
    sprintf(header, "seq=%d", seq);
    sprintf(trailer, "end=%d", seq);
    puts(header);
    puts(trailer);
}
`

func main() { os.Exit(run()) }

func run() int {
	// The developer's cursor sits on the second sprintf.
	cursor := strings.Index(file, "sprintf(trailer")
	fmt.Printf("cursor at byte offset %d (on the second sprintf)\n\n", cursor)

	rep, err := cfix.Fix("header.c", file, cfix.Options{
		SelectOffset: cursor,
		DisableSTR:   true, // single-site SLR, like an IDE quick-fix
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Println("--- before ---")
	os.Stdout.WriteString(file)
	fmt.Println("\n--- after (only the selected site changed) ---")
	os.Stdout.WriteString(rep.Source)

	if !strings.Contains(rep.Source, `sprintf(header, "seq=%d", seq)`) {
		fmt.Fprintln(os.Stderr, "unselected site was modified!")
		return 1
	}
	if !strings.Contains(rep.Source, `g_snprintf(trailer, sizeof(trailer), "end=%d", seq)`) {
		fmt.Fprintln(os.Stderr, "selected site was not fixed!")
		return 1
	}
	fmt.Println("\nselected call bounded; neighboring code untouched.")
	return 0
}
