package dataflow

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

// prep parses src, typechecks it and computes reaching definitions for the
// first function.
func prep(t *testing.T, src string) (*cast.TranslationUnit, *cfg.Graph, *ReachingDefs) {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	g := cfg.Build(tu.Funcs[0])
	rd := ComputeReaching(g, NoAliases{})
	return tu, g, rd
}

// symNamed finds a symbol by name in the unit.
func symNamed(t *testing.T, tu *cast.TranslationUnit, name string) *cast.Symbol {
	t.Helper()
	for _, s := range tu.Symbols {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("symbol %q not found", name)
	return nil
}

// callNode locates the CFG node containing the first call to callee.
func callNode(t *testing.T, tu *cast.TranslationUnit, g *cfg.Graph, callee string) *cfg.Node {
	t.Helper()
	var call *cast.CallExpr
	cast.Inspect(tu, func(n cast.Node) bool {
		if c, ok := n.(*cast.CallExpr); ok && call == nil && c.Callee() == callee {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatalf("call to %s not found", callee)
	}
	n := g.NodeContaining(call)
	if n == nil {
		t.Fatalf("no CFG node contains the %s call", callee)
	}
	return n
}

func TestUniqueReachingStraightLine(t *testing.T) {
	tu, g, rd := prep(t, `
void f(void) {
    char buf[10];
    char *dst = buf;
    strcpy(dst, "hello");
}
`)
	dst := symNamed(t, tu, "dst")
	n := callNode(t, tu, g, "strcpy")
	def := rd.UniqueReaching(n, dst)
	if def == nil {
		t.Fatal("expected a unique reaching definition for dst")
	}
	if def.Kind != DefInit {
		t.Fatalf("kind: got %v, want DefInit", def.Kind)
	}
	if def.Value == nil {
		t.Fatal("init def should carry the initializer expression")
	}
}

func TestReassignmentKills(t *testing.T) {
	tu, g, rd := prep(t, `
void f(void) {
    char a[10];
    char b[20];
    char *p = a;
    p = b;
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	def := rd.UniqueReaching(n, p)
	if def == nil {
		t.Fatal("expected unique def after kill")
	}
	if def.Kind != DefAssign {
		t.Fatalf("kind: got %v, want DefAssign (the later assignment)", def.Kind)
	}
	// The reaching def's RHS must be b, not a.
	a, ok := def.Value.(*cast.AssignExpr)
	if !ok {
		t.Fatalf("value: got %T", def.Value)
	}
	rhs, ok := cast.Unparen(a.RHS).(*cast.Ident)
	if !ok || rhs.Name != "b" {
		t.Fatalf("reaching RHS: got %v", a.RHS)
	}
}

func TestBranchMergeYieldsMultipleDefs(t *testing.T) {
	tu, g, rd := prep(t, `
void f(int c) {
    char a[10];
    char b[20];
    char *p;
    if (c) { p = a; } else { p = b; }
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	defs := rd.ReachingFor(n, p)
	if len(defs) != 2 {
		t.Fatalf("defs reaching merge: got %d, want 2", len(defs))
	}
	if rd.UniqueReaching(n, p) != nil {
		t.Fatal("UniqueReaching must refuse on merges")
	}
}

func TestDeclWithoutInitIsADef(t *testing.T) {
	tu, g, rd := prep(t, `
void f(void) {
    char *p;
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	def := rd.UniqueReaching(n, p)
	if def == nil {
		t.Fatal("uninitialized decl should still be the reaching def")
	}
	if def.Kind != DefDecl {
		t.Fatalf("kind: got %v, want DefDecl", def.Kind)
	}
}

func TestLoopCarriedDefs(t *testing.T) {
	tu, g, rd := prep(t, `
void f(int n) {
    char a[10];
    char *p = a;
    while (n > 0) {
        p = p + 1;
        n--;
    }
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	defs := rd.ReachingFor(n, p)
	// Both the initialization and the loop assignment reach the use.
	if len(defs) != 2 {
		t.Fatalf("defs: got %d, want 2", len(defs))
	}
}

func TestIncDecIsADef(t *testing.T) {
	tu, g, rd := prep(t, `
void f(void) {
    char a[10];
    char *p = a;
    p++;
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	def := rd.UniqueReaching(n, p)
	if def == nil {
		t.Fatal("expected unique reaching def")
	}
	if def.Kind != DefIncDec {
		t.Fatalf("kind: got %v, want DefIncDec", def.Kind)
	}
}

func TestMemberDefsTrackedSeparately(t *testing.T) {
	tu, g, rd := prep(t, `
struct holder { char *buf; int n; };
void f(void) {
    struct holder h;
    char a[10];
    h.buf = a;
    h.n = 3;
    strcpy(h.buf, "x");
}
`)
	h := symNamed(t, tu, "h")
	n := callNode(t, tu, g, "strcpy")
	var bufDefs []*Def
	for _, d := range rd.In(n) {
		if d.Sym == h && d.Member == "buf" {
			bufDefs = append(bufDefs, d)
		}
	}
	if len(bufDefs) != 1 {
		t.Fatalf("member defs of h.buf: got %d, want 1", len(bufDefs))
	}
	// h.n = 3 must not kill h.buf's definition.
	if bufDefs[0].Kind != DefAssign {
		t.Fatalf("kind: got %v", bufDefs[0].Kind)
	}
}

func TestWholeStructAssignKillsMember(t *testing.T) {
	tu, g, rd := prep(t, `
struct holder { char *buf; int n; };
void f(struct holder other) {
    struct holder h;
    char a[10];
    h.buf = a;
    h = other;
    strcpy(h.buf, "x");
}
`)
	h := symNamed(t, tu, "h")
	n := callNode(t, tu, g, "strcpy")
	for _, d := range rd.In(n) {
		if d.Sym == h && d.Member == "buf" {
			t.Fatal("whole-struct assignment must kill member definitions")
		}
	}
}

func TestAddressOfArgIsWeakDef(t *testing.T) {
	tu, g, rd := prep(t, `
void f(void) {
    char *p;
    char a[10];
    p = a;
    scanf("%s", &p);
    strcpy(p, "x");
}
`)
	p := symNamed(t, tu, "p")
	n := callNode(t, tu, g, "strcpy")
	defs := rd.ReachingFor(n, p)
	// The strong assignment p=a plus the weak call-out def both reach.
	if len(defs) != 2 {
		t.Fatalf("defs: got %d, want 2 (assign + weak call-out)", len(defs))
	}
	weak := 0
	for _, d := range defs {
		if d.Weak {
			weak++
		}
	}
	if weak != 1 {
		t.Fatalf("weak defs: got %d, want 1", weak)
	}
}

func TestBitSetOps(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("set/has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("count: got %d", b.Count())
	}
	c := b.Clone()
	c.Clear(64)
	if c.Has(64) || !b.Has(64) {
		t.Fatal("clone must be independent")
	}
	d := NewBitSet(130)
	if changed := d.UnionWith(b); !changed {
		t.Fatal("union should report change")
	}
	if !d.Equal(b) {
		t.Fatal("union result mismatch")
	}
	d.DiffWith(c)
	if d.Count() != 1 || !d.Has(64) {
		t.Fatal("diff broken")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("foreach: got %v", got)
	}
}
