package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTableIIIStagesAndBenchReport: a stage-collecting Table III run
// yields a per-stage breakdown per CWE whose grouped columns sum to the
// merged self time, the formatted table prints the breakdown section,
// and BuildBenchReport round-trips through JSON with the key stages
// present.
func TestTableIIIStagesAndBenchReport(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	opts := TableIIIOptions{Stride: 100, Stages: true}
	start := time.Now()
	rows, err := RunTableIII(opts)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	var sawStages bool
	for _, r := range rows {
		if r.Programs == 0 {
			continue
		}
		if len(r.Stages) == 0 {
			t.Errorf("CWE-%d: no stages collected over %d programs", r.CWE, r.Programs)
			continue
		}
		sawStages = true
		grouped := r.ParseTime + r.AnalyzeTime + r.SLRTime + r.STRTime
		if grouped != obs.SelfTotal(r.Stages) {
			t.Errorf("CWE-%d: grouped columns %v != merged self total %v",
				r.CWE, grouped, obs.SelfTotal(r.Stages))
		}
	}
	if !sawStages {
		t.Fatal("no CWE collected stages")
	}

	table := FormatTableIII(rows)
	for _, want := range []string{"Per-stage pipeline time", "Stage detail", "parse", "slr"} {
		if !strings.Contains(table, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, table)
		}
	}

	rep := BuildBenchReport(rows, opts, wall)
	if rep.Suite != "cfix-pipeline-samate" || rep.Programs == 0 || rep.WallUs <= 0 {
		t.Fatalf("report header: %+v", rep)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded BenchReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, st := range decoded.Stages {
		names[st.Name] = true
	}
	for _, want := range []string{"parse", "typecheck", "slr", "str", "fix"} {
		if !names[want] {
			t.Fatalf("report missing stage %q: %v", want, names)
		}
	}
	if len(decoded.CWEs) != len(rows) {
		t.Fatalf("cwes: %d rows, want %d", len(decoded.CWEs), len(rows))
	}
}

// TestTableIIIStagesOff: without the option no stages are collected and
// the table omits the breakdown section (the zero-cost default).
func TestTableIIIStagesOff(t *testing.T) {
	rows, err := RunTableIII(TableIIIOptions{Stride: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Stages) != 0 || r.ParseTime != 0 {
			t.Fatalf("CWE-%d collected stages without opting in: %+v", r.CWE, r.Stages)
		}
	}
	if table := FormatTableIII(rows); strings.Contains(table, "Per-stage pipeline time") {
		t.Fatal("breakdown section printed without stage collection")
	}
}

// TestMeasureIntflowStage: the supplementary integer-oracle measurement
// is marked supplementary, carries real spans when tracing is enabled,
// and degrades to ok=false (not an error) when tracing is compiled out.
func TestMeasureIntflowStage(t *testing.T) {
	st, ok, err := MeasureIntflowStage(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		if ok {
			t.Fatalf("cfix_notrace build measured a stage: %+v", st)
		}
		return
	}
	if !ok {
		t.Fatal("tracing enabled but no intflow stage measured")
	}
	if st.Name != obs.StageIntflow || !st.Supplementary {
		t.Fatalf("stage: %+v, want name=%q supplementary=true", st, obs.StageIntflow)
	}
	if st.Count == 0 || st.SelfUs < 0 {
		t.Fatalf("implausible stage aggregate: %+v", st)
	}
}
