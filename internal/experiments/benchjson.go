package experiments

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/samate"
)

// BenchReport is the machine-readable pipeline benchmark the CI run
// uploads as BENCH_pipeline.json (cmd/experiments -bench-json): the
// Table III SAMATE run's per-stage time breakdown in a stable schema a
// regression checker can diff across commits.
type BenchReport struct {
	// Suite identifies the workload; fixed so downstream tooling can
	// key on it.
	Suite string `json:"suite"`
	// GoVersion, GOOS/GOARCH and CPUs qualify the numbers: absolute
	// times are only comparable on like hardware.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Stride and Workers echo the run's sampling and parallelism.
	Stride  int `json:"stride"`
	Workers int `json:"workers"`
	// Backend is the canonical repair dialect the run applied; numbers
	// from different dialects are not comparable (different call shapes
	// rewrite to different amounts of text).
	Backend string `json:"backend"`
	// Programs counts processed SAMATE programs; WallUs is the whole
	// run's wall clock in microseconds.
	Programs int   `json:"programs"`
	WallUs   int64 `json:"wall_us"`
	// Stages is the corpus-wide per-stage aggregate (self time is
	// exclusive of nested stages; summing SelfUs approximates the
	// pipeline's traced work).
	Stages []BenchStage `json:"stages"`
	// CWEs breaks the grouped columns down per CWE class.
	CWEs []BenchCWE `json:"cwes"`
}

// BenchStage is one stage's aggregate in the report.
type BenchStage struct {
	Name     string `json:"name"`
	Count    int    `json:"count"`
	TotalUs  int64  `json:"total_us"`
	SelfUs   int64  `json:"self_us"`
	MinUs    int64  `json:"min_us"`
	MaxUs    int64  `json:"max_us"`
	Degraded int    `json:"degraded,omitempty"`
	// Supplementary marks a stage measured outside the benchmark's fix
	// pipeline (the integer-overflow oracle, which the pipeline run
	// keeps disabled). benchguard's -pipeline gate excludes
	// supplementary stages from the pipeline total it budgets.
	Supplementary bool `json:"supplementary,omitempty"`
}

// BenchCWE is one CWE class's row in the report.
type BenchCWE struct {
	CWE       int    `json:"cwe"`
	Programs  int    `json:"programs"`
	WallUs    int64  `json:"wall_us"`
	ParseUs   int64  `json:"parse_us"`
	AnalyzeUs int64  `json:"analyze_us"`
	SLRUs     int64  `json:"slr_us"`
	STRUs     int64  `json:"str_us"`
	Degraded  int    `json:"degraded,omitempty"`
	Errors    int    `json:"errors,omitempty"`
	Name      string `json:"name"`
}

// us converts to integer microseconds.
func us(d time.Duration) int64 { return int64(d / time.Microsecond) }

// BuildBenchReport assembles the report from a stage-collecting
// RunTableIII's rows. wall is the whole run's measured wall clock.
func BuildBenchReport(rows []CWEResult, opts TableIIIOptions, wall time.Duration) BenchReport {
	rep := BenchReport{
		Suite:     "cfix-pipeline-samate",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Stride:    opts.Stride,
		Workers:   opts.Workers,
		WallUs:    us(wall),
	}
	if len(rows) > 0 {
		rep.Backend = rows[0].Backend
	}
	for _, st := range totalStages(rows) {
		rep.Stages = append(rep.Stages, BenchStage{
			Name:     st.Name,
			Count:    st.Count,
			TotalUs:  us(st.Total),
			SelfUs:   us(st.Self),
			MinUs:    us(st.Min),
			MaxUs:    us(st.Max),
			Degraded: st.Degraded,
		})
	}
	for _, r := range rows {
		rep.Programs += r.Programs
		rep.CWEs = append(rep.CWEs, BenchCWE{
			CWE:       r.CWE,
			Name:      r.Name,
			Programs:  r.Programs,
			WallUs:    us(r.WallTime),
			ParseUs:   us(r.ParseTime),
			AnalyzeUs: us(r.AnalyzeTime),
			SLRUs:     us(r.SLRTime),
			STRUs:     us(r.STRTime),
			Degraded:  r.Degraded,
			Errors:    r.Errors,
		})
	}
	return rep
}

// MeasureIntflowStage runs the integer-overflow oracle over the same
// strided SAMATE sample as the pipeline benchmark (plus the
// integer-overflow corpus, where the oracle actually finds something)
// with a tracer attached, and returns the oracle's own stage aggregate.
// The Table III run never executes the oracle — lint stays off — so
// this is a supplementary measurement answering "what would
// -checks=int add?"; benchguard's -pipeline mode gates the answer. The
// self time excludes the nested snapshot facts (call graph, CFGs,
// may-modify) the oracle shares with the rest of the pipeline. ok is
// false when tracing is compiled out (cfix_notrace) or the stage
// recorded no spans.
func MeasureIntflowStage(stride, workers int) (st BenchStage, ok bool, err error) {
	if stride < 1 {
		stride = 1
	}
	var picked []samate.Program
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		for i := 0; i < len(progs); i += stride {
			picked = append(picked, progs[i])
		}
	}
	for _, cwe := range samate.IntCWEs {
		progs := samate.IntGenerate(cwe, samate.IntTableCounts[cwe])
		for i := 0; i < len(progs); i += stride {
			picked = append(picked, progs[i])
		}
	}
	tr := obs.NewTracer()
	errs := analysis.Map(workers, picked, func(_ int, p samate.Program) error {
		snap, err := analysis.ParseCtx(context.Background(), p.ID+".c", p.Source,
			analysis.Config{Tracer: tr})
		if err != nil {
			return err
		}
		snap.IntFindings()
		return nil
	})
	for _, e := range errs {
		if e != nil {
			return BenchStage{}, false, e
		}
	}
	for _, s := range tr.StageStats() {
		if s.Name == obs.StageIntflow {
			return BenchStage{
				Name:          s.Name,
				Count:         s.Count,
				TotalUs:       us(s.Total),
				SelfUs:        us(s.Self),
				MinUs:         us(s.Min),
				MaxUs:         us(s.Max),
				Degraded:      s.Degraded,
				Supplementary: true,
			}, true, nil
		}
	}
	return BenchStage{}, false, nil
}

// WriteBenchJSON writes the report, indented for diff-friendly
// artifacts.
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
