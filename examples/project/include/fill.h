#ifndef FILL_H
#define FILL_H

#define PACKET_MAX 100

void fill(char *p, int n);

#endif
