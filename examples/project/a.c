/* a.c: the caller. Nothing in this file is wrong by itself — the bug
 * only appears when the analysis knows what fill() does with its
 * arguments, and fill() lives in b.c. */
#include "fill.h"

int main(void) {
    char buf[10];
    fill(buf, PACKET_MAX);
    return 0;
}
