// Package fault provides the fault-containment primitives shared by the
// fixpoint solvers and the batch pipeline: cooperative cancellation,
// iteration budgets, and panic-to-error recovery.
//
// The design follows the containment model of DESIGN.md Section 9. A
// solver observes its Limits at iteration boundaries through a Meter.
// Cancellation (a done context) aborts the solve by panicking with a
// private sentinel that Recover — installed once per file at the
// pipeline boundary (core.Fix / core.Analyze) — converts back into the
// context's error. Budget exhaustion never aborts: Meter.Step returns
// false and the solver degrades to its conservative result, recording
// the degradation so no exhausted budget can turn into a silent pass.
//
// This package sits below internal/dataflow, internal/pointsto,
// internal/overflow and internal/analysis and must not import any of
// them.
package fault

import (
	"context"
	"fmt"
	"runtime/debug"
)

// Limits bounds one fixpoint solve. The zero value imposes nothing.
type Limits struct {
	// Ctx, when non-nil, is polled at iteration boundaries; cancellation
	// aborts the enclosing per-file unit of work with the context's
	// error (via the sentinel panic that Recover understands).
	Ctx context.Context
	// Steps bounds the iterations of one fixpoint solve; 0 means
	// unlimited. Exhaustion does not abort: the solver degrades to its
	// conservative top result and reports the degradation.
	Steps int
	// Contexts bounds how many calling contexts an interprocedural pass
	// may explore; 0 means unlimited. Like Steps, exhaustion degrades
	// instead of aborting.
	Contexts int
}

// Meter tracks one solve against its limits. Each solve gets a fresh
// meter, so budgets are deterministic regardless of how many solves a
// file needs or in which order they run.
type Meter struct {
	lim       Limits
	steps     int
	exhausted bool
}

// NewMeter starts metering one solve.
func (l Limits) NewMeter() *Meter { return &Meter{lim: l} }

// Step consumes one solver iteration. It panics with a cancellation
// sentinel when the context is done, and returns false once the step
// budget is exhausted — the caller must then degrade conservatively.
func (m *Meter) Step() bool {
	CheckCtx(m.lim.Ctx)
	m.steps++
	if m.lim.Steps > 0 && m.steps > m.lim.Steps {
		m.exhausted = true
		return false
	}
	return true
}

// Exhausted reports whether the step budget ran out.
func (m *Meter) Exhausted() bool { return m.exhausted }

// Steps reports how many solver iterations the meter has consumed so
// far — the per-solve effort figure the observability layer attaches to
// stage spans (DESIGN.md Section 11).
func (m *Meter) Steps() int { return m.steps }

// cancelled is the sentinel carried by a cancellation panic. It is
// private so arbitrary panics can never impersonate a cancellation.
type cancelled struct{ err error }

// CheckCtx panics with a cancellation sentinel when ctx is done. A nil
// context never cancels.
func CheckCtx(ctx context.Context) {
	if ctx == nil {
		return
	}
	if err := ctx.Err(); err != nil {
		panic(cancelled{err})
	}
}

// AsCancellation returns the context error carried by a recovered panic
// value when it is a cancellation sentinel, nil otherwise.
func AsCancellation(r any) error {
	if c, ok := r.(cancelled); ok {
		return c.err
	}
	return nil
}

// PanicError is a recovered panic converted to an error. Stack holds
// the goroutine stack captured at the recovery point, so a crash in one
// batch file stays diagnosable after it has been contained.
type PanicError struct {
	// Value is the value the code panicked with.
	Value any
	// Stack is the formatted goroutine stack at recovery time.
	Stack []byte
}

// Error renders the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// NewPanicError wraps a recovered panic value, capturing the current
// goroutine stack.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Recover converts a panic into *err: cancellation sentinels become the
// context's error, everything else becomes a *PanicError carrying the
// stack. It must be installed directly: defer fault.Recover(&err).
// An already-set *err is preserved when there is no panic.
func Recover(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if c := AsCancellation(r); c != nil {
		*err = c
		return
	}
	*err = NewPanicError(r)
}
