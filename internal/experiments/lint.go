package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cinterp"
	"repro/internal/cparse"
	"repro/internal/overflow"
	"repro/internal/samate"
	"repro/internal/typecheck"
)

// LintRow aggregates the static overflow oracle's verdicts on one CWE
// class of the SAMATE corpus, cross-validated against the checked
// interpreter (the dynamic oracle used everywhere else in the paper).
type LintRow struct {
	CWE  int
	Name string
	// Programs actually processed.
	Programs int
	// TP / FN: programs whose bad() function was / was not flagged by the
	// static oracle (any finding attributed to the bad call chain).
	TP int
	FN int
	// CWEMatch: flagged bad() programs where some finding also carries the
	// program's exact CWE class.
	CWEMatch int
	// FP: programs whose good() function was flagged.
	FP int
	// DynBad: programs where the interpreter observes a violation running
	// bad(); Agree: programs where static and dynamic oracles both flag
	// bad().
	DynBad int
	Agree  int
	Errors int
}

// Precision is the program-level precision: flagged-bad over all flagged.
func (r LintRow) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is the program-level recall over the seeded vulnerabilities.
func (r LintRow) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// LintOptions configures the lint experiment.
type LintOptions struct {
	// Stride processes every Stride-th program (1 = the full corpus).
	Stride int
	// Workers bounds the shared pool (internal/analysis); 0 = one per CPU.
	Workers int
}

// RunLint generates the Juliet-style corpus, runs the static overflow
// oracle on every program, and cross-validates its bad() verdicts against
// the checked interpreter.
func RunLint(opts LintOptions) ([]LintRow, error) {
	if opts.Stride < 1 {
		opts.Stride = 1
	}

	var rows []LintRow
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		row := LintRow{CWE: cwe, Name: samate.CWENames[cwe]}

		picked := make([]samate.Program, 0, len(progs)/opts.Stride+1)
		for i := 0; i < len(progs); i += opts.Stride {
			picked = append(picked, progs[i])
		}
		results := analysis.Map(opts.Workers, picked,
			func(_ int, p samate.Program) lintOutcome { return lintOne(p) })

		for _, o := range results {
			row.Programs++
			if o.err != nil {
				row.Errors++
				continue
			}
			if o.badFlag {
				row.TP++
			} else {
				row.FN++
			}
			if o.cweOK {
				row.CWEMatch++
			}
			if o.goodFlag {
				row.FP++
			}
			if o.dynBad {
				row.DynBad++
				if o.badFlag {
					row.Agree++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// lintOutcome is the per-program result of running both oracles.
type lintOutcome struct {
	err                      error
	badFlag, cweOK, goodFlag bool
	dynBad                   bool
}

// lintOne runs both oracles on one program.
func lintOne(p samate.Program) (o lintOutcome) {
	snap, err := analysis.Parse(p.ID+".c", p.Source)
	if err != nil {
		o.err = err
		return o
	}
	for _, f := range snap.Findings() {
		if attributed(f, p.ID+"_bad") {
			o.badFlag = true
			if f.CWE == p.CWE {
				o.cweOK = true
			}
		}
		if attributed(f, p.ID+"_good") {
			o.goodFlag = true
		}
	}
	// Dynamic cross-validation: execute bad() under the checked
	// interpreter on a fresh parse (interpretation mutates globals).
	runUnit, err := cparse.Parse(p.ID+".c", p.Source)
	if err != nil {
		o.err = err
		return o
	}
	typecheck.Check(runUnit)
	in, err := cinterp.New(runUnit, cinterp.Limits{})
	if err != nil {
		o.err = err
		return o
	}
	in.SetStdin(stdinFor(p))
	res, err := in.Run(p.ID + "_bad")
	if err != nil {
		o.err = err
		return o
	}
	o.dynBad = len(res.Violations) > 0
	return o
}

// attributed reports whether the finding belongs to fn's call chain:
// either the access is in fn itself, or an interprocedural context
// passes through fn.
func attributed(f overflow.Finding, fn string) bool {
	if f.Function == fn {
		return true
	}
	for _, ctx := range f.Contexts {
		if strings.Contains(ctx, fn) {
			return true
		}
	}
	return false
}

// FormatLint renders the cross-validation table.
func FormatLint(rows []LintRow) string {
	var sb strings.Builder
	sb.WriteString("Static overflow oracle vs checked interpreter (synthetic Juliet corpus)\n")
	sb.WriteString(fmt.Sprintf("%-42s %8s %6s %6s %8s %6s %6s %6s %8s %6s\n",
		"CWE", "Programs", "TP", "FN", "CWEok", "FP", "Prec", "Rec", "DynBad", "Agree"))
	var tot LintRow
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-42s %8d %6d %6d %8d %6d %5.2f %6.2f %8d %6d\n",
			fmt.Sprintf("CWE %d: %s", r.CWE, r.Name),
			r.Programs, r.TP, r.FN, r.CWEMatch, r.FP,
			r.Precision(), r.Recall(), r.DynBad, r.Agree))
		tot.Programs += r.Programs
		tot.TP += r.TP
		tot.FN += r.FN
		tot.CWEMatch += r.CWEMatch
		tot.FP += r.FP
		tot.DynBad += r.DynBad
		tot.Agree += r.Agree
		tot.Errors += r.Errors
	}
	sb.WriteString(fmt.Sprintf("%-42s %8d %6d %6d %8d %6d %5.2f %6.2f %8d %6d\n",
		"Total", tot.Programs, tot.TP, tot.FN, tot.CWEMatch, tot.FP,
		tot.Precision(), tot.Recall(), tot.DynBad, tot.Agree))
	if tot.Errors > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs failed to process)\n", tot.Errors))
	}
	sb.WriteString("\nTP/FN: bad() flagged / missed by the static oracle; CWEok: flagged with the\n")
	sb.WriteString("program's exact CWE; FP: good() flagged; DynBad: interpreter observes the\n")
	sb.WriteString("overflow executing bad(); Agree: both oracles flag bad().\n")
	return sb.String()
}
