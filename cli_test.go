package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestCfixCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")

	src := `
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
    printf("%s\n", buf);
}
int main(void) {
    work();
    return 0;
}
`
	dir := t.TempDir()
	in := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fixed.c")

	cmd := exec.Command(bin, "-verify", "main", "-support", "-o", out, in)
	combined, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cfix: %v\n%s", err, combined)
	}
	text := string(combined)
	if !strings.Contains(text, "before: ") || !strings.Contains(text, "after:  0 violation(s)") {
		t.Fatalf("verify output unexpected:\n%s", text)
	}
	fixed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "g_strlcpy") {
		t.Fatalf("fixed source missing rewrite:\n%s", fixed)
	}

	// Usage error path.
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("no-args invocation must fail")
	}

	// Diff mode.
	diffOut, err := exec.Command(bin, "-summary=false", "-diff", in).Output()
	if err != nil {
		t.Fatalf("cfix -diff: %v", err)
	}
	if !strings.Contains(string(diffOut), "-    strcpy(buf") ||
		!strings.Contains(string(diffOut), "+    g_strlcpy(buf") {
		t.Fatalf("diff output unexpected:\n%s", diffOut)
	}
}

func TestSamategenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/samategen")
	dir := t.TempDir()
	cmd := exec.Command(bin, "-out", dir, "-cwe", "242", "-n", "5")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("samategen: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "CWE242"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("files: %d, want 5", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "CWE242", entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gets(") {
		t.Fatalf("CWE-242 program missing gets:\n%s", data)
	}
}

func TestExperimentsCLISampled(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/experiments")
	cmd := exec.Command(bin, "-table", "6")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "296") || !strings.Contains(string(out), "237") {
		t.Fatalf("Table VI output unexpected:\n%s", out)
	}
}

func TestCfixCLIBatchDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	src := t.TempDir()
	for i, body := range []string{
		"void a(void){ char b[4]; strcpy(b, \"toolongxxxx\"); }\n",
		"void c(void){ char d[4]; strcat(d, \"alsolong\"); }\n",
	} {
		name := filepath.Join(src, []string{"one.c", "two.c"}[i])
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	outdir := t.TempDir()
	out, err := exec.Command(bin, "-summary=false", "-outdir", outdir, src).CombinedOutput()
	if err != nil {
		t.Fatalf("batch: %v\n%s", err, out)
	}
	for _, name := range []string{"one.c", "two.c"} {
		data, err := os.ReadFile(filepath.Join(outdir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "g_strl") {
			t.Fatalf("%s not transformed:\n%s", name, data)
		}
	}
}
