// Package textdiff produces unified diffs between two texts. The paper
// argues the transformations are didactic — developers learn from seeing
// the small, local changes — so cmd/cfix can print exactly what changed
// (the -diff flag) instead of the whole file.
package textdiff

import (
	"fmt"
	"strings"
)

// Unified returns a unified diff (context 3) between a and b, labeled with
// the given names. Returns "" when the texts are identical.
func Unified(aName, bName, a, b string) string {
	if a == b {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	ops := diffOps(al, bl)
	return render(aName, bName, al, bl, ops)
}

// splitLines keeps line contents without terminators.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	// A trailing newline yields a final empty element; drop it so the diff
	// does not report a phantom line.
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// opKind is one diff operation.
type opKind int

const (
	opEqual opKind = iota + 1
	opDelete
	opInsert
)

type op struct {
	kind opKind
	// aIdx/bIdx index the line in the respective input (valid per kind).
	aIdx, bIdx int
}

// diffOps computes an LCS-based edit script. The inputs here are source
// files (thousands of lines at most), so the O(N·M) table is acceptable;
// a histogram prefilter trims common prefixes/suffixes first.
func diffOps(a, b []string) []op {
	// Trim common prefix/suffix.
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	am := a[pre : len(a)-suf]
	bm := b[pre : len(b)-suf]

	// LCS table over the middle.
	n, m := len(am), len(bm)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if am[i] == bm[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	ops := make([]op, 0, n+m+pre+suf)
	for i := 0; i < pre; i++ {
		ops = append(ops, op{kind: opEqual, aIdx: i, bIdx: i})
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case am[i] == bm[j]:
			ops = append(ops, op{kind: opEqual, aIdx: pre + i, bIdx: pre + j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{kind: opDelete, aIdx: pre + i})
			i++
		default:
			ops = append(ops, op{kind: opInsert, bIdx: pre + j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{kind: opDelete, aIdx: pre + i})
	}
	for ; j < m; j++ {
		ops = append(ops, op{kind: opInsert, bIdx: pre + j})
	}
	for k := 0; k < suf; k++ {
		ops = append(ops, op{kind: opEqual, aIdx: len(a) - suf + k, bIdx: len(b) - suf + k})
	}
	return ops
}

const _context = 3

// render groups ops into @@ hunks with context lines.
func render(aName, bName string, a, b []string, ops []op) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)

	// Identify hunks: ranges of ops containing a change, padded by
	// context equal lines.
	type hunk struct{ lo, hi int } // op index range [lo, hi)
	var hunks []hunk
	i := 0
	for i < len(ops) {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		lo := i - _context
		if lo < 0 {
			lo = 0
		}
		hi := i
		gap := 0
		for hi < len(ops) && gap <= 2*_context {
			if ops[hi].kind == opEqual {
				gap++
			} else {
				gap = 0
			}
			hi++
		}
		// Trim trailing context beyond _context.
		trail := 0
		for hi > i && ops[hi-1].kind == opEqual && trail < gap-_context {
			hi--
			trail++
		}
		hunks = append(hunks, hunk{lo: lo, hi: hi})
		i = hi
	}

	// Prefix positions: aPos[k]/bPos[k] are the line coordinates at op k.
	aPos := make([]int, len(ops)+1)
	bPos := make([]int, len(ops)+1)
	for k, o := range ops {
		aPos[k+1], bPos[k+1] = aPos[k], bPos[k]
		switch o.kind {
		case opEqual:
			aPos[k+1]++
			bPos[k+1]++
		case opDelete:
			aPos[k+1]++
		case opInsert:
			bPos[k+1]++
		}
	}

	for _, h := range hunks {
		aStart, bStart := aPos[h.lo], bPos[h.lo]
		aCount := aPos[h.hi] - aStart
		bCount := bPos[h.hi] - bStart
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, o := range ops[h.lo:h.hi] {
			switch o.kind {
			case opEqual:
				sb.WriteString(" " + a[o.aIdx] + "\n")
			case opDelete:
				sb.WriteString("-" + a[o.aIdx] + "\n")
			case opInsert:
				sb.WriteString("+" + b[o.bIdx] + "\n")
			}
		}
	}
	return sb.String()
}
