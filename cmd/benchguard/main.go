// Command benchguard compares two `go test -bench` outputs and fails
// when the candidate regresses past a threshold. CI's observability
// gate runs BenchmarkObsOverhead in the default build (candidate) and
// again under `-tags cfix_notrace` (baseline, tracing compiled out) and
// rejects the build if the default build's no-tracer path costs more
// than 2% over the compiled-out build.
//
// Usage:
//
//	benchguard [-max-pct p] [-stat min|median] candidate.txt baseline.txt
//
// Each file is standard `go test -bench` output; with -count=N every
// benchmark contributes N samples. Samples are reduced with -stat (min
// by default: scheduler noise only ever adds time, so the minimum is
// the most stable estimate of the true cost) and the reduced values are
// compared per benchmark name. Benchmarks present in only one file are
// ignored; having no benchmark in common is an error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() { os.Exit(run()) }

func run() int {
	maxPct := flag.Float64("max-pct", 2.0, "maximum allowed regression of candidate over baseline, in percent")
	stat := flag.String("stat", "min", "sample reduction: min or median")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-max-pct p] [-stat min|median] candidate.txt baseline.txt")
		return 2
	}
	if *stat != "min" && *stat != "median" {
		fmt.Fprintf(os.Stderr, "benchguard: -stat %q: want min or median\n", *stat)
		return 2
	}

	cand, err := parseBench(flag.Arg(0))
	if err != nil {
		return fail("%v", err)
	}
	base, err := parseBench(flag.Arg(1))
	if err != nil {
		return fail("%v", err)
	}

	names := make([]string, 0, len(cand))
	for name := range cand {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fail("no benchmarks in common between %s and %s", flag.Arg(0), flag.Arg(1))
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		c := reduce(cand[name], *stat)
		b := reduce(base[name], *stat)
		pct := (c - b) / b * 100
		verdict := "ok"
		if pct > *maxPct {
			verdict = fmt.Sprintf("FAIL (> %.1f%%)", *maxPct)
			failed = true
		}
		fmt.Printf("%-40s candidate %12.0f ns/op  baseline %12.0f ns/op  %+6.2f%%  %s\n",
			name, c, b, pct, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: candidate regresses past the threshold")
		return 1
	}
	return 0
}

// parseBench extracts ns/op samples per benchmark name from `go test
// -bench` output. The CPU-count suffix (Benchmark-8) stays part of the
// name; both runs execute on the same machine, so suffixes agree.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op value in %q", path, sc.Text())
			}
			out[fields[0]] = append(out[fields[0]], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func reduce(samples []float64, stat string) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if stat == "min" {
		return sorted[0]
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	return 1
}
