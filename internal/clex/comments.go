package clex

import (
	"strings"

	"repro/internal/ctoken"
)

// MaskComments returns src with every comment replaced by a single
// space. Tokenization is the real lexer's, so comment markers inside
// string and character literals are left alone. Inputs that fail to lex
// are returned unchanged — callers use this for fingerprinting and
// diagnostic spellings, where the raw text is the correct fallback.
//
// The incremental layer leans on this in two places: dependency hashes
// (internal/analysis) mask comments so editing one never invalidates a
// function, and the oracles mask comments out of quoted source spellings
// so memoized findings stay byte-identical to a fresh run after such an
// edit.
func MaskComments(src string) string {
	toks, err := Tokenize(src)
	if err != nil {
		return src
	}
	var sb strings.Builder
	sb.Grow(len(src))
	cursor := 0
	for _, t := range toks {
		if t.Kind != ctoken.KindComment {
			continue
		}
		sb.WriteString(src[cursor:t.Extent.Pos])
		sb.WriteByte(' ')
		cursor = int(t.Extent.End)
	}
	sb.WriteString(src[cursor:])
	return sb.String()
}

// CollapseSpace collapses every whitespace run in s to a single space
// and trims the ends — the normalization dependency hashing applies so
// reformatting alone never invalidates a function's facts.
func CollapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
