/* b.c: the callee. Analyzed alone, p's target size is unknown, so no
 * verdict is possible. Seeded with a.c's call (a 10-byte stack buffer
 * and n = 100) the loop provably overflows. */
#include "fill.h"

void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
