// Package core is the composition root for the paper's primary
// contribution: the two security-oriented program transformations that fix
// C buffer overflows at source level.
//
// It drives the full pipeline — parse, type analysis, the program analyses
// of Section III-A (control flow, reaching definitions, points-to, alias
// sets, interprocedural may-modify), then SAFE LIBRARY REPLACEMENT and
// SAFE TYPE REPLACEMENT — and returns the rewritten source together with
// per-site and per-variable reports. pkg/cfix re-exports this API for
// downstream users; cmd/cfix wraps it as a command-line tool.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/ctoken"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/overflow"
	"repro/internal/slr"
	"repro/internal/str"
)

// Options selects which transformations run and how.
type Options struct {
	// SLR / STR toggle the transformations (both default true via Fix;
	// the zero value of Options means "run everything").
	DisableSLR bool
	DisableSTR bool
	// SelectOffset, when >= 0, restricts SLR to the call expression
	// covering that byte offset (the case-by-case workflow of Section
	// II-A2). Negative means batch mode.
	SelectOffset int
	// EmitSupport prepends the stralloc header/implementation and the
	// selected backend's prototypes the transformed file needs to build
	// standalone.
	EmitSupport bool
	// Backend names the safe-function dialect SLR rewrites to: "glib"
	// (the paper's default), "bsd" (strlcpy/strlcat), or "c11k" (C11
	// Annex K *_s). Empty means glib; unknown names are an error. Like
	// Checks, the value is canonicalized before entering the cache
	// fingerprint, so "" and "glib" share cache entries.
	Backend string
	// Lint runs the static overflow oracle on the input before
	// transforming and attaches its verdicts to the SLR/STR candidate
	// reports (SiteResult.Risk / VarResult.Risk), so the summary can rank
	// and justify the repairs.
	Lint bool
	// Checks selects which static-analysis oracles lint runs, as a
	// comma-separated list of check names: "buf" (the buffer-overflow
	// oracle, CWE-121/122/124/126/127/242), "int" (the integer-overflow
	// oracle, CWE-190/191/680), or "all" for both. Empty means "buf",
	// preserving the historical lint behavior; unknown names are an
	// error.
	Checks string
	// Timeout bounds the processing of one file; 0 means none. On
	// expiry the in-flight solve is interrupted at its next iteration
	// boundary and Fix returns context.DeadlineExceeded.
	Timeout time.Duration
	// Budget bounds every fixpoint solve's iterations and the number of
	// interprocedural contexts the overflow oracle explores; 0 means
	// unlimited. Exhausted budgets degrade to conservative results and
	// are recorded in Report.Degraded — the overflow oracle additionally
	// emits a SevPossible CWEIncomplete finding per affected function,
	// so a cut analysis never reads as a clean file.
	Budget int
	// KeepGoing degrades instead of failing when a later pipeline stage
	// errs or panics: if STR fails after SLR succeeded, Fix returns the
	// SLR-only report with the failure explained in Report.Degraded; if
	// SLR fails, the original text flows on to STR. Cancellation and
	// deadline expiry are never downgraded — they always abort the file
	// with the context's error.
	KeepGoing bool
	// Cache, when non-nil, short-circuits Fix and Analyze through the
	// content-addressed result cache: an identical (source, options,
	// filename) request is answered from the cache without parsing or
	// solving anything, and concurrent identical requests collapse into
	// one computation. Only full-fidelity results are stored — a report
	// with a non-empty Degraded list is recomputed every time (see
	// DESIGN.md Section 10 for the keying and invalidation rules). The
	// cache never changes a result, only how often it is computed.
	Cache *cache.Cache
	// ExternSeeds carries cross-translation-unit call seeds into the
	// overflow oracle (project mode, internal/project): calls observed in
	// OTHER translation units to functions this file defines, evaluated
	// under the callers' interval states. The oracle explores them as
	// extra interprocedural contexts, so a caller in a.c can expose an
	// overflow in b.c that single-file analysis misses. The seed list is
	// folded into the cache fingerprint (overflow.SeedFingerprint), so
	// per-file cache entries stay correct when the rest of the project
	// changes what it proves about this file.
	ExternSeeds []overflow.CallSeed
	// IncludeHash fingerprints the content of every header the
	// preprocessor inlined into the source (project mode). The source
	// string already embeds the header text, so IncludeHash is not needed
	// for correctness of the content-addressed key — it exists for the
	// project driver to key rounds and for forward compatibility with
	// callers that cache against the original (pre-expansion) text.
	IncludeHash string
	// Tracer, when non-nil, records one span per pipeline stage —
	// parse, typecheck, the derived analyses, slr, str, rewrite, and
	// cache hit/miss — for `cfix -trace` / `-stage-stats` and the
	// daemon's per-stage latency histograms (DESIGN.md Section 11).
	// Tracing never changes a result; nil disables it at the cost of a
	// nil check per stage.
	Tracer *obs.Tracer
}

// Report is the combined outcome.
type Report struct {
	// Source is the transformed text.
	Source string
	// Backend is the canonical name of the repair dialect SLR targeted
	// ("glib" when Options.Backend was empty).
	Backend string
	// SLR per-site outcomes (nil when SLR was disabled).
	SLR *slr.FileResult
	// STR per-variable outcomes (nil when STR was disabled).
	STR *str.FileResult
	// NeedsGlib / NeedsStralloc describe link-time requirements when
	// EmitSupport was false.
	NeedsGlib     bool
	NeedsStralloc bool
	// Findings holds the static overflow oracle's verdicts on the input
	// source (set when Options.Lint was true).
	Findings []overflow.Finding
	// Degraded explains every way this report is weaker than a full
	// run: pipeline stages skipped under Options.KeepGoing and analysis
	// budgets that ran out (Options.Budget). Empty for a full-fidelity
	// report.
	Degraded []string
	// Cached reports that this report was answered from the result cache
	// instead of being computed (Options.Cache). Excluded from the cached
	// payload itself: a stored report is by definition not yet a hit.
	Cached bool `json:"-"`
}

// Changed reports whether any edit was applied.
func (r *Report) Changed() bool {
	return (r.SLR != nil && r.SLR.AppliedCount() > 0) ||
		(r.STR != nil && r.STR.AppliedCount() > 0)
}

// Summary renders a human-readable change log. When the overflow oracle
// ran (Options.Lint), candidate sites are ranked by static risk and each
// flagged site is justified with its verdict.
func (r *Report) Summary() string {
	var sb strings.Builder
	risk := func(f *overflow.Finding) string {
		if f == nil {
			return ""
		}
		return fmt.Sprintf(" [CWE-%d %s: %s]", f.CWE, f.Severity, f.Msg)
	}
	if r.SLR != nil {
		fmt.Fprintf(&sb, "SLR: %d/%d call sites transformed\n",
			r.SLR.AppliedCount(), r.SLR.Candidates())
		sites := r.SLR.Sites
		if len(r.Findings) > 0 {
			sites = r.SLR.RankedSites()
		}
		for _, s := range sites {
			if s.Applied {
				safe := s.SafeName
				if safe == "" {
					// Reports decoded from a pre-backend cache entry or wire
					// payload lack the per-site name; fall back to the default
					// dialect's mapping.
					safe = slr.SafeNameFor(s.Function)
				}
				fmt.Fprintf(&sb, "  %s: %s -> %s (size: %s)%s\n",
					s.Pos, s.Function, safe, s.Size.CText(), risk(s.Risk))
			} else {
				fmt.Fprintf(&sb, "  %s: %s not transformed: %v%s\n", s.Pos, s.Function, s.Failure, risk(s.Risk))
			}
		}
	}
	if r.STR != nil {
		fmt.Fprintf(&sb, "STR: %d/%d variables replaced\n",
			r.STR.AppliedCount(), r.STR.Candidates())
		vars := r.STR.Vars
		if len(r.Findings) > 0 {
			vars = r.STR.RankedVars()
		}
		for _, v := range vars {
			if v.Applied {
				fmt.Fprintf(&sb, "  %s: %s replaced with stralloc%s\n", v.Pos, v.Name, risk(v.Risk))
			} else {
				fmt.Fprintf(&sb, "  %s: %s not replaced: %s (%s)%s\n", v.Pos, v.Name, v.Reason, v.Detail, risk(v.Risk))
			}
		}
	}
	for _, d := range r.Degraded {
		fmt.Fprintf(&sb, "degraded: %s\n", d)
	}
	return sb.String()
}

// checkSet is the parsed form of Options.Checks.
type checkSet struct {
	buf  bool // buffer-overflow oracle (internal/overflow)
	intf bool // integer-overflow oracle (internal/intflow)
}

// parseChecks validates and parses Options.Checks. Empty selects the
// buffer oracle alone (the historical lint behavior).
func parseChecks(s string) (checkSet, error) {
	if strings.TrimSpace(s) == "" {
		return checkSet{buf: true}, nil
	}
	var cs checkSet
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "buf":
			cs.buf = true
		case "int":
			cs.intf = true
		case "all":
			cs.buf, cs.intf = true, true
		case "":
		default:
			return checkSet{}, fmt.Errorf("core: unknown check %q (valid: buf, int, all)", strings.TrimSpace(name))
		}
	}
	if !cs.buf && !cs.intf {
		return checkSet{}, fmt.Errorf("core: no checks selected by %q", s)
	}
	return cs, nil
}

// canonicalChecks renders the selection in canonical form for the cache
// fingerprint, so "all", "buf,int" and "int,buf" share cache entries.
func canonicalChecks(s string) string {
	cs, err := parseChecks(s)
	if err != nil {
		// Invalid selections never reach the cache (Fix/Analyze fail
		// first); keep the raw string so the key still differs.
		return s
	}
	switch {
	case cs.buf && cs.intf:
		return "buf,int"
	case cs.intf:
		return "int"
	default:
		return "buf"
	}
}

// canonicalBackend renders Options.Backend in canonical form for the
// cache fingerprint, so "" and "glib" (and whitespace variants) share
// cache entries. Invalid names never reach the cache — Fix and Analyze
// fail first — so the raw string is kept to keep the key distinct.
func canonicalBackend(s string) string {
	name, err := backend.Canonical(s)
	if err != nil {
		return s
	}
	return name
}

// Backends lists the valid Options.Backend names in registry order.
func Backends() []string {
	return backend.Names()
}

// lintFindings runs the selected oracles over one snapshot and merges
// their findings into a single source-ordered report.
func lintFindings(snap *analysis.Snapshot, cs checkSet) []overflow.Finding {
	var fs []overflow.Finding
	if cs.buf {
		fs = append(fs, snap.Findings()...)
	}
	if cs.intf {
		fs = append(fs, snap.IntFindings()...)
	}
	if cs.buf && cs.intf {
		sortFindings(fs)
	}
	return fs
}

// LintSnapshot runs the oracles selected by checks ("buf", "int",
// "all"; empty means "buf") over an existing analysis snapshot and
// returns the merged findings in source order. It is the seam
// incremental sessions (internal/incremental) lint through: they manage
// their own parses and memoized facts, so the findings come out exactly
// as Analyze would produce them on the same text — including the
// cross-run memo's replayed results, which the equivalence suite holds
// byte-identical to a from-scratch run.
func LintSnapshot(snap *analysis.Snapshot, checks string) ([]overflow.Finding, error) {
	cs, err := parseChecks(checks)
	if err != nil {
		return nil, err
	}
	return lintFindings(snap, cs), nil
}

// sortFindings restores source order over a merged finding list.
func sortFindings(fs []overflow.Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Extent.Pos != fs[j].Extent.Pos {
			return fs[i].Extent.Pos < fs[j].Extent.Pos
		}
		return fs[i].CWE < fs[j].CWE
	})
}

// limits translates Options into solver limits for the analysis layer.
func (o Options) limits(ctx context.Context) fault.Limits {
	return fault.Limits{Ctx: ctx, Steps: o.Budget, Contexts: o.Budget}
}

// fileCtx applies the per-file timeout of opts to ctx.
func fileCtx(ctx context.Context, opts Options) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		return context.WithTimeout(ctx, opts.Timeout)
	}
	return ctx, func() {}
}

// LintReport is the full outcome of a lint-only analysis: the findings
// plus the degradations that qualify them. It is the unit the result
// cache stores for /v1/lint and `cfix -lint -cache-dir`.
type LintReport struct {
	// Findings holds the static overflow oracle's CWE-classified
	// verdicts in source order.
	Findings []overflow.Finding `json:"findings"`
	// Degraded lists the analyses that had to degrade to conservative
	// results (budget exhaustion); empty for a full-fidelity run.
	Degraded []string `json:"degraded,omitempty"`
	// Cached reports that this result came from the result cache.
	Cached bool `json:"-"`
}

// Analyze runs the static overflow oracle on one preprocessed C
// translation unit without transforming it, returning the CWE-classified
// findings in source order. Only opts.Timeout and opts.Budget are
// consulted; ctx cancellation aborts the analysis at the next solver
// iteration with the context's error. A panic anywhere in the analysis
// is contained and returned as a *fault.PanicError carrying the stack.
func Analyze(ctx context.Context, filename, source string, opts Options) ([]overflow.Finding, error) {
	rep, err := AnalyzeReport(ctx, filename, source, opts)
	if err != nil {
		return nil, err
	}
	return rep.Findings, nil
}

// AnalyzeReport is Analyze with the degradation notes that Analyze
// drops: the batch pipeline and the service stream them alongside the
// findings so a budget-cut analysis never reads as a clean file. When
// opts.Cache is set the whole report is served content-addressed.
func AnalyzeReport(ctx context.Context, filename, source string, opts Options) (*LintReport, error) {
	if opts.Cache != nil {
		rep, _, err := AnalyzeCached(ctx, filename, source, opts)
		return rep, err
	}
	return analyzeReport(ctx, filename, source, opts)
}

// analyzeReport is the uncached lint pipeline.
func analyzeReport(ctx context.Context, filename, source string, opts Options) (rep *LintReport, err error) {
	defer fault.Recover(&err)
	cs, err := parseChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	// Lint does not rewrite, but an invalid backend selection is still a
	// caller error — catch it here rather than only on the Fix path.
	if _, err := backend.Canonical(opts.Backend); err != nil {
		return nil, err
	}
	ctx, cancel := fileCtx(ctx, opts)
	defer cancel()
	sp := opts.Tracer.Start(ctx, obs.StageLint, filename)
	defer sp.End()
	conf := analysis.Config{Limits: opts.limits(ctx), Tracer: opts.Tracer}
	if len(opts.ExternSeeds) > 0 {
		oo := overflow.DefaultOptions()
		oo.ExternSeeds = opts.ExternSeeds
		conf.Overflow = &oo
	}
	snap, err := analysis.ParseCtx(ctx, filename, source, conf)
	if err != nil {
		return nil, fmt.Errorf("core: parse for lint: %w", err)
	}
	fs := lintFindings(snap, cs)
	sp.Attr("findings", fmt.Sprint(len(fs)))
	if deg := snap.Degradations(); len(deg) > 0 {
		sp.Attr("degraded", deg[0])
	}
	return &LintReport{Findings: fs, Degraded: snap.Degradations()}, nil
}

// stage runs one pipeline stage, converting a panic inside it into an
// error so the caller can decide between failing and degrading.
// Cancellation sentinels are re-panicked: a deadline must abort the
// whole file with the context's error, never degrade into a partial
// report.
func stage(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if fault.AsCancellation(r) != nil {
			panic(r)
		}
		err = fault.NewPanicError(r)
	}()
	return f()
}

// Fix applies the transformations to one preprocessed C translation unit.
//
// The input is parsed exactly once into a shared analysis-facts snapshot
// (internal/analysis); lint and SLR consume the same parse, typecheck and
// derived analyses. Only when SLR actually rewrites the text does STR
// re-parse — it must analyze the post-SLR source.
//
// Fix is the pipeline's fault boundary (DESIGN.md Section 9): a panic in
// any stage is contained and returned as a *fault.PanicError carrying
// the stack, ctx cancellation or an expired Options.Timeout aborts at
// the next solver iteration with the context's error, and under
// Options.KeepGoing a failed stage degrades the report instead of
// failing the file.
func Fix(ctx context.Context, filename, source string, opts Options) (*Report, error) {
	if opts.Cache != nil {
		rep, _, err := FixCached(ctx, filename, source, opts)
		return rep, err
	}
	return fix(ctx, filename, source, opts)
}

// fix is the uncached transformation pipeline.
func fix(ctx context.Context, filename, source string, opts Options) (rep *Report, err error) {
	defer fault.Recover(&err)
	cs, err := parseChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	be, err := backend.Get(opts.Backend)
	if err != nil {
		return nil, err
	}
	ctx, cancel := fileCtx(ctx, opts)
	defer cancel()

	// The file-level span closes by defer, so even a contained panic or
	// deadline cut leaves a closed span whose self time is the pipeline
	// overhead outside the traced stages.
	fileSpan := opts.Tracer.Start(ctx, obs.StageFix, filename)
	defer fileSpan.End()

	rep = &Report{Source: source, Backend: be.Name()}
	conf := analysis.Config{Limits: opts.limits(ctx), Tracer: opts.Tracer}
	if len(opts.ExternSeeds) > 0 {
		oo := overflow.DefaultOptions()
		oo.ExternSeeds = opts.ExternSeeds
		conf.Overflow = &oo
	}

	snap, err := analysis.ParseCtx(ctx, filename, source, conf)
	if err != nil {
		return nil, fmt.Errorf("core: parse for SLR: %w", err)
	}

	if opts.Lint {
		if lintErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageLint, filename)
			defer sp.End()
			rep.Findings = lintFindings(snap, cs)
			sp.Attr("findings", fmt.Sprint(len(rep.Findings)))
			return nil
		}); lintErr != nil {
			if !opts.KeepGoing {
				return nil, fmt.Errorf("core: lint: %w", lintErr)
			}
			rep.Degraded = append(rep.Degraded, "lint skipped: "+firstLine(lintErr))
		}
	}

	if !opts.DisableSLR {
		slrErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageSLR, filename)
			defer sp.End()
			tr := slr.NewTransformerSnapBackend(snap, be)
			var res *slr.FileResult
			var err error
			if opts.SelectOffset >= 0 {
				res, err = tr.ApplyAt(ctoken.Pos(opts.SelectOffset))
			} else {
				res, err = tr.ApplyAll()
			}
			if err != nil {
				sp.Attr("error", firstLine(err))
				return err
			}
			sp.Attr("sites", fmt.Sprint(res.Candidates())).
				Attr("applied", fmt.Sprint(res.AppliedCount()))
			rep.SLR = res
			rep.Source = res.NewSource
			rep.NeedsGlib = res.NeedsGlib
			// SLR analyzed the original text, so extents are comparable.
			res.AttachFindings(rep.Findings)
			return nil
		})
		if slrErr != nil {
			if !opts.KeepGoing {
				return nil, fmt.Errorf("core: SLR: %w", slrErr)
			}
			// Degrade: the original text flows on to STR.
			rep.SLR = nil
			rep.Source = source
			rep.Degraded = append(rep.Degraded, "SLR skipped: "+firstLine(slrErr))
		}
	}

	if !opts.DisableSTR && opts.SelectOffset < 0 {
		strErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageSTR, filename)
			defer sp.End()
			// STR reuses the snapshot when the text is unchanged; otherwise it
			// must analyze the post-SLR source, which requires a fresh parse.
			strSnap := snap
			if rep.Source != source {
				var err error
				strSnap, err = analysis.ParseCtx(ctx, filename, rep.Source, conf)
				if err != nil {
					return fmt.Errorf("parse for STR: %w", err)
				}
				sp.Attr("reparsed", "true")
			}
			res, err := str.NewTransformerSnap(strSnap).ApplyAll()
			if err != nil {
				sp.Attr("error", firstLine(err))
				return err
			}
			sp.Attr("vars", fmt.Sprint(res.Candidates())).
				Attr("applied", fmt.Sprint(res.AppliedCount()))
			rep.STR = res
			rep.Source = res.NewSource
			rep.NeedsStralloc = res.NeedsStralloc
			// STR may have analyzed post-SLR text; AttachFindings matches by
			// (function, variable) name, which survives the rewrite.
			res.AttachFindings(rep.Findings)
			rep.Degraded = append(rep.Degraded, strSnap.Degradations()...)
			return nil
		})
		if strErr != nil {
			if !opts.KeepGoing {
				return nil, fmt.Errorf("core: STR: %w", strErr)
			}
			// Degrade to the SLR-only (or untransformed) report.
			rep.STR = nil
			rep.Degraded = append(rep.Degraded, "STR skipped: "+firstLine(strErr))
		}
	}
	rep.Degraded = append(rep.Degraded, snap.Degradations()...)
	rep.Degraded = dedupStrings(rep.Degraded)
	if len(rep.Degraded) > 0 {
		fileSpan.Attr("degraded", rep.Degraded[0])
	}

	// The rewrite stage assembles the final text: support-code emission
	// and the transformed source concatenation.
	rw := opts.Tracer.Start(ctx, obs.StageRewrite, filename)
	if opts.EmitSupport {
		var support strings.Builder
		for _, u := range backend.SupportUnits(rep.NeedsStralloc, rep.NeedsGlib, be) {
			support.WriteString(u.Source)
			support.WriteString("\n")
		}
		if support.Len() > 0 {
			rep.Source = support.String() + rep.Source
		}
	}
	rw.Attr("changed", fmt.Sprint(rep.Changed())).End()
	return rep, nil
}

// firstLine truncates an error to its first line: panic errors carry a
// multi-line stack that belongs in logs, not in a one-line degradation
// note (the full text stays available to callers that keep the error).
func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " (stack elided)"
	}
	return s
}

// dedupStrings removes duplicates while preserving first-seen order
// (the STR snapshot can repeat the SLR snapshot's degradations when the
// text was unchanged and the snapshot was shared).
func dedupStrings(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
