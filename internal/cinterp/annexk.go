package cinterp

import (
	"repro/internal/cast"
)

// C11 Annex K (ISO/IEC TR 24731) bounds-checked functions, the repair
// targets of the c11k backend. Each enforces its runtime constraints
// before touching memory: on a constraint violation the destination is
// cleared (dst[0] = '\0', or zero-filled for memcpy_s) when that is
// itself safe, and a nonzero errno_t is returned — never an
// out-of-bounds write. The interpreter needs them native so the Tier-1
// checked-interpreter equivalence suite can execute c11k-repaired
// programs.

// einval is the errno_t the _s functions return on a runtime-constraint
// violation (EINVAL on glibc-compatible systems).
const einval = 22

func registerAnnexKBuiltins(m map[string]builtin) {
	m["strcpy_s"] = biStrcpyS
	m["strncpy_s"] = biStrncpyS
	m["strcat_s"] = biStrcatS
	m["memcpy_s"] = biMemcpyS
	m["sprintf_s"] = biSprintfS
	m["vsprintf_s"] = biSprintfS
	m["gets_s"] = biGetsS
}

// clearDst implements the Annex K violation handler for the string
// functions: when the destination is a valid pointer into a live object
// with room for at least one byte, store the empty string there.
func (in *Interp) clearDst(dst Pointer, destsz int64, call *cast.CallExpr) {
	if dst.IsNull() || dst.Obj.Dead || destsz <= 0 {
		return
	}
	in.writeCBytes(dst, []byte{0}, call.Extent())
}

func biStrcpyS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	destsz := argInt(args, 1)
	srcp := argPtr(args, 2)
	if dst.IsNull() || srcp.IsNull() || destsz <= 0 {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	src := in.readCString(srcp, call.Extent())
	if int64(len(src)) >= destsz {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	in.writeCBytes(dst, append([]byte(src), 0), call.Extent())
	return IntV(0), nil
}

func biStrncpyS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	destsz := argInt(args, 1)
	srcp := argPtr(args, 2)
	n := argInt(args, 3)
	if dst.IsNull() || srcp.IsNull() || destsz <= 0 || n < 0 {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	src := in.readCString(srcp, call.Extent())
	if int64(len(src)) > n {
		src = src[:n]
	}
	if int64(len(src)) >= destsz {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	in.writeCBytes(dst, append([]byte(src), 0), call.Extent())
	return IntV(0), nil
}

func biStrcatS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	destsz := argInt(args, 1)
	srcp := argPtr(args, 2)
	if dst.IsNull() || srcp.IsNull() || destsz <= 0 {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	cur := in.readCString(dst, call.Extent())
	src := in.readCString(srcp, call.Extent())
	// m = destsz - strnlen(dst, destsz): the room left including the
	// terminator. The source must fit strictly inside it.
	room := destsz - int64(len(cur))
	if room <= 0 || int64(len(src)) >= room {
		in.clearDst(dst, destsz, call)
		return IntV(einval), nil
	}
	p := dst
	p.Off += int64(len(cur))
	in.writeCBytes(p, append([]byte(src), 0), call.Extent())
	return IntV(0), nil
}

func biMemcpyS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	destsz := argInt(args, 1)
	srcp := argPtr(args, 2)
	n := argInt(args, 3)
	if dst.IsNull() || srcp.IsNull() || destsz < 0 || n < 0 || n > destsz {
		// Annex K zero-fills the destination on violation when it can.
		if !dst.IsNull() && !dst.Obj.Dead && destsz > 0 {
			in.writeCBytes(dst, make([]byte, destsz), call.Extent())
		}
		return IntV(einval), nil
	}
	// Checked read clamped to the source object, as in biMemcpy.
	var data []byte
	if !srcp.Obj.Dead && srcp.Off >= 0 {
		avail := int64(len(srcp.Obj.Data)) - srcp.Off
		take := n
		if take > avail {
			in.violate(srcp.Obj, srcp.Off+avail, false, call.Extent())
			take = avail
		}
		if take > 0 {
			data = append(data, srcp.Obj.Data[srcp.Off:srcp.Off+take]...)
		}
	} else {
		in.checkAccess(srcp, 1, false, call.Extent())
	}
	for int64(len(data)) < n {
		data = append(data, 0)
	}
	in.writeCBytes(dst, data, call.Extent())
	return IntV(0), nil
}

func biSprintfS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	destsz := argInt(args, 1)
	fmtp := argPtr(args, 2)
	if dst.IsNull() || fmtp.IsNull() || destsz <= 0 {
		in.clearDst(dst, destsz, call)
		return IntV(-1), nil
	}
	fmtStr := in.readCString(fmtp, call.Extent())
	out := in.formatC(fmtStr, args[3:], call.Extent())
	// Unlike snprintf, sprintf_s treats an output that does not fit as a
	// runtime-constraint violation: nothing is kept, and the return is
	// negative rather than the would-be length.
	if int64(len(out)) >= destsz {
		in.clearDst(dst, destsz, call)
		return IntV(-1), nil
	}
	in.writeCBytes(dst, append([]byte(out), 0), call.Extent())
	return IntV(int64(len(out))), nil
}

func biGetsS(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	n := argInt(args, 1)
	if len(in.stdin) == 0 {
		return NullV(), nil
	}
	// gets_s always consumes the line; unlike fgets it discards the
	// newline, so the repaired program sees the same string gets gave it.
	line := in.stdin[0]
	in.stdin = in.stdin[1:]
	if dst.IsNull() || n <= 0 {
		return NullV(), nil
	}
	if int64(len(line)) > n-1 {
		// Too long is a runtime-constraint violation: the handler clears
		// the destination and gets_s returns NULL.
		in.clearDst(dst, n, call)
		return NullV(), nil
	}
	in.writeCBytes(dst, append([]byte(line), 0), call.Extent())
	return args[0], nil
}
