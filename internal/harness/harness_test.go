package harness

import (
	"strings"
	"testing"
)

const twinProgram = `
void prog_good(void) {
    char buf[32];
    strcpy(buf, "short");
    printf("%s\n", buf);
}

void prog_bad(void) {
    char buf[8];
    strcpy(buf, "far too long for the buffer");
    printf("%s\n", buf);
}
`

func TestVerifyHappyPath(t *testing.T) {
	v, err := Verify("prog", twinProgram, "prog_good", "prog_bad", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.VulnDetected {
		t.Fatal("bad function must overflow pre-transform")
	}
	if !v.Fixed {
		t.Fatalf("bad function must be clean post-transform: %v", v.PostBad.Violations)
	}
	if !v.Preserved {
		t.Fatalf("good output must be preserved: pre=%q post=%q",
			v.PreGood.Stdout, v.PostGood.Stdout)
	}
	if v.SLRSites != 2 || v.SLRApplied != 2 {
		t.Fatalf("SLR counts: %d/%d", v.SLRApplied, v.SLRSites)
	}
}

func TestVerifySkipSLR(t *testing.T) {
	v, err := Verify("prog", twinProgram, "prog_good", "prog_bad", Options{SkipSLR: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.SLRSites != 0 {
		t.Fatal("SLR must not run when skipped")
	}
	// STR alone also fixes this (strcpy maps to stralloc_copybuf).
	if !v.Fixed {
		t.Fatalf("STR should fix the strcpy overflow: %v", v.PostBad.Violations)
	}
}

func TestVerifySkipBoth(t *testing.T) {
	v, err := Verify("prog", twinProgram, "prog_good", "prog_bad",
		Options{SkipSLR: true, SkipSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Fixed {
		t.Fatal("with no transformations the bad function must still overflow")
	}
	if v.TransformedSource != twinProgram {
		t.Fatal("source must be untouched")
	}
}

func TestTransformOnly(t *testing.T) {
	out, err := Transform("prog", twinProgram, Options{SkipSTR: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "g_strlcpy") {
		t.Fatalf("SLR output missing:\n%s", out)
	}
}

func TestVerifyStdinReplayed(t *testing.T) {
	src := `
void g_good(void) {
    char buf[64];
    fgets(buf, sizeof(buf), stdin);
    printf("%s", buf);
}
void g_bad(void) {
    char buf[8];
    gets(buf);
    printf("%s\n", buf);
}
`
	v, err := Verify("g", src, "g_good", "g_bad",
		Options{Stdin: []string{"hello input", "a very long attacking line"}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.VulnDetected || !v.Fixed || !v.Preserved {
		t.Fatalf("verdict: %+v (postBad=%v)", v, v.PostBad.Violations)
	}
	if !strings.Contains(v.PreGood.Stdout, "hello input") {
		t.Fatalf("stdin not consumed: %q", v.PreGood.Stdout)
	}
}

func TestVerifyParseErrorSurfaces(t *testing.T) {
	_, err := Verify("bad", "int main( {", "a", "b", Options{})
	if err == nil {
		t.Fatal("parse errors must surface")
	}
}

func TestVerifyMissingEntry(t *testing.T) {
	_, err := Verify("prog", twinProgram, "no_such_fn", "prog_bad", Options{})
	if err == nil {
		t.Fatal("missing entry must surface")
	}
}
