package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown, maxCooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown, maxCooldown)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

// TestBreakerOpensAtThreshold: consecutive failures open the circuit;
// a success along the way resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, 30*time.Second)
	b.Failure()
	b.Failure()
	b.Success() // resets
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("2 consecutive failures out of 3 must not open the breaker")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("3rd consecutive failure must open the breaker")
	}
	if b.State() != "open" {
		t.Fatalf("want open, got %s", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("want 1 open transition, got %d", b.Opens())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes, its failure reopens with doubled
// cooldown capped at the max.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second, 3*time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown expired: one probe must be admitted")
	}
	if b.Allow() {
		t.Fatal("only one half-open probe may be in flight")
	}
	b.Failure() // probe failed: reopen, cooldown doubles to 2s
	clock.advance(time.Second)
	if b.Allow() {
		t.Fatal("doubled cooldown must not admit after 1s")
	}
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("doubled cooldown expired: probe must be admitted")
	}
	b.Failure() // doubles to 4s, capped at 3s
	clock.advance(3 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown is capped at maxCooldown")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("probe success must close the circuit, got %s", b.State())
	}
	// The ladder reset: one failure (threshold 1) reopens with the base
	// cooldown again.
	b.Failure()
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown ladder should have reset after success")
	}
}

// TestBreakerReset force-closes.
func TestBreakerReset(t *testing.T) {
	b, _ := newTestBreaker(1, time.Hour, time.Hour)
	b.Failure()
	if b.Allow() {
		t.Fatal("should be open")
	}
	b.Reset()
	if !b.Allow() {
		t.Fatal("Reset must close the circuit")
	}
}
