// Session endpoints: a cfixd client can hold an incremental analysis
// session open across edits instead of re-sending whole files to
// /v1/lint. The daemon keeps one incremental.Session per id; an edit
// request re-derives facts for only the functions it touched and
// answers with diagnostics and repair sites byte-identical to a fresh
// /v1/lint + discovery on the same text.
//
//	POST /v1/session/open   cfix.SessionOpenRequest  -> cfix.SessionResponse
//	POST /v1/session/edit   cfix.SessionEditRequest  -> cfix.SessionResponse
//	POST /v1/session/close  cfix.SessionCloseRequest -> cfix.SessionCloseResponse
//
// Sessions hold retained parses and memo tables, so the table is
// bounded: opens beyond MaxSessions answer 429 until a session closes.
// An edit that fails (overlapping script, parse-breaking change)
// leaves the session on its previous text and facts; the client can
// correct and continue.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/pkg/cfix"
)

// sessionEntry pairs a live session with its span-observation cursor:
// the session's tracer accumulates spans for its whole lifetime, so
// each request folds only the spans recorded since the previous one
// into the stage metrics.
type sessionEntry struct {
	session *incremental.Session
	tracer  *obs.Tracer

	mu        sync.Mutex
	spansSeen int
}

// drainSpans returns the spans recorded since the last drain.
func (e *sessionEntry) drainSpans() []obs.Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	spans := e.tracer.Spans()
	out := spans[e.spansSeen:]
	e.spansSeen = len(spans)
	return out
}

// sessionRegistry is the daemon's open-session table.
type sessionRegistry struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
	max     int
}

func newSessionRegistry(max int) *sessionRegistry {
	return &sessionRegistry{entries: make(map[string]*sessionEntry), max: max}
}

// add claims a slot and registers the entry under a fresh id; ok is
// false when the table is full.
func (r *sessionRegistry) add(e *sessionEntry) (id string, ok bool) {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is not a reason to refuse service; fall back
		// to a counter-flavored id derived from the table size.
		copy(buf[:], fmt.Sprintf("%08d", len(r.entries)))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) >= r.max {
		return "", false
	}
	id = "sess-" + hex.EncodeToString(buf[:])
	for r.entries[id] != nil {
		id += "x"
	}
	r.entries[id] = e
	return id, true
}

// get looks up an open session.
func (r *sessionRegistry) get(id string) *sessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[id]
}

// remove closes a session; it reports whether the id was open.
func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[id] == nil {
		return false
	}
	delete(r.entries, id)
	return true
}

// count returns the number of open sessions.
func (r *sessionRegistry) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.entries))
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.m.sessionOpens.Add(1)

	// Cheap pre-check so a full table refuses before parsing anything;
	// add re-checks under the lock after the analysis.
	if s.sessions.count() >= int64(s.sessions.max) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session table full: %d sessions open", s.sessions.max))
		return
	}

	var req cfix.SessionOpenRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	filename := requestFilename(req.Filename)
	be, ok := s.resolveBackend(w, req.Options.Backend)
	if !ok {
		return
	}

	entry := &sessionEntry{tracer: obs.NewTracer()}
	sess, res, err := incremental.Open(r.Context(), filename, req.Source, incremental.Config{
		Checks:  req.Options.Checks,
		Backend: be,
		Tracer:  entry.tracer,
	})
	if err != nil {
		s.failRequest(w, filename, err)
		return
	}
	entry.session = sess
	s.observeSessionSpans(entry)

	id, ok := s.sessions.add(entry)
	if !ok {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session table full: %d sessions open", s.sessions.max))
		return
	}
	s.writeJSON(w, http.StatusOK, sessionResponse(id, filename, res))
}

func (s *Server) handleSessionEdit(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	var req cfix.SessionEditRequest
	if !s.decode(w, r, &req) {
		return
	}
	entry := s.sessions.get(req.SessionID)
	if entry == nil {
		s.writeError(w, http.StatusNotFound, "unknown session "+req.SessionID)
		return
	}
	res, err := entry.session.Edit(r.Context(), cfix.ToDeltas(req.Deltas))
	s.observeSessionSpans(entry)
	if err != nil {
		s.failRequest(w, entry.session.Name(), err)
		return
	}
	s.m.sessionEdits.Add(1)
	s.m.sessionFuncsReanalyzed.Add(int64(res.FuncsReanalyzed))
	s.m.sessionFuncsReused.Add(int64(res.FuncsReused))
	s.writeJSON(w, http.StatusOK, sessionResponse(req.SessionID, entry.session.Name(), res))
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req cfix.SessionCloseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.sessions.remove(req.SessionID) {
		s.writeError(w, http.StatusNotFound, "unknown session "+req.SessionID)
		return
	}
	s.writeJSON(w, http.StatusOK, cfix.SessionCloseResponse{SessionID: req.SessionID, Closed: true})
}

// observeSessionSpans folds the spans a session operation recorded into
// the per-stage metrics, so incremental re-analyses show up under
// "incremental" next to the batch pipeline's stages.
func (s *Server) observeSessionSpans(entry *sessionEntry) {
	for _, sp := range entry.drainSpans() {
		s.m.observeStage(sp.Name, sp.Dur, sp.Degraded())
	}
}

// sessionResponse renders one open/edit outcome in the wire shape.
func sessionResponse(id, filename string, res *incremental.Result) cfix.SessionResponse {
	resp := cfix.SessionResponse{
		SessionID:       id,
		Filename:        filename,
		Findings:        []cfix.SessionFindingJSON{},
		Sites:           []cfix.SessionSiteJSON{},
		FuncsReanalyzed: res.FuncsReanalyzed,
		FuncsReused:     res.FuncsReused,
	}
	if fs := cfix.NewSessionFindingsJSON(res.Findings); len(fs) > 0 {
		resp.Findings = fs
	}
	if sites := cfix.NewSessionSitesJSON(res.Sites); len(sites) > 0 {
		resp.Sites = sites
	}
	return resp
}
