package cparse

import (
	"repro/internal/cast"
	"repro/internal/ctype"
)

// declareBuiltins pre-declares the C library functions and objects that the
// paper's corpora use, so that identifier uses bind to typed symbols without
// requiring header files (the corpora are preprocessed translation units).
func declareBuiltins(p *Parser) {
	charPtr := ctype.PointerTo(ctype.CharType)
	constCharPtr := charPtr // qualifiers are not modeled
	voidPtr := ctype.PointerTo(ctype.VoidType)
	sizeT := ctype.SizeTType
	intT := ctype.IntType

	// FILE is opaque.
	fileRec := &ctype.Record{Tag: "_IO_FILE", Complete: true}
	fileT := &ctype.Named{Name: "FILE", Underlying: fileRec}
	filePtr := ctype.PointerTo(fileT)
	p.declare(&cast.Symbol{Name: "FILE", Kind: cast.SymTypedef, Type: fileT})
	p.declare(&cast.Symbol{Name: "size_t", Kind: cast.SymTypedef, Type: &ctype.Named{Name: "size_t", Underlying: sizeT}})
	p.declare(&cast.Symbol{Name: "ssize_t", Kind: cast.SymTypedef, Type: &ctype.Named{Name: "ssize_t", Underlying: ctype.LongType}})
	p.declare(&cast.Symbol{Name: "va_list", Kind: cast.SymTypedef, Type: &ctype.Named{Name: "va_list", Underlying: voidPtr}})
	p.declare(&cast.Symbol{Name: "errno_t", Kind: cast.SymTypedef, Type: &ctype.Named{Name: "errno_t", Underlying: intT}})

	obj := func(name string, t ctype.Type) {
		p.declare(&cast.Symbol{Name: name, Kind: cast.SymVar, Type: t, IsGlobal: true})
	}
	obj("stdin", filePtr)
	obj("stdout", filePtr)
	obj("stderr", filePtr)
	obj("errno", intT)
	obj("NULL", voidPtr)

	fn := func(name string, result ctype.Type, variadic bool, params ...ctype.Type) {
		p.declare(&cast.Symbol{
			Name:     name,
			Kind:     cast.SymFunc,
			Type:     &ctype.Func{Result: result, Params: params, Variadic: variadic},
			IsGlobal: true,
		})
	}

	// String and memory functions (the unsafe set targeted by SLR first).
	fn("strcpy", charPtr, false, charPtr, constCharPtr)
	fn("strncpy", charPtr, false, charPtr, constCharPtr, sizeT)
	fn("strcat", charPtr, false, charPtr, constCharPtr)
	fn("strncat", charPtr, false, charPtr, constCharPtr, sizeT)
	fn("sprintf", intT, true, charPtr, constCharPtr)
	fn("snprintf", intT, true, charPtr, sizeT, constCharPtr)
	fn("vsprintf", intT, false, charPtr, constCharPtr, voidPtr)
	fn("vsnprintf", intT, false, charPtr, sizeT, constCharPtr, voidPtr)
	fn("memcpy", voidPtr, false, voidPtr, voidPtr, sizeT)
	fn("memmove", voidPtr, false, voidPtr, voidPtr, sizeT)
	fn("memset", voidPtr, false, voidPtr, intT, sizeT)
	fn("memcmp", intT, false, voidPtr, voidPtr, sizeT)
	fn("gets", charPtr, false, charPtr)
	fn("fgets", charPtr, false, charPtr, intT, filePtr)
	fn("getenv", charPtr, false, constCharPtr)
	fn("strlen", sizeT, false, constCharPtr)
	fn("strcmp", intT, false, constCharPtr, constCharPtr)
	fn("strncmp", intT, false, constCharPtr, constCharPtr, sizeT)
	fn("strchr", charPtr, false, constCharPtr, intT)
	fn("strrchr", charPtr, false, constCharPtr, intT)
	fn("strstr", charPtr, false, constCharPtr, constCharPtr)
	fn("strdup", charPtr, false, constCharPtr)

	// Allocation.
	fn("malloc", voidPtr, false, sizeT)
	fn("calloc", voidPtr, false, sizeT, sizeT)
	fn("realloc", voidPtr, false, voidPtr, sizeT)
	fn("free", ctype.VoidType, false, voidPtr)
	fn("alloca", voidPtr, false, sizeT)
	fn("malloc_usable_size", sizeT, false, voidPtr)

	// I/O.
	fn("printf", intT, true, constCharPtr)
	fn("fprintf", intT, true, filePtr, constCharPtr)
	fn("puts", intT, false, constCharPtr)
	fn("putchar", intT, false, intT)
	fn("fopen", filePtr, false, constCharPtr, constCharPtr)
	fn("fclose", intT, false, filePtr)
	fn("fread", sizeT, false, voidPtr, sizeT, sizeT, filePtr)
	fn("fwrite", sizeT, false, voidPtr, sizeT, sizeT, filePtr)
	fn("scanf", intT, true, constCharPtr)

	// Process / misc.
	fn("exit", ctype.VoidType, false, intT)
	fn("abort", ctype.VoidType, false)
	fn("atoi", intT, false, constCharPtr)
	fn("atol", ctype.LongType, false, constCharPtr)
	fn("rand", intT, false)
	fn("srand", ctype.VoidType, false, ctype.UIntType)

	// Safe alternatives introduced by SLR (glib-style and C11 Annex K).
	fn("g_strlcpy", sizeT, false, charPtr, constCharPtr, sizeT)
	fn("g_strlcat", sizeT, false, charPtr, constCharPtr, sizeT)
	fn("g_snprintf", intT, true, charPtr, sizeT, constCharPtr)
	fn("g_vsnprintf", intT, false, charPtr, sizeT, constCharPtr, voidPtr)
	fn("strlcpy", sizeT, false, charPtr, constCharPtr, sizeT)
	fn("strlcat", sizeT, false, charPtr, constCharPtr, sizeT)
	fn("strcpy_s", intT, false, charPtr, sizeT, constCharPtr)
	fn("memcpy_s", intT, false, voidPtr, sizeT, voidPtr, sizeT)
	fn("gets_s", charPtr, false, charPtr, sizeT)
	fn("getenv_s", intT, false, ctype.PointerTo(sizeT), charPtr, sizeT, constCharPtr)
}
