// Package rewrite applies textual edits to C source by byte extent.
//
// Transformations collect edits against the original text's coordinates;
// Apply sorts them, verifies they do not overlap, and splices the output.
// Because edits are expressed in original coordinates, a transformation
// never needs to track offset drift — the property that lets SLR and STR
// produce minimal diffs on large files (the paper's requirement that
// program analyses "keep track of source code").
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ctoken"
)

// Edit replaces the bytes of Extent with Text. A zero-length extent is an
// insertion at Extent.Pos.
type Edit struct {
	Extent ctoken.Extent
	Text   string
	// Note describes the edit for change logs.
	Note string
}

// Set accumulates edits for one file.
type Set struct {
	edits []Edit
}

// Replace queues a replacement of the extent's text.
func (s *Set) Replace(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{Extent: e, Text: text, Note: note})
}

// InsertBefore queues an insertion at the start of the extent.
func (s *Set) InsertBefore(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{
		Extent: ctoken.Extent{Pos: e.Pos, End: e.Pos},
		Text:   text,
		Note:   note,
	})
}

// InsertAfter queues an insertion just past the end of the extent.
func (s *Set) InsertAfter(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{
		Extent: ctoken.Extent{Pos: e.End, End: e.End},
		Text:   text,
		Note:   note,
	})
}

// Len returns the number of queued edits.
func (s *Set) Len() int { return len(s.edits) }

// Edits returns the queued edits (sorted by position) for reporting.
func (s *Set) Edits() []Edit {
	out := make([]Edit, len(s.edits))
	copy(out, s.edits)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Extent.Pos != out[j].Extent.Pos {
			return out[i].Extent.Pos < out[j].Extent.Pos
		}
		return out[i].Extent.End < out[j].Extent.End
	})
	return out
}

// Apply splices the edits into src. Overlapping replacement edits are an
// error; multiple insertions at the same position apply in queue order.
func (s *Set) Apply(src string) (string, error) {
	edits := make([]Edit, len(s.edits))
	copy(edits, s.edits)
	// Stable sort keeps queue order for same-position insertions.
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Extent.Pos != edits[j].Extent.Pos {
			return edits[i].Extent.Pos < edits[j].Extent.Pos
		}
		return edits[i].Extent.End < edits[j].Extent.End
	})
	var sb strings.Builder
	sb.Grow(len(src) + 256)
	cursor := 0
	for i, e := range edits {
		if !e.Extent.IsValid() || int(e.Extent.End) > len(src) {
			return "", fmt.Errorf("edit %d has invalid extent [%d,%d) for source of %d bytes",
				i, e.Extent.Pos, e.Extent.End, len(src))
		}
		if int(e.Extent.Pos) < cursor {
			// Same-position pure insertions are fine; anything else
			// overlaps.
			if e.Extent.Len() == 0 && int(e.Extent.Pos) == cursor {
				sb.WriteString(e.Text)
				continue
			}
			return "", fmt.Errorf("edit %d (%s) overlaps a previous edit at offset %d",
				i, e.Note, e.Extent.Pos)
		}
		sb.WriteString(src[cursor:e.Extent.Pos])
		sb.WriteString(e.Text)
		cursor = int(e.Extent.End)
	}
	sb.WriteString(src[cursor:])
	return sb.String(), nil
}
