//go:build !cfix_notrace

package obs

import (
	"context"
	"time"
)

// Start opens a span against the tracer. A nil tracer returns a nil
// span on which Attr and End no-op — the disabled path is a single nil
// check. ctx supplies the worker lane (see WithLane); a nil context is
// lane 0.
//
// Under the cfix_notrace build tag this function is replaced by one
// that always returns nil, compiling tracing out entirely; the CI
// overhead gate holds the default build's nil-tracer path to within 2%
// of that build.
func (t *Tracer) Start(ctx context.Context, name, file string) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &ActiveSpan{
		t:       t,
		started: now,
		span: Span{
			Name:  name,
			File:  file,
			Lane:  LaneFrom(ctx),
			Start: now.Sub(t.epoch),
		},
	}
}

// RecordSince records a completed span retroactively, covering the
// window from started to now — used where the span's name is only known
// at the end of the measured work (a cache lookup is a cache_hit or a
// cache_miss only once it resolves). Nil-safe.
func (t *Tracer) RecordSince(ctx context.Context, name, file string, started time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(Span{
		Name:  name,
		File:  file,
		Lane:  LaneFrom(ctx),
		Start: started.Sub(t.epoch),
		Dur:   time.Since(started),
		Attrs: attrs,
	})
}

// Enabled reports whether this build records spans at all (false under
// the cfix_notrace tag) — the trace CLI flags use it to warn instead of
// silently writing an empty trace.
func Enabled() bool { return true }
