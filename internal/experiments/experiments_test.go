package experiments

import (
	"strings"
	"testing"
)

func TestTableIIISampled(t *testing.T) {
	// Stride 25 keeps the test fast (~180 programs) while touching every
	// CWE and sink; the full run is exercised by cmd/experiments and the
	// benchmarks.
	rows, err := RunTableIII(TableIIIOptions{Stride: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: got %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Errors > 0 {
			t.Errorf("CWE-%d: %d processing errors", r.CWE, r.Errors)
		}
		if r.Programs == 0 {
			t.Errorf("CWE-%d: no programs processed", r.CWE)
			continue
		}
		if r.VulnDetected != r.Programs {
			t.Errorf("CWE-%d: vulnerabilities detected in %d/%d programs",
				r.CWE, r.VulnDetected, r.Programs)
		}
		if r.Fixed != r.Programs {
			t.Errorf("CWE-%d: fixed %d/%d", r.CWE, r.Fixed, r.Programs)
		}
		if r.Preserved != r.Programs {
			t.Errorf("CWE-%d: preserved %d/%d", r.CWE, r.Preserved, r.Programs)
		}
	}
	out := FormatTableIII(rows)
	if !strings.Contains(out, "CWE 121") || !strings.Contains(out, "Total") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}

func TestTableIV(t *testing.T) {
	rows := RunTableIV(0)
	if len(rows) != 4 {
		t.Fatalf("rows: got %d", len(rows))
	}
	files := 0
	for _, r := range rows {
		files += r.CFiles
	}
	if files != 645 {
		t.Fatalf("total files: got %d, want 645 (Table IV)", files)
	}
	out := FormatTableIV(rows)
	if !strings.Contains(out, "zlib") || !strings.Contains(out, "645") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTableVAndFigure2(t *testing.T) {
	res, err := RunTableV()
	if err != nil {
		t.Fatal(err)
	}
	var u, tr int
	for _, r := range res.Rows {
		u += r.Unsafe
		tr += r.Transformed
	}
	if u != 317 || tr != 259 {
		t.Fatalf("totals: %d/%d, want 317/259", tr, u)
	}
	wantFn := map[string][2]int{
		"strcpy": {28, 39}, "strcat": {8, 8}, "sprintf": {150, 153},
		"vsprintf": {1, 2}, "memcpy": {72, 115},
	}
	for _, f := range res.PerFunc {
		w, ok := wantFn[f.Function]
		if !ok {
			t.Errorf("unexpected function %s in Figure 2", f.Function)
			continue
		}
		if f.Transformed != w[0] || f.Total != w[1] {
			t.Errorf("%s: got %d/%d, want %d/%d", f.Function, f.Transformed, f.Total, w[0], w[1])
		}
	}
	if got := FormatTableV(res); !strings.Contains(got, "81.7") && !strings.Contains(got, "81.70") {
		t.Fatalf("Table V should show 81.7%% overall:\n%s", got)
	}
	if got := FormatFigure2(res); !strings.Contains(got, "strcpy") {
		t.Fatalf("Figure 2 format:\n%s", got)
	}
	if got := FormatFailureTaxonomy(res); !strings.Contains(got, "58") {
		t.Fatalf("taxonomy should total 58:\n%s", got)
	}
}

func TestTableVI(t *testing.T) {
	rows, err := RunTableVI()
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2, c3 int
	for _, r := range rows {
		c1 += r.Identified
		c2 += r.Replaced
		c3 += r.FailedPre
	}
	if c1 != 296 || c2 != 237 || c3 != 59 {
		t.Fatalf("totals: identified=%d replaced=%d failed=%d, want 296/237/59", c1, c2, c3)
	}
	if got := FormatTableVI(rows); !strings.Contains(got, "100.00%") {
		t.Fatalf("Table VI should show 100%% of precondition-passing replaced:\n%s", got)
	}
}

func TestRQ3(t *testing.T) {
	rows, err := RunRQ3(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: got %d, want 6 (2 workloads x 3 variants)", len(rows))
	}
	for _, r := range rows {
		if r.Steps == 0 {
			t.Errorf("%s/%s: zero steps", r.Workload, r.Variant)
		}
	}
	// Overhead should stay bounded ("minimal" in the paper; the STR data
	// structure adds bookkeeping, so allow a generous envelope while
	// still asserting it is not catastrophic).
	for _, r := range rows {
		if r.Variant == "SLR" && r.OverheadPct > 25 {
			t.Errorf("%s/SLR overhead too high: %.1f%%", r.Workload, r.OverheadPct)
		}
		if r.Variant == "SLR+STR" && r.OverheadPct > 400 {
			t.Errorf("%s/SLR+STR overhead out of envelope: %.1f%%", r.Workload, r.OverheadPct)
		}
	}
	if got := FormatRQ3(rows); !strings.Contains(got, "Overhead") {
		t.Fatalf("format:\n%s", got)
	}
}

func TestCVE(t *testing.T) {
	r, err := RunCVE()
	if err != nil {
		t.Fatal(err)
	}
	if !r.VulnDetected || !r.CWE121 || !r.Fixed || !r.Preserved {
		t.Fatalf("case study failed: %+v", r)
	}
	if r.BenignOutput != "(Title 07)" {
		t.Fatalf("benign output: %q", r.BenignOutput)
	}
	if got := FormatCVE(r); !strings.Contains(got, "g_snprintf") {
		t.Fatalf("format:\n%s", got)
	}
}

func TestCatalogFormats(t *testing.T) {
	t1 := FormatTableI()
	for _, want := range []string{"strcpy", "g_strlcpy", "gets_s", "memcpy_s"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %s", want)
		}
	}
	t2 := FormatTableII()
	for _, want := range []string{"stralloc_increment_by", "Declaration", "buf->a < 3"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestAliasPrecisionAblation(t *testing.T) {
	r, err := RunAliasPrecisionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if r.AggregateTransformed != 259 || r.AggregateAliasFails != 1 {
		t.Fatalf("aggregate mode: %d transformed, %d alias failures (want 259, 1)",
			r.AggregateTransformed, r.AggregateAliasFails)
	}
	// Field sensitivity recovers exactly the one aliased-struct site.
	if r.FieldSensTransformed != 260 || r.FieldSensAliasFails != 0 {
		t.Fatalf("field-sensitive mode: %d transformed, %d alias failures (want 260, 0)",
			r.FieldSensTransformed, r.FieldSensAliasFails)
	}
	if out := FormatAliasPrecision(r); !strings.Contains(out, "field-sensitive") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestLintSampled(t *testing.T) {
	// Stride 25 keeps the test fast while touching every CWE and sink;
	// the full run is exercised by cmd/experiments -lint.
	rows, err := RunLint(LintOptions{Stride: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: got %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Errors > 0 {
			t.Errorf("CWE-%d: %d processing errors", r.CWE, r.Errors)
		}
		if r.Programs == 0 {
			t.Errorf("CWE-%d: no programs processed", r.CWE)
			continue
		}
		// The acceptance bar: the static oracle misses no seeded overflow,
		// and classifies every one with the program's exact CWE.
		if r.FN != 0 {
			t.Errorf("CWE-%d: %d bad() functions missed", r.CWE, r.FN)
		}
		if r.CWEMatch != r.TP {
			t.Errorf("CWE-%d: only %d/%d flagged programs carry the exact CWE",
				r.CWE, r.CWEMatch, r.TP)
		}
		// Cross-validation: the interpreter confirms every seeded overflow,
		// so the static and dynamic oracles must agree on all of them.
		if r.Agree != r.DynBad {
			t.Errorf("CWE-%d: static oracle agrees on %d/%d interpreter-confirmed overflows",
				r.CWE, r.Agree, r.DynBad)
		}
	}
	out := FormatLint(rows)
	if !strings.Contains(out, "CWE 121") || !strings.Contains(out, "Total") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}

func TestTableIIICacheWarm(t *testing.T) {
	rows, err := RunTableIII(TableIIIOptions{Stride: 100, CacheWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ColdFix <= 0 {
			t.Errorf("CWE-%d: cold pass recorded no wall time", r.CWE)
		}
		// Every program that processed cleanly must be answered by the
		// warm pass from the cache.
		if want := r.Programs - r.Errors; r.WarmHits != want {
			t.Errorf("CWE-%d: warm hits %d, want %d", r.CWE, r.WarmHits, want)
		}
	}
	text := FormatTableIII(rows)
	if !strings.Contains(text, "Result-cache timing") {
		t.Fatalf("cache-warm section missing:\n%s", text)
	}

	// Without the flag the section stays out of the layout.
	plain, err := RunTableIII(TableIIIOptions{Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	if text := FormatTableIII(plain); strings.Contains(text, "Result-cache timing") {
		t.Fatalf("cache-warm section leaked into a plain run:\n%s", text)
	}
}
