package callgraph

import (
	"testing"

	"repro/internal/cparse"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(tu)
}

const sample = `
void leaf(void) {}
void middle(void) { leaf(); leaf(); }
void top(void) {
    middle();
    strlen("x");
}
int main(void) { top(); return 0; }
`

func TestEdges(t *testing.T) {
	g := build(t, sample)
	if len(g.Edges()) != 5 {
		t.Fatalf("edges: got %d, want 5", len(g.Edges()))
	}
}

func TestCallsFrom(t *testing.T) {
	g := build(t, sample)
	from := g.CallsFrom("middle")
	if len(from) != 2 {
		t.Fatalf("calls from middle: %d", len(from))
	}
	for _, e := range from {
		if e.CalleeName != "leaf" {
			t.Fatalf("callee: %s", e.CalleeName)
		}
		if e.Callee == nil {
			t.Fatal("leaf is defined; Callee must be resolved")
		}
	}
}

func TestCallsToAndExternal(t *testing.T) {
	g := build(t, sample)
	if got := len(g.CallsTo("leaf")); got != 2 {
		t.Fatalf("calls to leaf: %d", got)
	}
	ext := g.CallsFrom("top")
	foundExternal := false
	for _, e := range ext {
		if e.CalleeName == "strlen" && e.Callee == nil {
			foundExternal = true
		}
	}
	if !foundExternal {
		t.Fatal("strlen must appear as an unresolved external callee")
	}
}

func TestCallees(t *testing.T) {
	g := build(t, sample)
	got := g.Callees("top")
	if len(got) != 2 || got[0] != "middle" || got[1] != "strlen" {
		t.Fatalf("callees: %v", got)
	}
}

func TestTransitiveCallees(t *testing.T) {
	g := build(t, sample)
	got := g.TransitiveCallees("main")
	want := map[string]bool{"top": true, "middle": true, "leaf": true, "strlen": true}
	if len(got) != len(want) {
		t.Fatalf("transitive: %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected callee %s", n)
		}
	}
}

func TestRecursionTerminates(t *testing.T) {
	g := build(t, `
void a(void);
void b(void) { a(); }
void a(void) { b(); }
`)
	got := g.TransitiveCallees("a")
	if len(got) != 2 {
		t.Fatalf("recursive transitive set: %v", got)
	}
}

func TestFunctionPointerCallUnresolved(t *testing.T) {
	// A call through a function-pointer variable keeps the variable's
	// spelling but resolves to no definition; a call through a computed
	// expression has no name at all.
	g := build(t, `
void f(void (*cb)(void)) {
    cb();
}
void g(void (**tab)(void)) {
    (*tab)();
}
`)
	edges := g.CallsFrom("f")
	if len(edges) != 1 || edges[0].CalleeName != "cb" || edges[0].Callee != nil {
		t.Fatalf("pointer-variable call: %+v", edges)
	}
	edges = g.CallsFrom("g")
	if len(edges) != 1 || edges[0].CalleeName != "" || edges[0].Callee != nil {
		t.Fatalf("computed call should have empty callee name: %+v", edges)
	}
}
