// Command tracecheck validates a Chrome trace-event JSON file produced
// by `cfix -trace` (or any tool emitting the "X" complete-event form).
// CI's trace-smoke job runs it over a fresh trace so a regression in the
// exporter fails the build instead of silently producing a file
// chrome://tracing refuses to load.
//
// Usage:
//
//	tracecheck [-min-stages n] [-min-events n] trace.json
//
// Checks, in order:
//
//   - the file is valid JSON in the object-container form with a
//     non-empty traceEvents array;
//   - every event is a complete event (ph "X") with a name, a
//     non-negative timestamp, and a positive duration;
//   - within each lane (pid, tid) the events form a properly nested
//     (laminar) family — the invariant the stage-stats self-time
//     computation depends on;
//   - the number of distinct event names is at least -min-stages and the
//     event count at least -min-events.
//
// On success it prints a one-line summary and exits 0; any violation is
// reported to stderr and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type trace struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() { os.Exit(run()) }

func run() int {
	minStages := flag.Int("min-stages", 1, "minimum number of distinct stage names")
	minEvents := flag.Int("min-events", 1, "minimum number of events")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-stages n] [-min-events n] trace.json")
		return 2
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		return fail("%v", err)
	}
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fail("%s: not valid trace JSON: %v", path, err)
	}
	if len(tr.TraceEvents) < *minEvents {
		return fail("%s: %d events, want >= %d", path, len(tr.TraceEvents), *minEvents)
	}

	names := map[string]bool{}
	lanes := map[[2]int][]event{}
	for i, ev := range tr.TraceEvents {
		switch {
		case ev.Name == "":
			return fail("%s: event %d has no name", path, i)
		case ev.Ph != "X":
			return fail("%s: event %d (%s) has ph %q, want complete event \"X\"", path, i, ev.Name, ev.Ph)
		case ev.Ts < 0:
			return fail("%s: event %d (%s) has negative timestamp %v", path, i, ev.Name, ev.Ts)
		case ev.Dur <= 0:
			return fail("%s: event %d (%s) has non-positive duration %v", path, i, ev.Name, ev.Dur)
		}
		names[ev.Name] = true
		key := [2]int{ev.Pid, ev.Tid}
		lanes[key] = append(lanes[key], ev)
	}

	for key, evs := range lanes {
		if err := checkLaminar(evs); err != nil {
			return fail("%s: lane pid=%d tid=%d: %v", path, key[0], key[1], err)
		}
	}

	if len(names) < *minStages {
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		return fail("%s: %d distinct stages, want >= %d: %v", path, len(names), *minStages, sorted)
	}

	fmt.Printf("trace OK: %d events, %d stages, %d lanes\n",
		len(tr.TraceEvents), len(names), len(lanes))
	return 0
}

// checkLaminar verifies the events of one lane are properly nested: any
// two either nest or are disjoint. Timestamps are whole microseconds
// (truncated) and sub-microsecond durations are floored to 0.5µs by the
// exporter, so boundary comparisons carry a 1µs tolerance.
func checkLaminar(evs []event) error {
	const eps = 1.0
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		return evs[i].Dur > evs[j].Dur // parents before their children
	})
	var stack []event
	for _, ev := range evs {
		for len(stack) > 0 && ev.Ts >= stack[len(stack)-1].Ts+stack[len(stack)-1].Dur-eps {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.Ts+ev.Dur > top.Ts+top.Dur+eps {
				return fmt.Errorf("%q [%v, %v] partially overlaps enclosing %q [%v, %v]",
					ev.Name, ev.Ts, ev.Ts+ev.Dur, top.Name, top.Ts, top.Ts+top.Dur)
			}
		}
		stack = append(stack, ev)
	}
	return nil
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	return 1
}
