// Package analysis provides the shared analysis-facts layer every client
// of the pipeline sits on — the reproduction of OpenRefactory/C's single
// analysis substrate (DESIGN §1): type analysis, control-flow graphs,
// reaching definitions, points-to and alias sets, the call graph, the
// interprocedural may-modify facts, and the static overflow oracle's
// findings.
//
// A Snapshot is built once per parsed translation unit. Every fact is
// computed lazily on first request, memoized, and safe for concurrent
// access, so SLR, STR, the overflow oracle and the composition root can
// all consume one snapshot instead of re-deriving the same facts from a
// bare *cast.TranslationUnit. The package also hosts the bounded worker
// pool (pool.go) behind the batch pipeline (core.FixAll, cfix -j).
package analysis

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/buflen"
	"repro/internal/callgraph"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/interproc"
	"repro/internal/intflow"
	"repro/internal/obs"
	"repro/internal/overflow"
	"repro/internal/pointsto"
	"repro/internal/typecheck"
)

// Config selects non-default analysis configurations for a snapshot.
type Config struct {
	// PointsTo configures the points-to solver; the zero value is the
	// paper's aggregate model.
	PointsTo pointsto.Options
	// Overflow configures the static overflow oracle; nil means
	// overflow.DefaultOptions().
	Overflow *overflow.Options
	// Intflow configures the integer-overflow oracle; nil means
	// intflow.DefaultOptions().
	Intflow *intflow.Options
	// Limits bounds every fixpoint solve derived from this snapshot
	// (DESIGN.md Section 9): the context is polled at iteration
	// boundaries and exhausted budgets degrade the affected analysis to
	// its conservative result, recorded in Degradations. The zero value
	// imposes nothing.
	Limits fault.Limits
	// Tracer, when non-nil, receives one span per lazily computed fact
	// (DESIGN.md Section 11): parse, typecheck, cfg, reaching, pointsto,
	// aliases, callgraph, maymod, buflen, overflow — each annotated with
	// the file, solver effort, and any degradation reason. Nil disables
	// tracing at the cost of one nil check per accessor.
	Tracer *obs.Tracer
}

// Snapshot is the per-translation-unit facts store. All accessors are
// lazy, memoized, and safe for concurrent use; repeated calls return the
// same cached value.
type Snapshot struct {
	unit *cast.TranslationUnit
	conf Config
	file string

	typeOnce sync.Once
	typeErrs []error

	ptOnce sync.Once
	pt     *pointsto.Graph

	aliasOnce sync.Once
	aliases   *pointsto.AliasSets

	cgOnce sync.Once
	cg     *callgraph.Graph

	interOnce sync.Once
	inter     *interproc.Result

	bufOnce sync.Once
	buf     *buflen.Analyzer

	findOnce sync.Once
	findings []overflow.Finding

	externOnce  sync.Once
	externCalls []overflow.CallSeed

	intOnce     sync.Once
	intFindings []overflow.Finding

	hashOnce   sync.Once
	funcHashes map[string]string

	cfgMu sync.Mutex
	cfgs  map[*cast.FuncDef]*cfg.Graph

	rdMu sync.Mutex
	rds  map[*cast.FuncDef]*dataflow.ReachingDefs

	degMu    sync.Mutex
	degraded []string
}

// New wraps an already parsed translation unit in a snapshot with the
// default analysis configuration.
func New(unit *cast.TranslationUnit) *Snapshot {
	return NewWithConfig(unit, Config{})
}

// NewWithConfig wraps a parsed translation unit with an explicit
// configuration (the precision ablations pass a field-sensitive
// points-to model).
func NewWithConfig(unit *cast.TranslationUnit, conf Config) *Snapshot {
	s := &Snapshot{
		unit: unit,
		conf: conf,
		cfgs: make(map[*cast.FuncDef]*cfg.Graph, len(unit.Funcs)),
		rds:  make(map[*cast.FuncDef]*dataflow.ReachingDefs, len(unit.Funcs)),
	}
	if unit.File != nil {
		s.file = unit.File.Name()
	}
	return s
}

// span opens a stage span against the snapshot's tracer (nil-safe); the
// worker lane comes from the limits context the batch pool tagged.
func (s *Snapshot) span(name string) *obs.ActiveSpan {
	return s.conf.Tracer.Start(s.conf.Limits.Ctx, name, s.file)
}

// Parse parses one preprocessed C translation unit and wraps it in a
// snapshot — the parse-once entry point of the pipeline.
func Parse(filename, source string) (*Snapshot, error) {
	return ParseCtx(context.Background(), filename, source, Config{})
}

// ParseCtx is Parse under fault containment: ctx (stored in the
// snapshot's limits) is polled at every solver iteration derived from
// the snapshot, and conf carries the analysis budgets. ParseCtx is also
// the seam where test-only injected faults fire (see InjectFault).
func ParseCtx(ctx context.Context, filename, source string, conf Config) (*Snapshot, error) {
	if ctx != nil {
		conf.Limits.Ctx = ctx
	}
	// The span is closed by defer so a panic inside the parse (or an
	// injected test fault) still leaves a closed, attributed span behind
	// for the fault-path assertions.
	sp := conf.Tracer.Start(ctx, obs.StageParse, filename)
	defer sp.End()
	applyInjectedFault(ctx, filename, &conf)
	fault.CheckCtx(ctx)
	unit, err := cparse.Parse(filename, source)
	if err != nil {
		sp.Attr("error", err.Error())
		return nil, err
	}
	sp.Attr("funcs", fmt.Sprint(len(unit.Funcs)))
	return NewWithConfig(unit, conf), nil
}

// noteDegraded records budget degradations for Degradations().
func (s *Snapshot) noteDegraded(notes ...string) {
	if len(notes) == 0 {
		return
	}
	s.degMu.Lock()
	s.degraded = append(s.degraded, notes...)
	s.degMu.Unlock()
}

// Degradations lists every analysis that had to degrade to its
// conservative result because a budget ran out, in the order the lazy
// accessors discovered them. Empty for unbudgeted or in-budget runs.
func (s *Snapshot) Degradations() []string {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	out := make([]string, len(s.degraded))
	copy(out, s.degraded)
	return out
}

// Unit returns the underlying translation unit.
func (s *Snapshot) Unit() *cast.TranslationUnit { return s.unit }

// Typecheck runs type analysis exactly once and returns its diagnostics.
// Every other accessor calls it first, so facts are always computed over
// a typed unit.
func (s *Snapshot) Typecheck() []error {
	s.typeOnce.Do(func() {
		sp := s.span(obs.StageTypecheck)
		defer sp.End()
		s.typeErrs = typecheck.Check(s.unit)
		sp.Attr("funcs", fmt.Sprint(len(s.unit.Funcs)))
		if len(s.typeErrs) > 0 {
			sp.Attr("diagnostics", fmt.Sprint(len(s.typeErrs)))
		}
	})
	return s.typeErrs
}

// CFG returns the control-flow graph for fn, built once.
func (s *Snapshot) CFG(fn *cast.FuncDef) *cfg.Graph {
	s.Typecheck()
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	g, ok := s.cfgs[fn]
	if !ok {
		sp := s.span(obs.StageCFG).Attr("func", fn.Name)
		g = cfg.Build(fn)
		sp.End()
		s.cfgs[fn] = g
	}
	return g
}

// Reaching returns the reaching-definitions solution for fn, solved once
// over the shared CFG and alias sets.
func (s *Snapshot) Reaching(fn *cast.FuncDef) *dataflow.ReachingDefs {
	g, aliases := s.CFG(fn), s.Aliases()
	s.rdMu.Lock()
	defer s.rdMu.Unlock()
	rd, ok := s.rds[fn]
	if !ok {
		sp := s.span(obs.StageReaching).Attr("func", fn.Name)
		rd = dataflow.ComputeReachingLimits(g, aliases, s.conf.Limits)
		sp.Attr("steps", fmt.Sprint(rd.Steps))
		if rd.Degraded {
			reason := fmt.Sprintf("reaching definitions budget exhausted in %s", fn.Name)
			sp.Attr("degraded", reason)
			s.noteDegraded(reason)
		}
		sp.End()
		s.rds[fn] = rd
	}
	return rd
}

// PointsTo returns the unit-wide points-to graph, solved once.
func (s *Snapshot) PointsTo() *pointsto.Graph {
	s.ptOnce.Do(func() {
		s.Typecheck()
		opts := s.conf.PointsTo
		if opts.Limits == (fault.Limits{}) {
			opts.Limits = s.conf.Limits
		}
		sp := s.span(obs.StagePointsTo)
		defer sp.End()
		s.pt = pointsto.Analyze(s.unit, opts)
		sp.Attr("iterations", fmt.Sprint(s.pt.Stats.Iterations)).
			Attr("nodes", fmt.Sprint(len(s.pt.Nodes)))
		if s.pt.Stats.Degraded {
			reason := "points-to budget exhausted; alias sets degraded to everything-aliases"
			sp.Attr("degraded", reason)
			s.noteDegraded(reason)
		}
	})
	return s.pt
}

// Aliases returns the alias sets derived from the points-to graph.
func (s *Snapshot) Aliases() *pointsto.AliasSets {
	s.aliasOnce.Do(func() {
		pt := s.PointsTo()
		sp := s.span(obs.StageAliases)
		s.aliases = pointsto.ComputeAliases(pt)
		sp.End()
	})
	return s.aliases
}

// CallGraph returns the unit call graph, built once.
func (s *Snapshot) CallGraph() *callgraph.Graph {
	s.cgOnce.Do(func() {
		s.Typecheck()
		sp := s.span(obs.StageCallGraph).Attr("funcs", fmt.Sprint(len(s.unit.Funcs)))
		s.cg = callgraph.Build(s.unit)
		sp.End()
	})
	return s.cg
}

// MayModify returns the interprocedural may-modify facts (Section III-C),
// computed once over the shared call graph.
func (s *Snapshot) MayModify() *interproc.Result {
	s.interOnce.Do(func() {
		cg := s.CallGraph()
		sp := s.span(obs.StageMayMod)
		s.inter = interproc.AnalyzeWith(s.unit, cg)
		sp.End()
	})
	return s.inter
}

// BufLenAnalyzer returns the symbolic buffer-length analyzer (Algorithm 1)
// backed by this snapshot's CFGs, reaching definitions and alias sets.
func (s *Snapshot) BufLenAnalyzer() *buflen.Analyzer {
	s.bufOnce.Do(func() {
		s.Typecheck()
		sp := s.span(obs.StageBufLen)
		s.buf = buflen.NewAnalyzerFacts(s.unit, s)
		sp.End()
	})
	return s.buf
}

// Findings runs the static overflow oracle exactly once — reusing the
// snapshot's call graph, CFGs and buffer-length analysis — and returns
// its CWE-classified findings in source order.
func (s *Snapshot) Findings() []overflow.Finding {
	s.findOnce.Do(func() {
		s.Typecheck()
		opts := overflow.DefaultOptions()
		if s.conf.Overflow != nil {
			opts = *s.conf.Overflow
		}
		if opts.Limits == (fault.Limits{}) {
			opts.Limits = s.conf.Limits
		}
		sp := s.span(obs.StageOverflow)
		defer sp.End()
		an := overflow.NewWithFacts(s.unit, opts, s)
		s.findings = an.Analyze()
		sp.Attr("findings", fmt.Sprint(len(s.findings)))
		if deg := an.Degradations(); len(deg) > 0 {
			sp.Attr("degraded", deg[0])
			s.noteDegraded(deg...)
		}
	})
	return s.findings
}

// ExternalCalls evaluates every call to a function this TU does not
// define under the caller's intraprocedural interval solution, returning
// transportable seeds (overflow.CallSeed) for the project linker. It
// shares the snapshot's call graph and CFGs and runs at most once.
func (s *Snapshot) ExternalCalls() []overflow.CallSeed {
	s.externOnce.Do(func() {
		s.Typecheck()
		opts := overflow.DefaultOptions()
		if s.conf.Overflow != nil {
			opts = *s.conf.Overflow
		}
		if opts.Limits == (fault.Limits{}) {
			opts.Limits = s.conf.Limits
		}
		sp := s.span(obs.StageOverflow)
		defer sp.End()
		an := overflow.NewWithFacts(s.unit, opts, s)
		s.externCalls = an.ExternalCalls()
		sp.Attr("extern_calls", fmt.Sprint(len(s.externCalls)))
	})
	return s.externCalls
}

// IntFindings runs the integer-overflow oracle (internal/intflow)
// exactly once — reusing the snapshot's call graph, CFGs and may-modify
// facts — and returns its CWE-190/191/680 findings in source order.
func (s *Snapshot) IntFindings() []overflow.Finding {
	s.intOnce.Do(func() {
		s.Typecheck()
		opts := intflow.DefaultOptions()
		if s.conf.Intflow != nil {
			opts = *s.conf.Intflow
		}
		if opts.Limits == (fault.Limits{}) {
			opts.Limits = s.conf.Limits
		}
		sp := s.span(obs.StageIntflow)
		defer sp.End()
		an := intflow.NewWithFacts(s.unit, opts, s)
		s.intFindings = an.Analyze()
		sp.Attr("findings", fmt.Sprint(len(s.intFindings)))
		if deg := an.Degradations(); len(deg) > 0 {
			sp.Attr("degraded", deg[0])
			s.noteDegraded(deg...)
		}
	})
	return s.intFindings
}

// Snapshot implements the facts interfaces of its consumers.
var (
	_ buflen.Facts   = (*Snapshot)(nil)
	_ overflow.Facts = (*Snapshot)(nil)
	_ intflow.Facts  = (*Snapshot)(nil)
)
