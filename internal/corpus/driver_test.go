package corpus

import (
	"strings"
	"testing"

	"repro/internal/cinterp"
	"repro/internal/cparse"
	"repro/internal/harness"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

// runUnit executes main() of one translation unit.
func runUnit(t *testing.T, name, src string) *cinterp.Result {
	t.Helper()
	unit, err := cparse.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	typecheck.Check(unit)
	in, err := cinterp.New(unit, cinterp.Limits{MaxSteps: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run("main")
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return res
}

// TestMakeCheckEquivalent is the paper's "make test" experiment: for every
// project, run the benign test driver on the original sources and on the
// fully transformed sources; outputs must match and neither side may raise
// a violation.
func TestMakeCheckEquivalent(t *testing.T) {
	for _, p := range Generate(0) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			unit := p.ConcatenatedUnit()

			pre := runUnit(t, p.Name+"_pre.c", unit)
			if pre.HasViolations() {
				t.Fatalf("benign driver must be clean pre-transform: %v", pre.Violations[0])
			}
			if !strings.Contains(pre.Stdout, "acc=") {
				t.Fatalf("driver produced no accumulator line: %q", pre.Stdout)
			}

			transformed, err := harness.Transform(p.Name, unit, harness.Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			runSrc := transformed
			if strings.Contains(transformed, "stralloc") {
				runSrc = stralloc.Header() + "\n" + transformed
			}
			post := runUnit(t, p.Name+"_post.c", runSrc)
			if post.HasViolations() {
				t.Fatalf("transformed driver raised violations: %v", post.Violations[0])
			}
			if post.Stdout != pre.Stdout {
				t.Fatalf("make-test outputs differ:\npre:  %q\npost: %q", pre.Stdout, post.Stdout)
			}
		})
	}
}

func TestDriverCallsCoverAllPlants(t *testing.T) {
	for _, p := range Generate(0) {
		want := p.Calibration.UnsafeCalls + p.Calibration.STRCandidates
		if len(p.DriverCalls) != want {
			t.Errorf("%s: driver calls %d, want %d", p.Name, len(p.DriverCalls), want)
		}
	}
}
