package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/cfix"
)

// metrics holds the daemon's expvar-style counters. Everything is an
// atomic so the hot path never takes a lock; /metrics reads a snapshot.
// Admission counts (in-flight, rejected) live on the server's Gate; the
// request latency histogram is the shared LatencyHist.
type metrics struct {
	start time.Time

	fixRequests    atomic.Int64
	lintRequests   atomic.Int64
	batchRequests  atomic.Int64
	batchFiles     atomic.Int64
	// projectRequests/projectFiles count /v1/project batches and the
	// translation units they carried.
	projectRequests atomic.Int64
	projectFiles    atomic.Int64
	healthRequests atomic.Int64
	readyRequests  atomic.Int64

	// intFindings counts integer-overflow oracle findings
	// (CWE-190/191/680) across all served lint and fix responses.
	intFindings atomic.Int64

	// Incremental-session accounting (/v1/session/*): opens requested,
	// edit scripts applied, and the per-function work breakdown summed
	// over every applied edit. The open-session gauge itself is read
	// from the registry at snapshot time.
	sessionOpens           atomic.Int64
	sessionEdits           atomic.Int64
	sessionFuncsReanalyzed atomic.Int64
	sessionFuncsReused     atomic.Int64

	clientErrors atomic.Int64 // 4xx other than 429
	serverErrors atomic.Int64 // 5xx
	panics       atomic.Int64 // recovered panics (contained crashes)
	degraded     atomic.Int64 // responses carrying a degradation note

	latency LatencyHist

	// stages holds one latency histogram per pipeline stage name, fed
	// from each request's stage spans. The map is guarded by stageMu
	// (new stage names appear only a handful of times per process
	// lifetime); the histogram counters themselves are atomics, so
	// observing a span never blocks a /metrics scrape and counters stay
	// monotonic under concurrent scrapes, drains and panics.
	stageMu sync.RWMutex
	stages  map[string]*stageHist

	// backends counts transforming requests (fix, batch-fix) per repair
	// dialect, keyed by the canonical backend name. Same locking shape
	// as stages: the map only grows by registered-backend names, the
	// counters are atomics.
	backendMu sync.RWMutex
	backends  map[string]*atomic.Int64
}

// observeBackend counts one transforming request against its dialect.
func (m *metrics) observeBackend(name string) {
	m.backendMu.RLock()
	c := m.backends[name]
	m.backendMu.RUnlock()
	if c == nil {
		m.backendMu.Lock()
		if m.backends == nil {
			m.backends = make(map[string]*atomic.Int64)
		}
		if c = m.backends[name]; c == nil {
			c = new(atomic.Int64)
			m.backends[name] = c
		}
		m.backendMu.Unlock()
	}
	c.Add(1)
}

// stageHist is one per-stage latency histogram plus its summed time and
// degraded-span count. All fields are atomics: writers and the
// /metrics reader never contend.
type stageHist struct {
	buckets  [len(latencyBounds) + 1]atomic.Int64
	total    atomic.Int64 // summed nanoseconds
	count    atomic.Int64
	degraded atomic.Int64
}

// observeStage records one stage span into its histogram.
func (m *metrics) observeStage(name string, d time.Duration, degraded bool) {
	m.stageMu.RLock()
	h := m.stages[name]
	m.stageMu.RUnlock()
	if h == nil {
		m.stageMu.Lock()
		if m.stages == nil {
			m.stages = make(map[string]*stageHist)
		}
		if h = m.stages[name]; h == nil {
			h = new(stageHist)
			m.stages[name] = h
		}
		m.stageMu.Unlock()
	}
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.total.Add(int64(d))
	h.count.Add(1)
	if degraded {
		h.degraded.Add(1)
	}
}

// observeFindings counts the integer-overflow oracle's findings in one
// response's finding list.
func (m *metrics) observeFindings(fs []cfix.Finding) {
	var n int64
	for _, f := range fs {
		switch f.CWE {
		case 190, 191, 680:
			n++
		}
	}
	if n > 0 {
		m.intFindings.Add(n)
	}
}

// Snapshot is the JSON shape of GET /metrics: every counter the daemon
// exports, read atomically. Field order is the document order.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts admitted requests per endpoint; BatchFiles counts
	// the translation units inside admitted batch requests.
	Requests struct {
		Fix     int64 `json:"fix"`
		Lint    int64 `json:"lint"`
		Batch   int64 `json:"batch"`
		Project int64 `json:"project"`
		Healthz int64 `json:"healthz"`
		Readyz  int64 `json:"readyz"`
	} `json:"requests"`
	// Draining reports that graceful shutdown has begun: /readyz is
	// answering 503 and the listener will close once in-flight requests
	// finish (or the drain deadline forces it).
	Draining   bool  `json:"draining,omitempty"`
	BatchFiles int64 `json:"batch_files"`
	// ProjectFiles counts translation units processed via /v1/project.
	ProjectFiles int64 `json:"project_files"`
	// Rejected429 counts requests turned away by admission control.
	Rejected429  int64 `json:"rejected_429"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	// PanicsRecovered counts contained crashes: each one was a request
	// that returned 500 with its stack logged instead of killing the
	// daemon.
	PanicsRecovered int64 `json:"panics_recovered"`
	// DegradedResponses counts responses whose result carried at least
	// one degradation note (budget exhaustion, skipped stage).
	DegradedResponses int64 `json:"degraded_responses"`
	// IntflowFindings counts integer-overflow oracle findings
	// (CWE-190/191/680) across all served lint and fix responses —
	// the demand signal for the `-checks=int` oracle.
	IntflowFindings int64 `json:"intflow_findings"`
	InFlight        int64 `json:"in_flight"`
	// Sessions reports the incremental-session endpoints' counters:
	// the open-session gauge plus cumulative edit work. FuncsReused
	// versus FuncsReanalyzed is the daemon-level measure of how much
	// re-derivation the memoized sessions avoided.
	Sessions struct {
		Open            int64 `json:"sessions_open"`
		Opens           int64 `json:"opens_total"`
		EditsApplied    int64 `json:"edits_applied"`
		FuncsReanalyzed int64 `json:"funcs_reanalyzed"`
		FuncsReused     int64 `json:"funcs_reused"`
	} `json:"sessions"`
	// Cache reports the result cache's counters; absent when the daemon
	// runs uncached.
	Cache *cfix.CacheStats `json:"cache,omitempty"`
	// LatencyBuckets is a cumulative-style histogram of served request
	// latencies (bucket label -> count), plus the summed milliseconds.
	LatencyBuckets map[string]int64 `json:"latency_buckets"`
	LatencyTotalMs int64            `json:"latency_total_ms"`
	// BackendRequests counts transforming requests per repair dialect
	// (canonical backend name -> count); empty until the first fix
	// request.
	BackendRequests map[string]int64 `json:"backend_requests,omitempty"`
	// Stages maps each pipeline stage name (parse, typecheck, slr, ...)
	// to its own latency histogram, aggregated from the stage spans of
	// every served request. Empty until the first analysis request, and
	// always empty in a cfix_notrace build.
	Stages map[string]StageSnapshot `json:"stages,omitempty"`
}

// StageSnapshot is one stage's slice of the /metrics payload.
type StageSnapshot struct {
	Count   int64 `json:"count"`
	TotalUs int64 `json:"total_us"`
	// Degraded counts spans that carried a degradation attribute (budget
	// exhaustion, skipped stage).
	Degraded int64            `json:"degraded,omitempty"`
	Buckets  map[string]int64 `json:"latency_buckets"`
}

// snapshot reads every counter.
func (m *metrics) snapshot(cache *cfix.ResultCache, gate *Gate, sessions *sessionRegistry, draining bool) Snapshot {
	var s Snapshot
	s.UptimeSeconds = time.Since(m.start).Seconds()
	s.Requests.Fix = m.fixRequests.Load()
	s.Requests.Lint = m.lintRequests.Load()
	s.Requests.Batch = m.batchRequests.Load()
	s.Requests.Project = m.projectRequests.Load()
	s.Requests.Healthz = m.healthRequests.Load()
	s.Requests.Readyz = m.readyRequests.Load()
	s.Draining = draining
	s.BatchFiles = m.batchFiles.Load()
	s.ProjectFiles = m.projectFiles.Load()
	s.Rejected429 = gate.Rejected()
	s.ClientErrors = m.clientErrors.Load()
	s.ServerErrors = m.serverErrors.Load()
	s.PanicsRecovered = m.panics.Load()
	s.DegradedResponses = m.degraded.Load()
	s.IntflowFindings = m.intFindings.Load()
	s.InFlight = gate.InFlight()
	if sessions != nil {
		s.Sessions.Open = sessions.count()
	}
	s.Sessions.Opens = m.sessionOpens.Load()
	s.Sessions.EditsApplied = m.sessionEdits.Load()
	s.Sessions.FuncsReanalyzed = m.sessionFuncsReanalyzed.Load()
	s.Sessions.FuncsReused = m.sessionFuncsReused.Load()
	if cache != nil {
		st := cache.Stats()
		s.Cache = &st
	}
	s.LatencyBuckets = m.latency.Buckets()
	s.LatencyTotalMs = m.latency.TotalMs()
	m.backendMu.RLock()
	if len(m.backends) > 0 {
		s.BackendRequests = make(map[string]int64, len(m.backends))
		for name, c := range m.backends {
			s.BackendRequests[name] = c.Load()
		}
	}
	m.backendMu.RUnlock()
	m.stageMu.RLock()
	if len(m.stages) > 0 {
		s.Stages = make(map[string]StageSnapshot, len(m.stages))
		for name, h := range m.stages {
			ss := StageSnapshot{
				Count:    h.count.Load(),
				TotalUs:  h.total.Load() / int64(time.Microsecond),
				Degraded: h.degraded.Load(),
				Buckets:  make(map[string]int64, len(latencyLabels)),
			}
			for i, label := range latencyLabels {
				ss.Buckets[label] = h.buckets[i].Load()
			}
			s.Stages[name] = ss
		}
	}
	m.stageMu.RUnlock()
	return s
}
