package cparse

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/ctype"
)

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unbalanced brace", "int f(void) {"},
		{"missing semicolon", "int x int y;"},
		{"bad expression", "void f(void){ int x; x = ; }"},
		{"stray paren", "void f(void){ (; }"},
		{"anonymous struct reference", "struct; s;"},
		{"do without while", "void f(void){ do {} until (1); }"},
		{"case outside switch parses but colon required", "void f(void){ case; }"},
		{"missing type", "void f(void){ signed_thing x(); x = ; }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse("e.c", tt.src); err == nil {
				t.Fatalf("expected a parse error for %q", tt.src)
			}
		})
	}
}

func TestParseBitfields(t *testing.T) {
	tu := mustParse(t, `
struct flags {
    unsigned int a : 1;
    unsigned int b : 3;
    int c;
};
struct flags v;
`)
	vd := tu.Decls[1].(*cast.VarDecl)
	rec := ctype.Unqualify(vd.Type).(*ctype.Record)
	if len(rec.Fields) != 3 {
		t.Fatalf("fields: %d", len(rec.Fields))
	}
}

func TestParseAnonymousNestedStruct(t *testing.T) {
	tu := mustParse(t, `
struct outer {
    int before;
    struct { int x; int y; };
    int after;
};
struct outer v;
`)
	vd := tu.Decls[1].(*cast.VarDecl)
	rec := ctype.Unqualify(vd.Type).(*ctype.Record)
	// The anonymous members flatten into the outer struct.
	if _, ok := rec.FieldNamed("x"); !ok {
		t.Fatalf("anonymous member not flattened: %+v", rec.Fields)
	}
}

func TestParseUnion(t *testing.T) {
	tu := mustParse(t, `
union value { int i; double d; char bytes[8]; };
union value v;
`)
	vd := tu.Decls[1].(*cast.VarDecl)
	rec := ctype.Unqualify(vd.Type).(*ctype.Record)
	if !rec.IsUnion || rec.Size() != 8 {
		t.Fatalf("union: %+v size=%d", rec, rec.Size())
	}
}

func TestParseForwardStructReference(t *testing.T) {
	tu := mustParse(t, `
struct node;
struct node { struct node *next; int v; };
struct node n;
`)
	vd := tu.Decls[2].(*cast.VarDecl)
	rec := ctype.Unqualify(vd.Type).(*ctype.Record)
	if !rec.Complete {
		t.Fatal("forward-declared struct must be completed")
	}
	f, _ := rec.FieldNamed("next")
	p := ctype.Unqualify(f.Type).(*ctype.Pointer)
	if ctype.Unqualify(p.Elem) != rec {
		t.Fatal("recursive struct pointer must close the cycle")
	}
}

func TestParseQualifiersIgnored(t *testing.T) {
	tu := mustParse(t, `
const volatile unsigned long x;
static inline int f(register int a) { return a; }
char * const restrict p;
`)
	if len(tu.Decls) != 3 {
		t.Fatalf("decls: %d", len(tu.Decls))
	}
}

func TestParseDesignatedInitializers(t *testing.T) {
	tu := mustParse(t, `
struct p { int x; int y; };
struct p v = { .x = 1, .y = 2 };
int arr[4] = { [0] = 9, [2] = 7 };
`)
	if len(tu.Decls) != 3 {
		t.Fatalf("decls: %d", len(tu.Decls))
	}
}

func TestParseWideLiterals(t *testing.T) {
	tu := mustParse(t, `
void f(void) {
    char *w;
    char c;
    w = L"wide";
    c = L'x';
}
`)
	var sawStr, sawChar bool
	cast.Inspect(tu, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.StringLit:
			sawStr = true
		case *cast.CharLit:
			sawChar = true
		}
		return true
	})
	if !sawStr || !sawChar {
		t.Fatal("wide literals must parse as literals")
	}
}

func TestParseFloatForms(t *testing.T) {
	tu := mustParse(t, `
double a = 1.5;
double b = 1e3;
double c = 2.5e-2;
float d = 3.0f;
double e = .5;
`)
	values := []float64{1.5, 1000, 0.025, 3.0, 0.5}
	i := 0
	cast.Inspect(tu, func(n cast.Node) bool {
		if lit, ok := n.(*cast.FloatLit); ok {
			if lit.Value != values[i] {
				t.Errorf("float %d: got %v, want %v", i, lit.Value, values[i])
			}
			i++
		}
		return true
	})
	if i != len(values) {
		t.Fatalf("floats parsed: %d", i)
	}
}

func TestParseLocalTypedef(t *testing.T) {
	tu := mustParse(t, `
void f(void) {
    typedef unsigned char byte;
    byte b;
    b = 255;
}
`)
	if len(tu.Funcs) != 1 {
		t.Fatal("function lost")
	}
}

func TestParseNestedFunctionPointerType(t *testing.T) {
	tu := mustParse(t, `
int apply(int (*op)(int, int), int a, int b) {
    return op(a, b);
}
`)
	f := tu.Funcs[0]
	if len(f.Params) != 3 {
		t.Fatalf("params: %d", len(f.Params))
	}
	p0 := ctype.Unqualify(f.Params[0].Type)
	if _, ok := p0.(*ctype.Pointer); !ok {
		t.Fatalf("param 0: %s", f.Params[0].Type)
	}
}

func TestParseStringConcatAdjacent(t *testing.T) {
	tu := mustParse(t, `char *s = "a" "b" "c";`)
	vd := tu.Decls[0].(*cast.VarDecl)
	lit := vd.Init.(*cast.StringLit)
	if lit.Value != "abc" {
		t.Fatalf("concat: %q", lit.Value)
	}
}

func TestParsePositionsInErrors(t *testing.T) {
	_, err := Parse("pos.c", "int a;\nint b;\nvoid f( {\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.c:3:") {
		t.Fatalf("error should point at line 3: %v", err)
	}
}

func TestParseEnumTrailingComma(t *testing.T) {
	tu := mustParse(t, "enum e { A, B, };")
	ed := tu.Decls[0].(*cast.EnumDecl)
	if len(ed.Enum.Consts) != 2 {
		t.Fatalf("consts: %d", len(ed.Enum.Consts))
	}
}

func TestParseConditionalChained(t *testing.T) {
	tu := mustParse(t, `
int f(int a, int b, int c) {
    return a ? b : c ? 1 : 2;
}
`)
	ret := tu.Funcs[0].Body.Items[0].(*cast.ReturnStmt)
	outer := ret.Result.(*cast.CondExpr)
	if _, ok := outer.Else.(*cast.CondExpr); !ok {
		t.Fatal("?: must be right-associative")
	}
}
