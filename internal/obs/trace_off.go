//go:build cfix_notrace

package obs

import (
	"context"
	"time"
)

// Start is compiled out: tracing-disabled builds never allocate a span.
// This variant exists so the CI overhead gate can benchmark the default
// build's nil-tracer path against a build with no instrumentation at
// all (see Makefile `bench-guard`).
func (t *Tracer) Start(context.Context, string, string) *ActiveSpan { return nil }

// RecordSince is compiled out.
func (t *Tracer) RecordSince(context.Context, string, string, time.Time, ...Attr) {}

// Enabled reports that this build records no spans.
func Enabled() bool { return false }
