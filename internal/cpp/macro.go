package cpp

import (
	"fmt"
	"strings"
)

// macro is one #define.
type macro struct {
	name     string
	funcLike bool
	params   []string // parameter names; for variadic macros the last is "..."
	variadic bool
	repl     []ptok // replacement list (ws flags preserved, hide sets empty)
	// builtin computes dynamic replacements (__FILE__, __LINE__).
	builtin func(pp *preprocessor, at ptok) []ptok
}

// paramIndex returns the parameter position of name (-1 when not a
// parameter). __VA_ARGS__ addresses the variadic tail.
func (m *macro) paramIndex(name string) int {
	for i, p := range m.params {
		if p == name {
			return i
		}
		if p == "..." && name == "__VA_ARGS__" {
			return i
		}
	}
	return -1
}

// sameDef reports whether two definitions are identical enough that a
// redefinition is benign (same spelling sequence and parameters).
func (m *macro) sameDef(o *macro) bool {
	if m.funcLike != o.funcLike || len(m.params) != len(o.params) || len(m.repl) != len(o.repl) {
		return false
	}
	for i := range m.params {
		if m.params[i] != o.params[i] {
			return false
		}
	}
	for i := range m.repl {
		if m.repl[i].text != o.repl[i].text || (i > 0 && m.repl[i].ws != o.repl[i].ws) {
			return false
		}
	}
	return true
}

// expandList fully macro-expands a token list. Tokens flowing out carry
// hide sets that block re-expansion of the macros that produced them —
// the standard's mechanism for terminating self-referential macros.
// Function-like macro names whose '(' is not in the list are left alone
// (the text processor handles invocations that consume source text).
func (pp *preprocessor) expandList(ts []ptok) []ptok {
	var out []ptok
	for i := 0; i < len(ts); {
		t := ts[i]
		if t.kind != tkIdent || t.hidden(t.text) {
			out = append(out, t)
			i++
			continue
		}
		m := pp.macros[t.text]
		if m == nil {
			out = append(out, t)
			i++
			continue
		}
		if !pp.spendExpansion(t) {
			out = append(out, ts[i:]...)
			return out
		}
		if m.builtin != nil {
			out = append(out, m.builtin(pp, t)...)
			i++
			continue
		}
		if !m.funcLike {
			repl := pp.substitute(m, t, nil)
			ts = append(repl, ts[i+1:]...)
			i = 0
			continue
		}
		// Function-like: the next token must be '('.
		if i+1 >= len(ts) || !(ts[i+1].kind == tkPunct && ts[i+1].text == "(") {
			out = append(out, t)
			i++
			continue
		}
		args, next, ok := splitArgs(ts, i+1)
		if !ok {
			// Unbalanced parentheses: not an invocation after all.
			out = append(out, t)
			i++
			continue
		}
		if !pp.checkArity(m, t, len(args)) {
			out = append(out, t)
			i++
			continue
		}
		repl := pp.substitute(m, t, args)
		ts = append(repl, ts[next:]...)
		i = 0
	}
	return out
}

// splitArgs collects the arguments of a function-like invocation whose
// '(' sits at ts[open]. It returns the raw (unexpanded) argument token
// lists and the index just past the closing ')'. Nested parentheses are
// balanced; newline and comment tokens inside arguments act as
// whitespace.
func splitArgs(ts []ptok, open int) (args [][]ptok, next int, ok bool) {
	depth := 0
	var cur []ptok
	pendingWS := false
	push := func(t ptok) {
		if pendingWS {
			t.ws = true
			pendingWS = false
		}
		cur = append(cur, t)
	}
	for i := open; i < len(ts); i++ {
		t := ts[i]
		switch {
		case t.kind == tkPunct && t.text == "(":
			depth++
			if depth > 1 {
				push(t)
			}
		case t.kind == tkPunct && t.text == ")":
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, true
			}
			push(t)
		case t.kind == tkPunct && t.text == "," && depth == 1:
			args = append(args, cur)
			cur = nil
			pendingWS = false
		case t.kind == tkNewline || t.kind == tkComment || t.kind == tkSplice:
			pendingWS = true
		default:
			push(t)
		}
	}
	return nil, open, false
}

// checkArity validates an invocation's argument count, reporting a
// diagnostic (and declining the expansion) on mismatch. A single empty
// argument to a zero-parameter macro is the standard's spelling of "no
// arguments".
func (pp *preprocessor) checkArity(m *macro, at ptok, n int) bool {
	want := len(m.params)
	if m.variadic {
		if n >= want-1 {
			return true
		}
		pp.errorAt(at, fmt.Sprintf("macro %q needs at least %d arguments, got %d", m.name, want-1, n))
		return false
	}
	if n == want || (want == 0 && n == 1) {
		return true
	}
	pp.errorAt(at, fmt.Sprintf("macro %q needs %d arguments, got %d", m.name, want, n))
	return false
}

// substitute builds the replacement token list for one invocation:
// parameter substitution (expanded except next to # / ##), stringize,
// paste, and hide-set propagation.
func (pp *preprocessor) substitute(m *macro, name ptok, args [][]ptok) []ptok {
	hide := withHide(name.hide, m.name)
	// Normalize the no-argument invocation of a zero-parameter macro.
	if m.funcLike && len(m.params) == 0 {
		args = nil
	}
	// Variadic: fold the tail arguments into one __VA_ARGS__ list with
	// comma tokens between them.
	if m.variadic {
		fixed := len(m.params) - 1
		var tail []ptok
		for i := fixed; i < len(args); i++ {
			if i > fixed {
				tail = append(tail, ptok{kind: tkPunct, text: ",", pos: -1, end: -1})
			}
			tail = append(tail, args[i]...)
		}
		args = append(append([][]ptok(nil), args[:min(fixed, len(args))]...), tail)
	}

	expandedArg := make(map[int][]ptok)
	argExpanded := func(i int) []ptok {
		if v, ok := expandedArg[i]; ok {
			return v
		}
		v := pp.expandList(args[i])
		expandedArg[i] = v
		return v
	}
	argRaw := func(i int) []ptok {
		if i < len(args) {
			return args[i]
		}
		return nil
	}

	var out []ptok
	repl := m.repl
	for i := 0; i < len(repl); i++ {
		t := repl[i]
		// '#' param -> stringized raw argument.
		if t.kind == tkPunct && t.text == "#" && m.funcLike && i+1 < len(repl) {
			if pi := m.paramIndex(repl[i+1].text); pi >= 0 && repl[i+1].kind == tkIdent {
				s := stringize(argRaw(pi))
				out = append(out, ptok{kind: tkStr, text: s, pos: -1, end: -1, ws: t.ws, hide: hide})
				i++
				continue
			}
		}
		// '##' between tokens: paste previous output token with the next
		// (raw) operand.
		if t.kind == tkPunct && t.text == "##" && i+1 < len(repl) && len(out) > 0 {
			rhs := repl[i+1]
			var rhsToks []ptok
			if pi := m.paramIndex(rhs.text); pi >= 0 && rhs.kind == tkIdent {
				rhsToks = argRaw(pi)
			} else {
				r := rhs
				r.hide = hide
				rhsToks = []ptok{r}
			}
			out = pasteInto(pp, out, rhsToks, hide)
			i++
			continue
		}
		// Parameter reference.
		if t.kind == tkIdent && m.funcLike {
			if pi := m.paramIndex(t.text); pi >= 0 {
				var sub []ptok
				if i+1 < len(repl) && repl[i+1].kind == tkPunct && repl[i+1].text == "##" {
					sub = argRaw(pi) // raw when the next operator pastes
				} else {
					sub = argExpanded(pi)
				}
				for j, a := range sub {
					a.hide = unionHide(a.hide, hide)
					if j == 0 {
						a.ws = t.ws
					}
					out = append(out, a)
				}
				continue
			}
		}
		t.hide = unionHide(t.hide, hide)
		out = append(out, t)
	}
	return out
}

// pasteInto concatenates the last token of out with the first of rhs,
// re-lexing the joined spelling. A paste that does not form a single
// valid token keeps both halves (with a diagnostic), matching the
// lenient behavior real compilers offer for the standard's UB.
func pasteInto(pp *preprocessor, out, rhs []ptok, hide map[string]bool) []ptok {
	if len(rhs) == 0 {
		return out // pasting with a placemarker: no-op
	}
	last := out[len(out)-1]
	first := rhs[0]
	joined := last.text + first.text
	lexed := lexAll(joined)
	if len(lexed) == 1 {
		nt := lexed[0]
		nt.ws = last.ws
		nt.pos, nt.end = -1, -1
		nt.hide = unionHide(last.hide, unionHide(first.hide, hide))
		out = append(out[:len(out)-1], nt)
	} else {
		pp.errorAt(last, fmt.Sprintf("pasting %q and %q does not form a valid token", last.text, first.text))
		out = append(out, first)
	}
	for _, t := range rhs[1:] {
		t.hide = unionHide(t.hide, hide)
		out = append(out, t)
	}
	return out
}

// lexAll tokenizes a synthesized spelling (no file, no splices).
func lexAll(text string) []ptok {
	s := newScanner(&srcFile{name: "<paste>", src: text}, 0)
	var out []ptok
	for {
		t := s.next()
		if t.kind == tkEOF {
			return out
		}
		if t.kind == tkComment || t.kind == tkNewline || t.kind == tkSplice {
			continue
		}
		out = append(out, t)
	}
}

// stringize renders raw argument tokens as a C string literal: one space
// between whitespace-separated tokens, backslashes and quotes inside
// string/char literals escaped (C11 6.10.3.2).
func stringize(arg []ptok) string {
	var b strings.Builder
	b.WriteByte('"')
	for i, t := range arg {
		if i > 0 && t.ws {
			b.WriteByte(' ')
		}
		if t.kind == tkStr || t.kind == tkChar {
			for j := 0; j < len(t.text); j++ {
				c := t.text[j]
				if c == '\\' || c == '"' {
					b.WriteByte('\\')
				}
				b.WriteByte(c)
			}
			continue
		}
		b.WriteString(t.text)
	}
	b.WriteByte('"')
	return b.String()
}

// renderTokens serializes an expanded token list, re-inserting a single
// space where the list had whitespace or where adjacent spellings would
// otherwise lex as one token.
func renderTokens(ts []ptok) string {
	var b strings.Builder
	for i, t := range ts {
		if t.kind == tkNewline || t.kind == tkComment || t.kind == tkSplice {
			// Render as a space between tokens (arguments may span lines).
			continue
		}
		if b.Len() > 0 && (t.ws || needSep(ts[i-1], t)) {
			b.WriteByte(' ')
		}
		b.WriteString(t.text)
	}
	return b.String()
}

// needSep reports whether two adjacent spellings must be separated to
// keep their token boundary.
func needSep(a, b ptok) bool {
	if a.text == "" || b.text == "" {
		return false
	}
	la := a.text[len(a.text)-1]
	fb := b.text[0]
	switch {
	case isIdentCont(la) && (isIdentCont(fb) || fb == '"' || fb == '\''):
		return true
	case (la == '.' || isIdentCont(la)) && fb == '.':
		// "1." + ".5" etc.; conservative.
		return a.kind == tkNum && (b.kind == tkNum || b.text == ".")
	}
	// Punctuator merges: re-lex the pair and see if it stays two tokens.
	if a.kind == tkPunct && b.kind == tkPunct {
		if len(lexAll(a.text+b.text)) < 2 {
			return true
		}
		// '#' '#' lexes as '##': lexAll returns 1; handled above.
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
