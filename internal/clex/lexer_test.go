package clex

import (
	"testing"

	"repro/internal/ctoken"
)

func kinds(toks []ctoken.Token) []ctoken.Kind {
	out := make([]ctoken.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []ctoken.Kind{
		ctoken.KindKeyword, ctoken.KindIdent, ctoken.KindPunct,
		ctoken.KindIntLit, ctoken.KindPunct, ctoken.KindEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %d (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeExtentsCoverSource(t *testing.T) {
	src := `char *p = "hi\n"; /* c */ p++;`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind == ctoken.KindEOF {
			continue
		}
		if !tok.Extent.IsValid() {
			t.Fatalf("invalid extent on %v", tok)
		}
		if src[tok.Extent.Pos:tok.Extent.End] != tok.Text {
			t.Fatalf("extent mismatch: %q vs %q", src[tok.Extent.Pos:tok.Extent.End], tok.Text)
		}
	}
}

func TestTokenizePunctuators(t *testing.T) {
	tests := []struct {
		src  string
		want []string
	}{
		{"a->b", []string{"a", "->", "b"}},
		{"a<<=b", []string{"a", "<<=", "b"}},
		{"a<<b", []string{"a", "<<", "b"}},
		{"a...", []string{"a", "..."}},
		{"a++ ++b", []string{"a", "++", "++", "b"}},
		{"a+ +b", []string{"a", "+", "+", "b"}},
		{"x-=-1", []string{"x", "-=", "-", "1"}},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Fatalf("%s: %v", tt.src, err)
		}
		var got []string
		for _, tok := range toks {
			if tok.Kind != ctoken.KindEOF {
				got = append(got, tok.Text)
			}
		}
		if len(got) != len(tt.want) {
			t.Fatalf("%s: got %v, want %v", tt.src, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%s token %d: got %q, want %q", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind ctoken.Kind
	}{
		{"42", ctoken.KindIntLit},
		{"0x1F", ctoken.KindIntLit},
		{"077", ctoken.KindIntLit},
		{"42UL", ctoken.KindIntLit},
		{"1.5", ctoken.KindFloatLit},
		{"1e9", ctoken.KindFloatLit},
		{"1.5e-3", ctoken.KindFloatLit},
		{"2.0f", ctoken.KindFloatLit},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Fatalf("%s: %v", tt.src, err)
		}
		if toks[0].Kind != tt.kind || toks[0].Text != tt.src {
			t.Errorf("%s: got %v %q, want %v", tt.src, toks[0].Kind, toks[0].Text, tt.kind)
		}
	}
}

func TestTokenizeStringsAndChars(t *testing.T) {
	toks, err := Tokenize(`"a\"b" 'c' '\n' '\''`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != ctoken.KindStringLit || toks[0].Text != `"a\"b"` {
		t.Errorf("string: got %v", toks[0])
	}
	for i := 1; i <= 3; i++ {
		if toks[i].Kind != ctoken.KindCharLit {
			t.Errorf("char %d: got %v", i, toks[i])
		}
	}
}

func TestTokenizeDirectivesAndComments(t *testing.T) {
	src := "# 1 \"file.c\"\nint x; // end\n/* multi\nline */ int y;"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	var nDir, nCom int
	for _, tok := range toks {
		switch tok.Kind {
		case ctoken.KindDirective:
			nDir++
		case ctoken.KindComment:
			nCom++
		}
	}
	if nDir != 1 || nCom != 2 {
		t.Fatalf("directives=%d comments=%d, want 1 and 2", nDir, nCom)
	}
	ptoks, err := TokenizeForParser(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range ptoks {
		if tok.Kind == ctoken.KindDirective || tok.Kind == ctoken.KindComment {
			t.Fatalf("parser stream should filter %v", tok)
		}
	}
}

func TestTokenizeUnterminatedString(t *testing.T) {
	_, err := Tokenize(`"abc`)
	if err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	_, err := Tokenize("/* abc")
	if err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestFilePositions(t *testing.T) {
	f := ctoken.NewFile("t.c", "ab\ncd\nef")
	tests := []struct {
		off  ctoken.Pos
		line int
		col  int
	}{
		{0, 1, 1}, {1, 1, 2}, {3, 2, 1}, {4, 2, 2}, {6, 3, 1},
	}
	for _, tt := range tests {
		p := f.Position(tt.off)
		if p.Line != tt.line || p.Col != tt.col {
			t.Errorf("offset %d: got %d:%d, want %d:%d", tt.off, p.Line, p.Col, tt.line, tt.col)
		}
	}
}
