package experiments

import (
	"fmt"
	"strings"

	"repro/internal/slr"
	"repro/internal/str"
)

// FormatTableI renders Table I: unsafe functions and their safer
// alternatives, plus the operational choice SLR makes.
func FormatTableI() string {
	var sb strings.Builder
	sb.WriteString("Table I: Some Unsafe Functions and Their Safer Alternatives\n\n")
	for _, e := range slr.TableI {
		sb.WriteString(fmt.Sprintf("%s\n    %s\n", e.Unsafe, e.UnsafeProto))
		for _, a := range e.Alternatives {
			sb.WriteString(fmt.Sprintf("    -> %-18s [%s]\n       %s\n", a.Name, a.Library, a.Signature))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("SLR's operational choices (glib-style, minimal per-instance change):\n")
	for _, fn := range slr.UnsafeFunctions() {
		sb.WriteString(fmt.Sprintf("    %-9s -> %s\n", fn, slr.SafeNameFor(fn)))
	}
	return sb.String()
}

// FormatTableII renders Table II: the STR replacement patterns.
func FormatTableII() string {
	var sb strings.Builder
	sb.WriteString("Table II: Transforming Common Expressions (STR replacement patterns)\n\n")
	group := ""
	for _, p := range str.TableII {
		if p.Group != group {
			group = p.Group
			sb.WriteString(group + "\n")
		}
		sb.WriteString(fmt.Sprintf("  %2d. %s\n      %-34s =>  %s\n",
			p.ID, p.Description, p.Before, p.After))
	}
	return sb.String()
}
