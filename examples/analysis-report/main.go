// Analysis report: inspect the program analyses behind the
// transformations.
//
// The paper's infrastructure contribution (Section III-A) is the analysis
// stack — control flow, reaching definitions, points-to, alias sets — at
// source level. This example runs the stack over a small program and
// prints what each analysis concluded, ending with Algorithm 1's verdict
// for every unsafe call site (the size it computed, or the precondition
// failure it reported).
//
//	go run ./examples/analysis-report
package main

import (
	"fmt"
	"os"

	"repro/internal/buflen"
	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/pointsto"
	"repro/internal/slr"
	"repro/internal/typecheck"
)

const program = `
struct header { char *data; char *spare; };

void handle(char *input, int mode) {
    char stackbuf[64];
    char *heap;
    char *cursor;
    struct header h;

    heap = malloc(128);
    cursor = stackbuf;
    h.data = heap;

    strcpy(stackbuf, input);
    strcpy(cursor, input);
    strcpy(heap, input);
    strcpy(h.data, input);
    strcpy(input, "echo");
}
`

func main() { os.Exit(run()) }

func run() int {
	unit, err := cparse.Parse("report.c", program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	typecheck.Check(unit)

	fmt.Println("=== points-to sets ===")
	ptg := pointsto.Analyze(unit, pointsto.Options{})
	aliases := pointsto.ComputeAliases(ptg)
	for _, sym := range unit.Symbols {
		if sym.Kind != cast.SymVar || sym.IsGlobal {
			continue
		}
		pts := ptg.PointsTo(sym)
		if len(pts) == 0 {
			continue
		}
		fmt.Printf("  %-10s ->", sym.Name)
		for _, n := range pts {
			fmt.Printf(" %s", n)
		}
		if aliases.IsAliased(sym) {
			fmt.Printf("   [aliased]")
		}
		fmt.Println()
	}

	fmt.Println("\n=== Algorithm 1 verdicts per unsafe call ===")
	analyzer := buflen.NewAnalyzer(unit)
	fn := unit.FuncNamed("handle")
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		call, ok := n.(*cast.CallExpr)
		if !ok || !slr.IsUnsafe(call.Callee()) {
			return true
		}
		pos := unit.File.Position(call.Extent().Pos)
		dest := unit.File.Slice(call.Args[0].Extent())
		size, fail := analyzer.BufferLength(fn, call.Args[0])
		if fail != nil {
			fmt.Printf("  %s  %s(%s, ...)  REFUSED: %v\n", pos, call.Callee(), dest, fail)
		} else {
			fmt.Printf("  %s  %s(%s, ...)  size = %s\n", pos, call.Callee(), dest, size.CText())
		}
		return true
	})

	fmt.Println("\n=== what SLR would do ===")
	res, err := slr.NewTransformer(unit).ApplyAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("  %d/%d call sites transformable\n", res.AppliedCount(), res.Candidates())
	return 0
}
