package cfix

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

const clientTestSource = `void f(void) {
    char buf[8];
    strcpy(buf, "far too long for eight");
}
`

// shedThenServe answers n requests with status (carrying Retry-After)
// before serving real fix responses.
func shedThenServe(t *testing.T, shed int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= shed {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": "over capacity"})
			return
		}
		var req FixRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		rep, err := Fix(req.Filename, req.Source, Options{})
		if err != nil {
			t.Errorf("fix: %v", err)
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(NewFixResponse(req.Filename, rep))
	}))
	return ts, &calls
}

// TestClientRetriesSheddingWithRetryAfter: 429 and 503 answers carrying
// Retry-After are waited out and retried, not surfaced to the caller.
func TestClientRetriesSheddingWithRetryAfter(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		ts, calls := shedThenServe(t, 2, status, "0")
		c := NewClient(ts.URL)
		resp, err := c.Fix(context.Background(), FixRequest{Filename: "v.c", Source: clientTestSource})
		if err != nil {
			t.Fatalf("status %d: client should have retried through shedding: %v", status, err)
		}
		if !resp.Changed {
			t.Errorf("status %d: expected a transforming fix response", status)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("status %d: want 3 attempts (2 shed + 1 served), got %d", status, got)
		}
		ts.Close()
	}
}

// TestClientRetryBudgetExhausted: persistent shedding surfaces the last
// status once MaxRetries is spent.
func TestClientRetryBudgetExhausted(t *testing.T) {
	ts, calls := shedThenServe(t, 1<<30, http.StatusTooManyRequests, "0")
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Fix(context.Background(), FixRequest{Filename: "v.c", Source: clientTestSource})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("want StatusError 429, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("want 3 attempts (1 + 2 retries), got %d", got)
	}
}

// TestClientNoRetryOnClientError: a 422 is the caller's problem and must
// not be retried.
func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "parse error"})
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	_, err := c.Fix(context.Background(), FixRequest{Filename: "v.c", Source: "not c at all"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want StatusError 422, got %v", err)
	}
	if se.Msg != "parse error" {
		t.Errorf("want decoded error body, got %q", se.Msg)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("want exactly 1 attempt, got %d", got)
	}
}

// TestClientContextCancelCutsRetrySleep: a cancelled context interrupts
// the Retry-After wait instead of sleeping it out.
func TestClientContextCancelCutsRetrySleep(t *testing.T) {
	ts, _ := shedThenServe(t, 1<<30, http.StatusServiceUnavailable, "30")
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetryAfter = time.Minute // do not clamp below the header
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Fix(ctx, FixRequest{Filename: "v.c", Source: clientTestSource})
	if err == nil {
		t.Fatal("want an error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation should cut the retry sleep short, took %s", elapsed)
	}
}

// TestClientRequestTimeout: the client-side request timeout bounds a
// hung server even when the caller passes a background context.
func TestClientRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release)
	c := NewClient(ts.URL)
	c.RequestTimeout = 150 * time.Millisecond
	start := time.Now()
	_, err := c.Fix(context.Background(), FixRequest{Filename: "v.c", Source: clientTestSource})
	if err == nil {
		t.Fatal("want a timeout error from a hung server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request timeout did not bound the call, took %s", elapsed)
	}
}

// TestClientParseRetryAfter covers both header encodings.
func TestClientParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("delta-seconds: want 2s, got %s", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("absent: want 0, got %s", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage: want 0, got %s", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 10*time.Second {
		t.Errorf("http-date: want (0s, 10s], got %s", d)
	}
}
