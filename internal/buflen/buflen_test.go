package buflen

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

// destOfFirst locates the first call to callee and returns its destination
// (first) argument together with the enclosing function and analyzer.
func destOfFirst(t *testing.T, src, callee string) (*Analyzer, *cast.FuncDef, cast.Expr) {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	a := NewAnalyzer(tu)
	for _, fn := range tu.Funcs {
		var dest cast.Expr
		cast.Inspect(fn.Body, func(n cast.Node) bool {
			if c, ok := n.(*cast.CallExpr); ok && dest == nil && c.Callee() == callee {
				if len(c.Args) > 0 {
					dest = c.Args[0]
				}
			}
			return true
		})
		if dest != nil {
			return a, fn, dest
		}
	}
	t.Fatalf("no call to %s found", callee)
	return nil, nil, nil
}

// wantSize asserts a successful size with the given C text.
func wantSize(t *testing.T, src, callee, want string) {
	t.Helper()
	a, fn, dest := destOfFirst(t, src, callee)
	sz, fail := a.BufferLength(fn, dest)
	if fail != nil {
		t.Fatalf("BufferLength failed: %v", fail)
	}
	if got := sz.CText(); got != want {
		t.Fatalf("size: got %q, want %q", got, want)
	}
}

// wantFail asserts failure with the given reason.
func wantFail(t *testing.T, src, callee string, reason FailReason) {
	t.Helper()
	a, fn, dest := destOfFirst(t, src, callee)
	_, fail := a.BufferLength(fn, dest)
	if fail == nil {
		t.Fatal("expected failure, got a size")
	}
	if fail.Reason != reason {
		t.Fatalf("reason: got %v (%s), want %v", fail.Reason, fail.Detail, reason)
	}
}

func TestPaperExampleSectionIIA4(t *testing.T) {
	// The motivating SLR example: dst is a pointer whose reaching
	// definition is an assignment from the array buf.
	wantSize(t, `
void example(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
}
`, "strcpy", "sizeof(buf)")
}

func TestPaperExampleLibpngStrcat(t *testing.T) {
	// libpng minigzip.c line 275: array destination.
	wantSize(t, `
void f(void) {
    char outfile[30];
    strcat(outfile, ".gz");
}
`, "strcat", "sizeof(outfile)")
}

func TestPaperExampleGmpMemcpy(t *testing.T) {
	// gmp mpq/set_str.c: heap-allocated destination sized by
	// malloc_usable_size.
	wantSize(t, `
void f(char *str, unsigned long numlen) {
    char *num;
    num = malloc(numlen + 1);
    memcpy(num, str, numlen);
}
`, "memcpy", "malloc_usable_size(num)")
}

func TestArrayDestination(t *testing.T) {
	wantSize(t, `
void f(void) {
    char dest[100];
    gets(dest);
}
`, "gets", "sizeof(dest)")
}

func TestPointerArithmeticPlus(t *testing.T) {
	// Lines 8-15: p + 2 shrinks the region by 2.
	wantSize(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    strcpy(p + 2, "x");
}
`, "strcpy", "sizeof(buf) - 2")
}

func TestPointerArithmeticMinus(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    p = p + 4;
    strcpy(p - 2, "x");
}
`, "strcpy", "sizeof(buf) - 2")
}

func TestPrefixIncrementDestination(t *testing.T) {
	// Lines 16-20: ++p means one byte less.
	wantSize(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    strcpy(++p, "x");
}
`, "strcpy", "sizeof(buf) - 1")
}

func TestPrefixDecrementDestination(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    p = p + 5;
    strcpy(--p, "x");
}
`, "strcpy", "sizeof(buf) - 4")
}

func TestCastDestination(t *testing.T) {
	// Lines 21-22.
	wantSize(t, `
void f(void) {
    char buf[16];
    memcpy((void*)buf, "x", 1);
}
`, "memcpy", "sizeof(buf)")
}

func TestDefChainThroughIncrement(t *testing.T) {
	// p++ as a *definition* reaching the use.
	wantSize(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    p++;
    strcpy(p, "x");
}
`, "strcpy", "sizeof(buf) - 1")
}

func TestDefChainCompoundAssign(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[20];
    char *p = buf;
    p += 5;
    strcpy(p, "x");
}
`, "strcpy", "sizeof(buf) - 5")
}

func TestDefChainDoubleHopIsAliased(t *testing.T) {
	// q's def is p; p and q then share the pointee buf, so the strict
	// ISALIASED test of line 27 refuses. This is the paper's letter: the
	// lines 33-34 recursion helps for array/cast/arithmetic right-hand
	// sides, while pointer-to-pointer copies trip the alias precondition.
	wantFail(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    char *q = p;
    strcpy(q, "x");
}
`, "strcpy", FailAliased)
}

func TestAddrOfIndexDestination(t *testing.T) {
	// &buf[3]: room shrinks by 3.
	wantSize(t, `
void f(void) {
    char buf[10];
    strcpy(&buf[3], "x");
}
`, "strcpy", "sizeof(buf) - 3")
}

func TestHeapViaCalloc(t *testing.T) {
	wantSize(t, `
void f(void) {
    char *p;
    p = calloc(10, 1);
    strcpy(p, "x");
}
`, "strcpy", "malloc_usable_size(p)")
}

func TestStructArrayMember(t *testing.T) {
	// Lines 36-37: array member sized by sizeof on the member access.
	wantSize(t, `
struct rec { char name[32]; int n; };
void f(void) {
    struct rec r;
    strcpy(r.name, "x");
}
`, "strcpy", "sizeof(r.name)")
}

func TestStructPointerMemberHeap(t *testing.T) {
	// Lines 47-48.
	wantSize(t, `
struct rec { char *buf; };
void f(void) {
    struct rec r;
    r.buf = malloc(64);
    strcpy(r.buf, "x");
}
`, "strcpy", "malloc_usable_size(r.buf)")
}

func TestStructPointerMemberAssignedArray(t *testing.T) {
	// Lines 49-50: recurse on the member's assigned value.
	wantSize(t, `
struct rec { char *buf; };
void f(void) {
    char backing[48];
    struct rec r;
    r.buf = backing;
    strcpy(r.buf, "x");
}
`, "strcpy", "sizeof(backing)")
}

// --- Failure classes (Section IV-B) ---

func TestFailParameterBuffer(t *testing.T) {
	// Class (1): buffer passed as a parameter.
	wantFail(t, `
void f(char *dst) {
    strcpy(dst, "x");
}
`, "strcpy", FailNoHeapAlloc)
}

func TestFailNoExplicitAllocation(t *testing.T) {
	// Class (1): def comes from an unknown function's result.
	wantFail(t, `
char *get_buffer(void);
void f(void) {
    char *p;
    p = get_buffer();
    strcpy(p, "x");
}
`, "strcpy", FailNoHeapAlloc)
}

func TestFailAliasedPointer(t *testing.T) {
	// Class (2)-adjacent: two pointers share the target.
	wantFail(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    char *q = buf;
    strcpy(p, "x");
    strcpy(q, "y");
}
`, "strcpy", FailAliased)
}

func TestFailAliasedStructMember(t *testing.T) {
	// Class (2): one member of the struct aliased makes the aggregate
	// aliased.
	wantFail(t, `
struct rec { char *buf; char *other; };
void f(void) {
    char a[10];
    char b[10];
    struct rec r;
    char *alias;
    r.buf = a;
    r.other = b;
    alias = b;
    strcpy(r.buf, "x");
}
`, "strcpy", FailAliased)
}

func TestFailArrayOfBuffers(t *testing.T) {
	// Class (3): no shape analysis on arrays of buffers.
	wantFail(t, `
void f(void) {
    char *bufs[4];
    bufs[0] = malloc(10);
    strcpy(bufs[0], "x");
}
`, "strcpy", FailArrayOfBuffers)
}

func TestFailTernaryAllocation(t *testing.T) {
	// Class (4): ternary with heap allocation in both branches.
	wantFail(t, `
void f(int c) {
    char *p;
    p = c ? malloc(10) : malloc(20);
    strcpy(p, "x");
}
`, "strcpy", FailTernaryAlloc)
}

func TestFailMultipleDefsAtMerge(t *testing.T) {
	wantFail(t, `
void f(int c) {
    char a[10], b[20];
    char *p;
    if (c) { p = a; } else { p = b; }
    strcpy(p, "x");
}
`, "strcpy", FailMultipleDefs)
}

func TestFailUninitializedPointer(t *testing.T) {
	wantFail(t, `
void f(void) {
    char *p;
    strcpy(p, "x");
}
`, "strcpy", FailNoDef)
}

func TestFailStructRedefinedBetweenDefAndUse(t *testing.T) {
	// Lines 42-46: whole struct redefined after the member was set.
	wantFail(t, `
struct rec { char *buf; };
void f(struct rec other) {
    char a[10];
    struct rec r;
    r.buf = a;
    r = other;
    strcpy(r.buf, "x");
}
`, "strcpy", FailStructRedefined)
}

func TestSizeCTextForms(t *testing.T) {
	tests := []struct {
		sz   Size
		want string
	}{
		{Size{Kind: SizeStatic, BaseText: "buf"}, "sizeof(buf)"},
		{Size{Kind: SizeStatic, BaseText: "buf", Adjust: -3}, "sizeof(buf) - 3"},
		{Size{Kind: SizeStatic, BaseText: "buf", Adjust: 2}, "sizeof(buf) + 2"},
		{Size{Kind: SizeHeap, BaseText: "p"}, "malloc_usable_size(p)"},
		{Size{}, ""},
	}
	for _, tt := range tests {
		if got := tt.sz.CText(); got != tt.want {
			t.Errorf("CText: got %q, want %q", got, tt.want)
		}
	}
}

func TestConstBytesForStaticArrays(t *testing.T) {
	a, fn, dest := destOfFirst(t, `
void f(void) {
    char dest[100];
    gets(dest);
}
`, "gets")
	sz, fail := a.BufferLength(fn, dest)
	if fail != nil {
		t.Fatal(fail)
	}
	if sz.ConstBytes != 100 {
		t.Fatalf("ConstBytes: got %d, want 100", sz.ConstBytes)
	}
}

func TestFailureErrorStrings(t *testing.T) {
	f := &Failure{Reason: FailAliased, Detail: "p"}
	if !strings.Contains(f.Error(), "aliased") {
		t.Fatalf("error text: %q", f.Error())
	}
	f2 := &Failure{Reason: FailNoDef}
	if f2.Error() == "" {
		t.Fatal("empty error text")
	}
}
