package cfg

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func TestNodeContainingSmallestWins(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(int n) {
    if (n > 0) {
        n = 1;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tu.Funcs[0])
	// Find the inner assignment expression.
	var assign cast.Expr
	cast.Inspect(tu, func(nd cast.Node) bool {
		if a, ok := nd.(*cast.AssignExpr); ok {
			assign = a
		}
		return true
	})
	node := g.NodeContaining(assign)
	if node == nil {
		t.Fatal("no node found")
	}
	if node.Kind != KindStmt {
		t.Fatalf("kind: %v", node.Kind)
	}
	// The condition belongs to the cond node, not the statement.
	var cond cast.Expr
	cast.Inspect(tu, func(nd cast.Node) bool {
		if b, ok := nd.(*cast.BinaryExpr); ok && b.Op == cast.BinaryGt {
			cond = b
		}
		return true
	})
	cnode := g.NodeContaining(cond)
	if cnode == nil || cnode.Kind != KindCond {
		t.Fatalf("condition node: %+v", cnode)
	}
}

func TestNodeContainingDeclInit(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void) {
    char buf[4];
    char *p = buf;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tu.Funcs[0])
	var use cast.Expr
	cast.Inspect(tu, func(nd cast.Node) bool {
		if id, ok := nd.(*cast.Ident); ok && id.Name == "buf" {
			use = id
		}
		return true
	})
	node := g.NodeContaining(use)
	if node == nil || node.Kind != KindDecl {
		t.Fatalf("decl-init use should map to the decl node, got %+v", node)
	}
	if node.Decl.Name != "p" {
		t.Fatalf("wrong decl: %s", node.Decl.Name)
	}
}

func TestNodeContainingForPost(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void) {
    int i;
    for (i = 0; i < 3; i++) {}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tu.Funcs[0])
	var post cast.Expr
	cast.Inspect(tu, func(nd cast.Node) bool {
		if p, ok := nd.(*cast.PostfixExpr); ok {
			post = p
		}
		return true
	})
	node := g.NodeContaining(post)
	if node == nil || node.Kind != KindPost {
		t.Fatalf("post expression node: %+v", node)
	}
}

func TestNodeContainingMissing(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void) { int i; i = 1; }
void g(void) { int j; j = 2; }
`)
	if err != nil {
		t.Fatal(err)
	}
	gf := Build(tu.Funcs[0])
	// An expression from g is not inside f's graph.
	var fromG cast.Expr
	cast.Inspect(tu.Funcs[1], func(nd cast.Node) bool {
		if a, ok := nd.(*cast.AssignExpr); ok {
			fromG = a
		}
		return true
	})
	if gf.NodeContaining(fromG) != nil {
		t.Fatal("foreign expression must not resolve")
	}
}
