package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event (the "X" complete-event form of
// the Trace Event Format): ts/dur are microseconds from the trace
// epoch, pid groups the whole run, tid is the worker lane.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form chrome://tracing and
// Perfetto both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders every recorded span as Chrome trace-event JSON.
// Spans are emitted in start order so the file diffs stably for
// identical runs of a sequential pipeline.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	spans := t.Spans()
	sortSpansForNesting(spans)
	events := make([]chromeEvent, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		args := make(map[string]string, len(s.Attrs)+1)
		if s.File != "" {
			args["file"] = s.File
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  durUS(s),
			Pid:  1,
			Tid:  s.Lane,
			Args: args,
		})
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// durUS reports the span length in microseconds, floored at a small
// positive value so sub-microsecond stages remain visible in viewers
// that drop zero-duration events.
func durUS(s *Span) float64 {
	us := float64(s.Dur.Microseconds())
	if us <= 0 {
		us = 0.5
	}
	return us
}

// WriteChromeTrace writes the Chrome trace-event JSON to w.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	b, err := t.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
