// Package obs is the pipeline's zero-dependency observability layer:
// a low-overhead span tracer with Chrome trace-event export and
// aggregated per-stage statistics (DESIGN.md Section 11).
//
// Every pipeline stage — parse, typecheck, the derived analyses of the
// snapshot layer, SLR, STR, the rewrite assembly, and the result-cache
// lookup — opens a Span against the Tracer carried in core.Options.
// A nil *Tracer is the disabled state: every method is nil-safe and the
// whole instrumented path collapses to a handful of nil checks, so the
// no-trace pipeline pays (and is held to, by CI) ≤ 2% overhead. The
// `cfix_notrace` build tag compiles span creation out entirely; the CI
// overhead gate benchmarks the default build against it.
//
// The package sits below internal/analysis and internal/core and must
// not import anything outside the standard library.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Canonical stage span names. The differential and smoke tests assert
// on these exact strings, and DESIGN.md Section 11 documents them as the
// naming scheme: lower-case, one token, no spaces.
const (
	StageParse     = "parse"
	StageTypecheck = "typecheck"
	StageCFG       = "cfg"
	StageReaching  = "reaching"
	StagePointsTo  = "pointsto"
	StageAliases   = "aliases"
	StageCallGraph = "callgraph"
	StageMayMod    = "maymod"
	StageBufLen    = "buflen"
	StageOverflow  = "overflow"
	StageIntflow   = "intflow"
	StageSLR       = "slr"
	StageSTR       = "str"
	StageRewrite   = "rewrite"
	StageFix       = "fix"
	StageLint      = "lint"
	StageCacheHit  = "cache_hit"
	StageCacheMiss = "cache_miss"
	// StageHashes is the per-function dependency-hash computation backing
	// incremental invalidation; StageIncremental is one edit-triggered
	// re-analysis inside an incremental session.
	StageHashes      = "hashes"
	StageIncremental = "incremental"
)

// Attr is one key/value annotation on a span (file, function count,
// solver iterations, degradation reason, ...). Values are strings so a
// span never forces an allocation-heavy fmt call on the hot path unless
// the caller already has something to say.
type Attr struct {
	Key   string
	Value string
}

// Span is one completed stage measurement. Start is monotonic time
// since the tracer's epoch, so spans from concurrent workers order
// correctly regardless of wall-clock adjustments.
type Span struct {
	// Name is the stage name (one of the Stage* constants).
	Name string
	// File is the translation unit the stage processed.
	File string
	// Lane is the worker lane (0 in single-threaded runs; the batch
	// pool assigns one lane per worker, which becomes the Chrome trace
	// tid).
	Lane int
	// Start is the offset from the tracer's epoch; Dur the span length.
	Start time.Duration
	Dur   time.Duration
	// Attrs carries the span's annotations in insertion order.
	Attrs []Attr
}

// AttrValue returns the value of the named attribute, "" when absent.
func (s *Span) AttrValue(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Degraded reports whether the span carries a "degraded" attribute —
// the stage had to cut its analysis short (budget exhaustion, skipped
// stage) and its result is conservative rather than precise.
func (s *Span) Degraded() bool {
	_, ok := s.AttrValue("degraded")
	return ok
}

// Tracer records spans from one run. It is safe for concurrent use by
// any number of worker goroutines; a nil *Tracer is the valid disabled
// tracer on which every method no-ops.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTracer starts a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Spans returns a copy of every recorded span in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WallClock returns the extent of the trace: the distance from the
// earliest span start to the latest span end. Zero when nothing was
// recorded.
func (t *Tracer) WallClock() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return 0
	}
	first := t.spans[0].Start
	var last time.Duration
	for i := range t.spans {
		s := &t.spans[i]
		if s.Start < first {
			first = s.Start
		}
		if end := s.Start + s.Dur; end > last {
			last = end
		}
	}
	return last - first
}

// record appends one completed span.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// ActiveSpan is an in-flight measurement returned by Start. The zero of
// usefulness is nil: every method on a nil *ActiveSpan no-ops, so
// instrumented code never branches on whether tracing is enabled.
type ActiveSpan struct {
	t       *Tracer
	started time.Time
	span    Span
}

// Attr annotates the span; nil-safe, chainable.
func (a *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
	return a
}

// End completes the span and records it. Safe to call on nil and safe
// to call under a panic (instrumented stages defer it), so a contained
// crash still leaves a closed, attributed span behind.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.Dur = time.Since(a.started)
	a.t.record(a.span)
}

// laneKey carries the worker lane through a context.
type laneKey struct{}

// WithLane tags ctx with a worker lane id. The batch pool tags each
// worker's context so spans land in per-worker Chrome trace lanes.
func WithLane(ctx context.Context, lane int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, laneKey{}, lane)
}

// LaneFrom extracts the worker lane from ctx; 0 when untagged.
func LaneFrom(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	if lane, ok := ctx.Value(laneKey{}).(int); ok {
		return lane
	}
	return 0
}

// sortSpansForNesting orders spans so that a parent precedes its
// children: by lane, then start ascending, then duration descending.
func sortSpansForNesting(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Lane != spans[j].Lane {
			return spans[i].Lane < spans[j].Lane
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur
	})
}
