package main

import (
	"strings"
	"unicode/utf8"
)

// utf16Len counts the UTF-16 code units encoding r: two for the
// supplementary planes (surrogate pair), one otherwise.
func utf16Len(r rune) int {
	if r >= 0x10000 {
		return 2
	}
	return 1
}

// LSP positions count lines by \n and characters in UTF-16 code units
// (the protocol's default encoding). The session and the pipeline work
// in byte offsets, so every boundary crossing goes through these two
// conversions. Positions past the end of a line or file clamp, which is
// what the spec prescribes for out-of-range positions.

// byteOffset converts an LSP position to a byte offset into text.
func byteOffset(text string, p lspPosition) int {
	off := 0
	for line := 0; line < p.Line; line++ {
		nl := strings.IndexByte(text[off:], '\n')
		if nl < 0 {
			return len(text)
		}
		off += nl + 1
	}
	// Walk the line rune-by-rune, spending UTF-16 units.
	units := p.Character
	for units > 0 && off < len(text) && text[off] != '\n' {
		r, size := utf8.DecodeRuneInString(text[off:])
		units -= utf16Len(r)
		if units < 0 {
			break
		}
		off += size
	}
	return off
}

// lspPos converts a byte offset into text to an LSP position.
func lspPos(text string, off int) lspPosition {
	if off > len(text) {
		off = len(text)
	}
	line := strings.Count(text[:off], "\n")
	lineStart := 0
	if i := strings.LastIndexByte(text[:off], '\n'); i >= 0 {
		lineStart = i + 1
	}
	units := 0
	for _, r := range text[lineStart:off] {
		units += utf16Len(r)
	}
	return lspPosition{Line: line, Character: units}
}

// lspRangeOf converts a byte extent to an LSP range.
func lspRangeOf(text string, pos, end int) lspRange {
	return lspRange{Start: lspPos(text, pos), End: lspPos(text, end)}
}
