// Command cfixload drives a cfixd (or cfixd -route fleet) with a
// service-shaped workload and writes the measured service-level numbers
// as BENCH_service.json — the service counterpart of cmd/experiments'
// BENCH_pipeline.json.
//
// The workload is the synthetic SAMATE corpus with zipf-distributed
// file popularity (a few hot translation units, a long cold tail — the
// shape a CI fleet actually sees), a configurable mutation rate (a
// mutated request gets a unique source suffix, forcing a fingerprint
// miss the way an edited file does), and a stepped concurrency ramp so
// the saturation throughput is measured rather than guessed.
//
// Usage:
//
//	cfixload -target http://host:port [flags]
//
//	-target url      cfixd or router base URL (required)
//	-requests n      total requests across the ramp (default 500)
//	-workers n       peak concurrency, reached at the last ramp step
//	                 (default 16)
//	-ramp-steps n    concurrency ramp steps (default 4; 1 = flat)
//	-zipf-s s        zipf exponent for file popularity (default 1.2;
//	                 must be > 1)
//	-mutate p        fraction of requests mutated to force cache misses
//	                 (default 0.1)
//	-seed n          workload PRNG seed (default 1)
//	-timeout d       per-request client timeout (default 2m)
//	-out path        report path (default BENCH_service.json; "-" for
//	                 stdout)
//
// Every request failure (after the client's own bounded 429/503
// retries) is counted and reported; any failure makes the exit status
// nonzero, so a CI chaos job can assert "zero failed requests" by exit
// code alone.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/samate"
	"repro/pkg/cfix"
)

// Report is the BENCH_service.json schema.
type Report struct {
	Suite     string `json:"suite"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Target string `json:"target"`
	// Router reports whether the target identified itself as a fleet
	// router in /metrics; the retry/hedge rates only exist then.
	Router bool `json:"router"`

	Requests       int     `json:"requests"`
	Failures       int     `json:"failures"`
	UniquePrograms int     `json:"unique_programs"`
	ZipfS          float64 `json:"zipf_s"`
	MutationRate   float64 `json:"mutation_rate"`
	Seed           int64   `json:"seed"`
	PeakWorkers    int     `json:"peak_workers"`

	WallMs     float64 `json:"wall_ms"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	OverallQPS float64 `json:"overall_qps"`
	// SaturationQPS is the best throughput any ramp step sustained —
	// the capacity estimate the ramp exists to produce.
	SaturationQPS float64 `json:"saturation_qps"`

	// HitRatio is the fraction of successful responses served from a
	// backend result cache (the wire Cached flag), visible identically
	// through the router and a single daemon.
	HitRatio float64 `json:"hit_ratio"`

	// Retry/hedge rates are per request routed through a fleet router,
	// read as /metrics deltas around the run; zero for a single daemon.
	RetryRate float64 `json:"retry_rate"`
	HedgeRate float64 `json:"hedge_rate"`
	Routed    int64   `json:"routed_delta,omitempty"`
	Retried   int64   `json:"retried_delta,omitempty"`
	Hedged    int64   `json:"hedged_delta,omitempty"`
	Broken    int64   `json:"broken_delta,omitempty"`

	Steps []Step `json:"steps"`
}

// Step is one rung of the concurrency ramp.
type Step struct {
	Workers  int     `json:"workers"`
	Requests int     `json:"requests"`
	Failures int     `json:"failures"`
	QPS      float64 `json:"qps"`
	P99Ms    float64 `json:"p99_ms"`
}

func main() { os.Exit(run()) }

func run() int {
	var (
		target    = flag.String("target", "", "cfixd or router base URL (required)")
		requests  = flag.Int("requests", 500, "total requests across the ramp")
		workers   = flag.Int("workers", 16, "peak concurrency, reached at the last ramp step")
		rampSteps = flag.Int("ramp-steps", 4, "concurrency ramp steps (1 = flat)")
		zipfS     = flag.Float64("zipf-s", 1.2, "zipf exponent for file popularity (> 1)")
		mutate    = flag.Float64("mutate", 0.1, "fraction of requests mutated to force cache misses (0..1)")
		seed      = flag.Int64("seed", 1, "workload PRNG seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		out       = flag.String("out", "BENCH_service.json", `report path ("-" for stdout)`)
	)
	flag.Parse()
	if *target == "" || *requests <= 0 || *workers <= 0 || *rampSteps <= 0 ||
		*zipfS <= 1 || *mutate < 0 || *mutate > 1 || flag.NArg() > 0 {
		flag.Usage()
		return 2
	}

	// The corpus, in a deterministic order so (seed, flags) pins the
	// whole workload.
	byCWE := samate.GenerateAll()
	cwes := make([]int, 0, len(byCWE))
	for cwe := range byCWE {
		cwes = append(cwes, cwe)
	}
	sort.Ints(cwes)
	var corpus []samate.Program
	for _, cwe := range cwes {
		corpus = append(corpus, byCWE[cwe]...)
	}
	if len(corpus) == 0 {
		fmt.Fprintln(os.Stderr, "cfixload: empty SAMATE corpus")
		return 1
	}

	client := cfix.NewClient(*target)
	client.RequestTimeout = *timeout
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cfixload: target %s not healthy: %v\n", *target, err)
		return 1
	}
	before, err := client.MetricsRaw(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfixload: reading /metrics: %v\n", err)
		return 1
	}

	// Pre-plan every request so the measured section does no PRNG work
	// and the plan is independent of scheduling: request i targets
	// corpus[plan[i]] and, if mutated[i] != 0, appends a unique suffix.
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(corpus)-1))
	plan := make([]int, *requests)
	mutated := make([]int, *requests)
	nmut := 0
	for i := range plan {
		plan[i] = int(zipf.Uint64())
		if rng.Float64() < *mutate {
			nmut++
			mutated[i] = nmut
		}
	}

	type sample struct {
		ms     float64
		cached bool
		failed bool
	}
	samples := make([]sample, *requests)
	runRange := func(from, to, conc int) time.Duration {
		var wg sync.WaitGroup
		next := make(chan int)
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					p := corpus[plan[i]]
					src := p.Source
					if mutated[i] != 0 {
						src = fmt.Sprintf("%s\n// cfixload mutation %d-%d\n", src, *seed, mutated[i])
					}
					t0 := time.Now()
					resp, err := client.Fix(ctx, cfix.FixRequest{Filename: p.ID + ".c", Source: src})
					samples[i].ms = float64(time.Since(t0)) / float64(time.Millisecond)
					if err != nil {
						samples[i].failed = true
						fmt.Fprintf(os.Stderr, "cfixload: request %d (%s): %v\n", i, p.ID, err)
						continue
					}
					samples[i].cached = resp.Cached
				}
			}()
		}
		for i := from; i < to; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		return time.Since(start)
	}

	// The ramp: requests split evenly across steps, concurrency rising
	// linearly to -workers at the last step.
	rep := Report{
		Suite:          "cfix-service-load",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Target:         *target,
		Requests:       *requests,
		UniquePrograms: len(corpus),
		ZipfS:          *zipfS,
		MutationRate:   *mutate,
		Seed:           *seed,
		PeakWorkers:    *workers,
	}
	wallStart := time.Now()
	for s := 0; s < *rampSteps; s++ {
		from := *requests * s / *rampSteps
		to := *requests * (s + 1) / *rampSteps
		if from == to {
			continue
		}
		conc := max(1, *workers*(s+1)/(*rampSteps))
		elapsed := runRange(from, to, conc)
		step := Step{Workers: conc, Requests: to - from}
		var stepMs []float64
		for i := from; i < to; i++ {
			if samples[i].failed {
				step.Failures++
			} else {
				stepMs = append(stepMs, samples[i].ms)
			}
		}
		if elapsed > 0 {
			step.QPS = float64(to-from) / elapsed.Seconds()
		}
		step.P99Ms = percentile(stepMs, 0.99)
		if step.QPS > rep.SaturationQPS {
			rep.SaturationQPS = step.QPS
		}
		rep.Steps = append(rep.Steps, step)
		fmt.Fprintf(os.Stderr, "cfixload: step %d/%d: %d requests @ %d workers: %.1f qps, p99 %.1fms, %d failures\n",
			s+1, *rampSteps, step.Requests, conc, step.QPS, step.P99Ms, step.Failures)
	}
	wall := time.Since(wallStart)

	var okMs []float64
	var sum float64
	cachedN := 0
	for _, sm := range samples {
		if sm.failed {
			rep.Failures++
			continue
		}
		okMs = append(okMs, sm.ms)
		sum += sm.ms
		if sm.cached {
			cachedN++
		}
	}
	rep.WallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		rep.OverallQPS = float64(*requests) / wall.Seconds()
	}
	if len(okMs) > 0 {
		rep.MeanMs = sum / float64(len(okMs))
		rep.P50Ms = percentile(okMs, 0.50)
		rep.P90Ms = percentile(okMs, 0.90)
		rep.P99Ms = percentile(okMs, 0.99)
		sort.Float64s(okMs)
		rep.MaxMs = okMs[len(okMs)-1]
		rep.HitRatio = float64(cachedN) / float64(len(okMs))
	}

	// Fleet counters, as deltas around the run; only a router has them.
	if after, err := client.MetricsRaw(ctx); err == nil {
		if isRouter, _ := after["router"].(bool); isRouter {
			rep.Router = true
			rep.Routed = delta(before, after, "routed_total")
			rep.Retried = delta(before, after, "retried_total")
			rep.Hedged = delta(before, after, "hedged_total")
			rep.Broken = delta(before, after, "broken_total")
			rep.RetryRate = float64(rep.Retried) / float64(*requests)
			rep.HedgeRate = float64(rep.Hedged) / float64(*requests)
		}
	} else {
		fmt.Fprintf(os.Stderr, "cfixload: reading /metrics after the run: %v\n", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfixload: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "cfixload: writing report: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "cfixload: %d requests, %d failures, p50 %.1fms p99 %.1fms, saturation %.1f qps, hit ratio %.2f\n",
		rep.Requests, rep.Failures, rep.P50Ms, rep.P99Ms, rep.SaturationQPS, rep.HitRatio)
	if rep.Failures > 0 {
		return 1
	}
	return 0
}

// percentile returns the pth (0..1) percentile of ms by
// nearest-rank; 0 for an empty slice. Sorts a copy.
func percentile(ms []float64, p float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// delta reads an int64 counter from two /metrics snapshots (JSON
// numbers decode as float64) and returns its increase.
func delta(before, after map[string]any, key string) int64 {
	b, _ := before[key].(float64)
	a, _ := after[key].(float64)
	return int64(a - b)
}
