package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cparse"
	"repro/pkg/cfix"
)

// overflowing provably overflows, so fix rewrites it and lint flags it.
const overflowing = `
void f(void) {
    char buf[8];
    strcpy(buf, "this literal exceeds eight bytes");
}
`

// clean has no overflow and no transformation candidates beyond STR.
const clean = `
int add(int a, int b) {
    return a + b;
}
`

// syncBuffer is a log sink safe to read while the server writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newTestServer starts the API over httptest with a captured log.
func newTestServer(t *testing.T, conf Config) (*Server, *httptest.Server, *syncBuffer) {
	t.Helper()
	logbuf := &syncBuffer{}
	conf.Log = log.New(logbuf, "", 0)
	s := New(conf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, logbuf
}

func newCache(t *testing.T) *cfix.ResultCache {
	t.Helper()
	rc, err := cfix.NewResultCache(32<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// postJSON posts one request and decodes the response into out.
func postJSON(t *testing.T, url string, body any, out any) (status int, raw string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode, string(data)
}

// getJSON fetches one endpoint and decodes it.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFixEquivalenceAndCacheHit is the PR's acceptance test: concurrent
// /v1/fix requests return byte-identical output to a one-shot cfix run
// on the same input/options, and a repeated identical request is a
// cache hit — verified both through /metrics counters and a parse-count
// assertion (a hit performs zero parses).
func TestFixEquivalenceAndCacheHit(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Cache: newCache(t)})

	oneShot, err := cfix.Fix("equiv.c", overflowing, cfix.Options{SelectAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !oneShot.Changed() {
		t.Fatal("fixture must be transformable")
	}

	req := cfix.FixRequest{Filename: "equiv.c", Source: overflowing}
	const goroutines = 8
	var wg sync.WaitGroup
	responses := make([]cfix.FixResponse, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/fix", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if responses[i].Source != oneShot.Source {
			t.Fatalf("request %d: served source differs from one-shot cfix output", i)
		}
		if responses[i].Summary != oneShot.Summary() {
			t.Fatalf("request %d: served summary differs from one-shot cfix", i)
		}
	}

	// A repeated identical request must be answered from the cache:
	// zero parses, cached flag set, /metrics hit counter bumped.
	before := cparse.Parses()
	var warm cfix.FixResponse
	if status, raw := postJSON(t, ts.URL+"/v1/fix", req, &warm); status != http.StatusOK {
		t.Fatalf("warm request: %d %s", status, raw)
	}
	if got := cparse.Parses() - before; got != 0 {
		t.Fatalf("cache hit parsed %d times, want 0", got)
	}
	if !warm.Cached {
		t.Fatal("warm response not marked cached")
	}
	if warm.Source != oneShot.Source {
		t.Fatal("cached source differs from one-shot cfix output")
	}
	var m Snapshot
	if status := getJSON(t, ts.URL+"/metrics", &m); status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	if m.Cache == nil || m.Cache.Hits < 1 {
		t.Fatalf("metrics do not show the cache hit: %+v", m.Cache)
	}
	if m.Cache.Misses < 1 {
		t.Fatalf("metrics lost the cold miss: %+v", m.Cache)
	}
	if m.Requests.Fix != goroutines+1 {
		t.Fatalf("fix request counter = %d, want %d", m.Requests.Fix, goroutines+1)
	}
}

func TestLintRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp cfix.LintResponse
	status, raw := postJSON(t, ts.URL+"/v1/lint",
		cfix.LintRequest{Filename: "vuln.c", Source: overflowing}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint: %d %s", status, raw)
	}
	if !resp.Definite || len(resp.Findings) == 0 {
		t.Fatalf("lint missed the definite overflow: %+v", resp)
	}
	f := resp.Findings[0]
	if f.File != "vuln.c" || f.CWE == 0 || f.CWEName == "" || f.Severity == "" {
		t.Fatalf("finding wire shape incomplete: %+v", f)
	}

	var cleanResp cfix.LintResponse
	if status, raw := postJSON(t, ts.URL+"/v1/lint",
		cfix.LintRequest{Filename: "ok.c", Source: clean}, &cleanResp); status != http.StatusOK {
		t.Fatalf("clean lint: %d %s", status, raw)
	}
	if cleanResp.Definite || len(cleanResp.Findings) != 0 {
		t.Fatalf("clean file flagged: %+v", cleanResp)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Cache: newCache(t)})
	req := cfix.BatchRequest{Files: []cfix.BatchFile{
		{Filename: "a.c", Source: overflowing},
		{Filename: "broken.c", Source: "int main( {"},
		{Filename: "c.c", Source: clean},
	}}
	var resp cfix.BatchResponse
	status, raw := postJSON(t, ts.URL+"/v1/batch", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Fix == nil || !resp.Results[0].Fix.Changed {
		t.Fatalf("a.c not transformed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[1].Fix != nil {
		t.Fatalf("broken.c did not fail in isolation: %+v", resp.Results[1])
	}
	if resp.Results[2].Fix == nil {
		t.Fatalf("c.c failed: %+v", resp.Results[2])
	}

	// Lint flavor over the same files.
	req.Lint = true
	var lintResp cfix.BatchResponse
	if status, raw := postJSON(t, ts.URL+"/v1/batch", req, &lintResp); status != http.StatusOK {
		t.Fatalf("batch lint: %d %s", status, raw)
	}
	if lintResp.Results[0].Lint == nil || !lintResp.Results[0].Lint.Definite {
		t.Fatalf("batch lint missed the overflow: %+v", lintResp.Results[0])
	}
	if lintResp.Results[1].Error == "" {
		t.Fatal("batch lint hid the parse failure")
	}
}

func TestHealthzAndMethodDiscipline(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var health struct {
		Status string `json:"status"`
	}
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", status, health)
	}
	resp, err := http.Get(ts.URL + "/v1/fix")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/fix = %d, want 405", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid json", "{not json", http.StatusBadRequest},
		{"missing source", `{"filename":"x.c"}`, http.StatusBadRequest},
		{"unknown field", `{"source":"int x;","bogus":1}`, http.StatusBadRequest},
		{"unparseable C", `{"source":"int main( {"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/fix", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestRequestSizeCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRequestBytes: 256})
	big := cfix.FixRequest{Source: strings.Repeat("/* pad */", 200)}
	status, raw := postJSON(t, ts.URL+"/v1/fix", big, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", status, raw)
	}
}

// TestAdmissionControl429 saturates the single in-flight slot with a
// stalled request and checks that the next request is turned away with
// 429 + Retry-After instead of queueing behind it.
func TestAdmissionControl429(t *testing.T) {
	defer analysis.InjectFault("slow.c", analysis.Fault{Delay: 30 * time.Second})()
	s, ts, _ := newTestServer(t, Config{MaxInFlight: 1})

	slowCtx, cancelSlow := context.WithCancel(context.Background())
	defer cancelSlow()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		b, _ := json.Marshal(cfix.FixRequest{Filename: "slow.c", Source: clean})
		req, _ := http.NewRequestWithContext(slowCtx, "POST", ts.URL+"/v1/fix", bytes.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, "slot saturation", func() bool { return s.Metrics().InFlight == 1 })

	resp, err := http.Post(ts.URL+"/v1/fix", "application/json",
		strings.NewReader(`{"source":"int x;"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if got := s.Metrics().Rejected429; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// Healthz must answer even at saturation — it is never queued
	// behind analysis work.
	if status := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz under load: %d", status)
	}

	// Free the slot: the client abandons the stalled request, the
	// context-aware delay aborts, and capacity returns.
	cancelSlow()
	<-slowDone
	waitFor(t, "slot release", func() bool { return s.Metrics().InFlight == 0 })
	var ok cfix.FixResponse
	if status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Source: clean}, &ok); status != http.StatusOK {
		t.Fatalf("after release: %d %s", status, raw)
	}
}

// TestPanicContained injects a panic into the per-file pipeline and
// checks the containment contract: the request answers 500, the
// recovered stack lands in the log (not in the response), the counters
// see it, and the daemon keeps serving.
func TestPanicContained(t *testing.T) {
	defer analysis.InjectFault("boom.c", analysis.Fault{Panic: true})()
	s, ts, logbuf := newTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "boom.c", Source: clean}, nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d %s, want 500", status, raw)
	}
	if strings.Contains(raw, "goroutine") || strings.Contains(raw, "injected fault") {
		t.Fatalf("response leaked the panic internals: %s", raw)
	}
	logged := logbuf.String()
	if !strings.Contains(logged, "panic recovered") || !strings.Contains(logged, "injected fault: boom.c") {
		t.Fatalf("log missing the recovered panic: %q", logged)
	}
	if !strings.Contains(logged, "goroutine") {
		t.Fatalf("log missing the recovered stack: %q", logged)
	}
	if got := s.Metrics().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	// Not a crashed daemon: it still serves.
	if status := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz after panic: %d", status)
	}
	var okResp cfix.FixResponse
	if status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "fine.c", Source: overflowing}, &okResp); status != http.StatusOK || !okResp.Changed {
		t.Fatalf("fix after panic: %d %s", status, raw)
	}
}

// TestBatchPanicIsolation: a panic in one batch file is contained to
// that file's result slot.
func TestBatchPanicIsolation(t *testing.T) {
	defer analysis.InjectFault("boom.c", analysis.Fault{Panic: true})()
	s, ts, logbuf := newTestServer(t, Config{})
	var resp cfix.BatchResponse
	status, raw := postJSON(t, ts.URL+"/v1/batch", cfix.BatchRequest{Files: []cfix.BatchFile{
		{Filename: "boom.c", Source: clean},
		{Filename: "ok.c", Source: overflowing},
	}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch with panicking file: %d %s", status, raw)
	}
	if !strings.Contains(resp.Results[0].Error, "panic contained") {
		t.Fatalf("boom.c result: %+v", resp.Results[0])
	}
	if resp.Results[1].Fix == nil || !resp.Results[1].Fix.Changed {
		t.Fatalf("ok.c caught boom.c's shrapnel: %+v", resp.Results[1])
	}
	if s.Metrics().PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", s.Metrics().PanicsRecovered)
	}
	if !strings.Contains(logbuf.String(), "panic contained in batch file boom.c") {
		t.Fatalf("log missing batch panic: %q", logbuf.String())
	}
}

// TestDeadlineExceeded504: a stalled request that outlives its
// requested deadline answers 504 instead of hanging.
func TestDeadlineExceeded504(t *testing.T) {
	defer analysis.InjectFault("stall.c", analysis.Fault{Delay: 30 * time.Second})()
	_, ts, _ := newTestServer(t, Config{})
	start := time.Now()
	status, raw := postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "stall.c",
		Source:   clean,
		Options:  cfix.RequestOptions{TimeoutMs: 50},
	}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled request: %d %s, want 504", status, raw)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestTimeoutClamp: a request may not ask for more than the server's
// maximum deadline.
func TestTimeoutClamp(t *testing.T) {
	defer analysis.InjectFault("clamp.c", analysis.Fault{Delay: 30 * time.Second})()
	_, ts, _ := newTestServer(t, Config{MaxTimeout: 50 * time.Millisecond})
	start := time.Now()
	status, _ := postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "clamp.c",
		Source:   clean,
		Options:  cfix.RequestOptions{TimeoutMs: 600_000},
	}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("clamped request: %d, want 504", status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("clamp did not bite: took %v", elapsed)
	}
}

// TestGracefulDrain: shutting the server down waits for the in-flight
// request, which completes successfully; new connections are refused.
func TestGracefulDrain(t *testing.T) {
	defer analysis.InjectFault("drain.c", analysis.Fault{Delay: 300 * time.Millisecond})()
	s, ts, _ := newTestServer(t, Config{})

	type result struct {
		status int
		resp   cfix.FixResponse
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var r result
		b, _ := json.Marshal(cfix.FixRequest{Filename: "drain.c", Source: overflowing})
		resp, err := http.Post(ts.URL+"/v1/fix", "application/json", bytes.NewReader(b))
		if err != nil {
			r.err = err
			done <- r
			return
		}
		defer resp.Body.Close()
		r.status = resp.StatusCode
		r.err = json.NewDecoder(resp.Body).Decode(&r.resp)
		done <- r
	}()
	waitFor(t, "request in flight", func() bool { return s.Metrics().InFlight == 1 })

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutCtx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request died during drain: %v", r.err)
	}
	if r.status != http.StatusOK || !r.resp.Changed {
		t.Fatalf("in-flight request not completed during drain: %d %+v", r.status, r.resp)
	}
}

// TestMetricsShape exercises the remaining counters: latency buckets
// accumulate, degraded responses are counted, uptime advances.
func TestMetricsShape(t *testing.T) {
	defer analysis.InjectFault("deg.c", analysis.Fault{Budget: 1})()
	s, ts, _ := newTestServer(t, Config{Cache: newCache(t)})

	var resp cfix.LintResponse
	if status, raw := postJSON(t, ts.URL+"/v1/lint",
		cfix.LintRequest{Filename: "deg.c", Source: overflowing}, &resp); status != http.StatusOK {
		t.Fatalf("degraded lint: %d %s", status, raw)
	}
	if len(resp.Degraded) == 0 {
		t.Fatalf("budget exhaustion not surfaced in response: %+v", resp)
	}
	m := s.Metrics()
	if m.DegradedResponses != 1 {
		t.Fatalf("degraded_responses = %d, want 1", m.DegradedResponses)
	}
	var latencyTotal int64
	for _, n := range m.LatencyBuckets {
		latencyTotal += n
	}
	if latencyTotal != 1 {
		t.Fatalf("latency histogram count = %d, want 1 (%+v)", latencyTotal, m.LatencyBuckets)
	}
	if m.UptimeSeconds <= 0 {
		t.Fatal("uptime not advancing")
	}
	if m.Requests.Lint != 1 {
		t.Fatalf("lint counter = %d, want 1", m.Requests.Lint)
	}
}
