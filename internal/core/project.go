package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/buflen"
	"repro/internal/cpp"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/overflow"
	"repro/internal/rewrite"
	"repro/internal/slr"
	"repro/internal/str"
)

// This file is the project-mode pipeline: the same transformations as
// Fix/Analyze, but run on preprocessed text (internal/cpp) while editing
// the text the user wrote. The analyses see what the compiler sees —
// headers inlined, macros expanded, conditionals resolved — and every
// resulting edit is remapped through the preprocessor's source map back
// into the original file. Edits that land inside a macro expansion or an
// included header cannot be applied in place; their whole repair group
// (one SLR call site, one STR function) is declined with an explicit
// failure reason rather than silently miswriting the user's text.

// IncludeHash fingerprints the content of every file the preprocessor
// inlined besides the main file. It feeds Options.IncludeHash so cache
// keys and round fingerprints change when a header changes. Empty when
// the translation unit is self-contained.
func IncludeHash(res *cpp.Result) string {
	main := res.Map.MainFile()
	var lines []string
	for _, name := range res.Map.Files() {
		if name == main {
			continue
		}
		content, _ := res.Map.FileContent(name)
		sum := sha256.Sum256([]byte(content))
		lines = append(lines, name+"="+hex.EncodeToString(sum[:8]))
	}
	if len(lines) == 0 {
		return ""
	}
	sort.Strings(lines)
	h := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(h[:8])
}

// remapEdits maps each edit's extent from preprocessed coordinates back
// into the main original file. An edit remaps cleanly when the source
// map proves byte-exactness and the target is the main file (not a
// header). Owner groups containing any unclean edit are declined
// wholesale — a repair is all-or-nothing — and reported in declined as
// owner -> human-readable reason. Ownerless edits are declined
// individually.
func remapEdits(edits []rewrite.Edit, m *cpp.SourceMap) (kept []rewrite.Edit, declined map[string]string) {
	declined = make(map[string]string)
	type mapped struct {
		edit rewrite.Edit
		ok   bool
	}
	ms := make([]mapped, 0, len(edits))
	for _, e := range edits {
		org, exact := m.ToOriginal(e.Extent)
		ok := exact && org.File == m.MainFile()
		if !ok {
			reason := "maps into included file " + org.File
			if org.Macro != "" {
				reason = "maps into expansion of macro " + org.Macro
			} else if org.File == m.MainFile() {
				reason = "does not map byte-exactly to the original text"
			}
			if _, dup := declined[e.Owner]; !dup {
				declined[e.Owner] = reason
			}
		}
		re := e
		re.Extent = org.Extent
		ms = append(ms, mapped{edit: re, ok: ok})
	}
	for _, me := range ms {
		if !me.ok {
			continue
		}
		if _, bad := declined[me.edit.Owner]; bad && me.edit.Owner != "" {
			continue
		}
		kept = append(kept, me.edit)
	}
	return kept, declined
}

// remapFindings rewrites finding locations from preprocessed coordinates
// to original ones: Pos becomes the original position (for macro
// expansions, the invocation site) and Extent the tightest original
// range the map knows.
func remapFindings(fs []overflow.Finding, m *cpp.SourceMap) {
	for i := range fs {
		if !fs[i].Extent.IsValid() {
			continue
		}
		org, _ := m.ToOriginal(fs[i].Extent)
		fs[i].Pos = m.Position(fs[i].Extent.Pos)
		fs[i].Extent = org.Extent
	}
}

// cppDegradations renders preprocessor diagnostics and truncations as
// report degradations, so conditional-evaluation failures or a blown
// expansion budget never read as a clean analysis.
func cppDegradations(res *cpp.Result) []string {
	var out []string
	for _, e := range res.Errors {
		out = append(out, "cpp: "+e)
	}
	for _, miss := range res.Missing {
		out = append(out, "cpp: include not resolved (passed through): "+miss)
	}
	return out
}

// AnalyzePreprocessed preprocesses one translation unit and runs the
// lint oracles over the result, returning findings located in the
// ORIGINAL source coordinates (macro-expanded findings point at the
// invocation site). The preprocessed form is returned alongside so
// project drivers can reuse its include list and source map. Caching
// (opts.Cache) keys on the preprocessed text plus Options.IncludeHash,
// so a header edit invalidates every includer.
func AnalyzePreprocessed(ctx context.Context, filename, source string, cppOpts cpp.Options, opts Options) (*LintReport, *cpp.Result, error) {
	pp, err := cpp.Preprocess(filename, source, cppOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: preprocess %s: %w", filename, err)
	}
	opts.IncludeHash = IncludeHash(pp)
	rep, err := AnalyzeReport(ctx, filename, pp.Text, opts)
	if err != nil {
		return nil, pp, err
	}
	remapFindings(rep.Findings, pp.Map)
	rep.Degraded = dedupStrings(append(rep.Degraded, cppDegradations(pp)...))
	return rep, pp, nil
}

// FixPreprocessed is Fix in project mode: it preprocesses the unit,
// runs lint + SLR + STR on the preprocessed text, and applies the
// surviving repairs to the ORIGINAL source — the text the user wrote.
//
// The two transformation rounds mirror fix(): SLR analyzes the first
// preprocess, its remapped edits are applied to the original, and STR
// analyzes a second preprocess of that already-SLR-repaired original, so
// its analysis sees exactly the text its own edits will land in.
//
// Differences from Fix, all forced by coordinate remapping:
//   - Options.SelectOffset is not supported (it addresses original
//     coordinates; the transformer works in preprocessed ones) and
//     returns an error when >= 0.
//   - Repairs whose edits land inside macro expansions or included
//     headers are declined with FailMacroOrHeader instead of applied.
//   - Options.Cache is not consulted for the fix itself (the two-round
//     shape does not fit the single-payload result cache); lint-only
//     project calls go through AnalyzePreprocessed, which does cache.
//
// Report positions (sites, variables, findings) are in original
// coordinates. The returned cpp.Result is the FIRST round's preprocess
// of the unmodified input.
func FixPreprocessed(ctx context.Context, filename, source string, cppOpts cpp.Options, opts Options) (rep *Report, ppOut *cpp.Result, err error) {
	defer fault.Recover(&err)
	if opts.SelectOffset >= 0 {
		return nil, nil, fmt.Errorf("core: SelectOffset is not supported in project mode")
	}
	cs, err := parseChecks(opts.Checks)
	if err != nil {
		return nil, nil, err
	}
	be, err := backend.Get(opts.Backend)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := fileCtx(ctx, opts)
	defer cancel()

	fileSpan := opts.Tracer.Start(ctx, obs.StageFix, filename)
	defer fileSpan.End()

	pp, err := cpp.Preprocess(filename, source, cppOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: preprocess %s: %w", filename, err)
	}
	ppOut = pp
	opts.IncludeHash = IncludeHash(pp)

	rep = &Report{Source: source, Backend: be.Name()}
	conf := analysis.Config{Limits: opts.limits(ctx), Tracer: opts.Tracer}
	if len(opts.ExternSeeds) > 0 {
		oo := overflow.DefaultOptions()
		oo.ExternSeeds = opts.ExternSeeds
		conf.Overflow = &oo
	}

	snap, err := analysis.ParseCtx(ctx, filename, pp.Text, conf)
	if err != nil {
		return nil, pp, fmt.Errorf("core: parse for SLR: %w", err)
	}

	if opts.Lint {
		if lintErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageLint, filename)
			defer sp.End()
			rep.Findings = lintFindings(snap, cs)
			sp.Attr("findings", fmt.Sprint(len(rep.Findings)))
			return nil
		}); lintErr != nil {
			if !opts.KeepGoing {
				return nil, pp, fmt.Errorf("core: lint: %w", lintErr)
			}
			rep.Degraded = append(rep.Degraded, "lint skipped: "+firstLine(lintErr))
		}
	}

	// Round 1: SLR on the first preprocess; survivors edit the original.
	current := source
	if !opts.DisableSLR {
		slrErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageSLR, filename)
			defer sp.End()
			res, err := slr.NewTransformerSnapBackend(snap, be).ApplyAll()
			if err != nil {
				sp.Attr("error", firstLine(err))
				return err
			}
			// Findings and sites are both in preprocessed coordinates
			// here, so extent-overlap attachment stays sound.
			res.AttachFindings(rep.Findings)
			kept, declined := remapEdits(res.Edits, pp.Map)
			declineSites(res, declined)
			out, err := applyRemapped(current, kept)
			if err != nil {
				return fmt.Errorf("apply remapped SLR edits: %w", err)
			}
			remapSites(res, pp.Map)
			rep.SLR = res
			rep.NeedsGlib = res.NeedsGlib && res.AppliedCount() > 0
			current = out
			sp.Attr("sites", fmt.Sprint(res.Candidates())).
				Attr("applied", fmt.Sprint(res.AppliedCount())).
				Attr("declined", fmt.Sprint(len(declined)))
			return nil
		})
		if slrErr != nil {
			if !opts.KeepGoing {
				return nil, pp, fmt.Errorf("core: SLR: %w", slrErr)
			}
			rep.SLR = nil
			current = source
			rep.Degraded = append(rep.Degraded, "SLR skipped: "+firstLine(slrErr))
		}
	}

	// Round 2: STR on a fresh preprocess of the (possibly SLR-repaired)
	// original, so its edits remap through a map that matches the text
	// they will be applied to.
	if !opts.DisableSTR {
		strErr := stage(func() error {
			sp := opts.Tracer.Start(ctx, obs.StageSTR, filename)
			defer sp.End()
			pp2 := pp
			strSnap := snap
			if current != source {
				var err error
				pp2, err = cpp.Preprocess(filename, current, cppOpts)
				if err != nil {
					return fmt.Errorf("re-preprocess for STR: %w", err)
				}
				strSnap, err = analysis.ParseCtx(ctx, filename, pp2.Text, conf)
				if err != nil {
					return fmt.Errorf("parse for STR: %w", err)
				}
				sp.Attr("reparsed", "true")
			}
			res, err := str.NewTransformerSnap(strSnap).ApplyAll()
			if err != nil {
				sp.Attr("error", firstLine(err))
				return err
			}
			res.AttachFindings(rep.Findings)
			kept, declined := remapEdits(res.Edits, pp2.Map)
			declineVars(res, declined)
			out, err := applyRemapped(current, kept)
			if err != nil {
				return fmt.Errorf("apply remapped STR edits: %w", err)
			}
			remapVars(res, pp2.Map)
			rep.STR = res
			rep.NeedsStralloc = res.NeedsStralloc && res.AppliedCount() > 0
			current = out
			rep.Degraded = append(rep.Degraded, strSnap.Degradations()...)
			sp.Attr("vars", fmt.Sprint(res.Candidates())).
				Attr("applied", fmt.Sprint(res.AppliedCount())).
				Attr("declined", fmt.Sprint(len(declined)))
			return nil
		})
		if strErr != nil {
			if !opts.KeepGoing {
				return nil, pp, fmt.Errorf("core: STR: %w", strErr)
			}
			rep.STR = nil
			rep.Degraded = append(rep.Degraded, "STR skipped: "+firstLine(strErr))
		}
	}

	if len(rep.Findings) > 0 {
		remapFindings(rep.Findings, pp.Map)
	}
	rep.Source = current
	rep.Degraded = append(rep.Degraded, snap.Degradations()...)
	rep.Degraded = append(rep.Degraded, cppDegradations(pp)...)
	rep.Degraded = dedupStrings(rep.Degraded)
	if len(rep.Degraded) > 0 {
		fileSpan.Attr("degraded", rep.Degraded[0])
	}

	rw := opts.Tracer.Start(ctx, obs.StageRewrite, filename)
	if opts.EmitSupport {
		var support strings.Builder
		for _, u := range backend.SupportUnits(rep.NeedsStralloc, rep.NeedsGlib, be) {
			support.WriteString(u.Source)
			support.WriteString("\n")
		}
		if support.Len() > 0 {
			rep.Source = support.String() + rep.Source
		}
	}
	rw.Attr("changed", fmt.Sprint(rep.Changed())).End()
	return rep, pp, nil
}

// applyRemapped splices already-remapped edits into the original text.
func applyRemapped(src string, edits []rewrite.Edit) (string, error) {
	if len(edits) == 0 {
		return src, nil
	}
	var set rewrite.Set
	for _, e := range edits {
		set.Add(e)
	}
	return set.Apply(src)
}

// declineSites downgrades every applied SLR site whose owner group was
// declined by remapping to a FailMacroOrHeader failure.
func declineSites(res *slr.FileResult, declined map[string]string) {
	if len(declined) == 0 {
		return
	}
	for i := range res.Sites {
		owner := fmt.Sprintf("site:%d", i)
		reason, bad := declined[owner]
		if !bad || !res.Sites[i].Applied {
			continue
		}
		res.Sites[i].Applied = false
		res.Sites[i].Failure = &buflen.Failure{Reason: buflen.FailMacroOrHeader, Detail: reason}
	}
}

// declineVars downgrades every replaced STR variable whose function's
// owner group was declined by remapping.
func declineVars(res *str.FileResult, declined map[string]string) {
	if len(declined) == 0 {
		return
	}
	for i := range res.Vars {
		v := &res.Vars[i]
		reason, bad := declined["func:"+v.Func]
		if !bad || !v.Applied {
			continue
		}
		v.Applied = false
		v.Reason = str.FailMacroOrHeader
		v.Detail = reason
	}
}

// remapSites rewrites SLR site locations into original coordinates.
func remapSites(res *slr.FileResult, m *cpp.SourceMap) {
	for i := range res.Sites {
		s := &res.Sites[i]
		if !s.Extent.IsValid() {
			continue
		}
		org, _ := m.ToOriginal(s.Extent)
		s.Pos = m.Position(s.Extent.Pos)
		s.Extent = org.Extent
	}
}

// remapVars rewrites STR variable locations into original coordinates.
func remapVars(res *str.FileResult, m *cpp.SourceMap) {
	for i := range res.Vars {
		v := &res.Vars[i]
		if !v.Extent.IsValid() {
			continue
		}
		org, _ := m.ToOriginal(v.Extent)
		v.Pos = m.Position(v.Extent.Pos)
		v.Extent = org.Extent
	}
}
