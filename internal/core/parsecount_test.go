package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cparse"
)

// overflowing is a variant of sample whose strcpy provably overflows, so
// the lint oracle produces findings.
const overflowing = `
void f(void) {
    char buf[8];
    char *p;
    strcpy(buf, "this literal exceeds eight bytes");
    p = malloc(8);
    p[0] = 'x';
}
`

// parseDelta runs f and returns how many times cparse.Parse executed.
func parseDelta(f func()) int64 {
	before := cparse.Parses()
	f()
	return cparse.Parses() - before
}

// TestFixLintParsesOnce is the regression test for the redundant parse the
// snapshot layer removed: with Lint and SLR both enabled, the input is
// parsed exactly once — lint and SLR share the snapshot.
func TestFixLintParsesOnce(t *testing.T) {
	delta := parseDelta(func() {
		rep, err := Fix(context.Background(), "s.c", overflowing, Options{Lint: true, DisableSTR: true, SelectOffset: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Findings) == 0 {
			t.Fatal("lint must have run")
		}
		if rep.SLR == nil || rep.SLR.AppliedCount() == 0 {
			t.Fatal("SLR must have applied")
		}
	})
	if delta != 1 {
		t.Fatalf("lint+SLR parsed %d times, want exactly 1", delta)
	}
}

// TestFixFullPipelineParseCount pins the whole pipeline's parse budget:
// one parse shared by lint and SLR, plus one re-parse for STR only because
// SLR rewrote the text.
func TestFixFullPipelineParseCount(t *testing.T) {
	delta := parseDelta(func() {
		rep, err := Fix(context.Background(), "s.c", overflowing, Options{Lint: true, SelectOffset: -1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Source == overflowing {
			t.Fatal("SLR should have rewritten the sample")
		}
	})
	if delta != 2 {
		t.Fatalf("full pipeline parsed %d times, want 2 (shared snapshot + post-SLR re-parse)", delta)
	}
}

// TestFixUnchangedSourceSkipsReparse: when SLR applies nothing, STR reuses
// the original snapshot instead of re-parsing identical text.
func TestFixUnchangedSourceSkipsReparse(t *testing.T) {
	src := strings.ReplaceAll(sample, "strcpy(buf, \"hello\");", "buf[0] = 'h';")
	delta := parseDelta(func() {
		rep, err := Fix(context.Background(), "s.c", src, Options{Lint: true, SelectOffset: -1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SLR != nil && rep.SLR.AppliedCount() != 0 {
			t.Fatal("sample variant should have no SLR sites")
		}
	})
	if delta != 1 {
		t.Fatalf("no-op SLR parsed %d times, want 1 (snapshot reused for STR)", delta)
	}
}
