// Package incremental holds edit-aware analysis sessions: a Session
// keeps the last parse of one C translation unit plus memoized
// per-function oracle facts, applies position-stable edit scripts
// (internal/edit), and re-derives diagnostics for only the functions an
// edit actually touched.
//
// The invalidation currency is the per-function dependency hash
// (analysis.Snapshot.FuncHashes): a function whose hash is unchanged
// after an edit gets its findings replayed from the cross-run memo
// (overflow.Memo) with extents remapped through the edit's offset
// mapper, byte-identical to a fresh run. Everything the session returns
// — findings and repair sites — therefore matches a from-scratch
// core.Analyze/core.Fix on the same text; the equivalence suite pins
// that property over randomized edit scripts.
//
// Both front ends sit on this package: cmd/cfixlsp (stdio LSP server)
// and cfixd's /v1/session endpoints.
package incremental

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ctoken"
	"repro/internal/edit"
	"repro/internal/intflow"
	"repro/internal/obs"
	"repro/internal/overflow"
	"repro/internal/slr"
	"repro/internal/str"
)

// Config configures a session.
type Config struct {
	// Checks selects the lint oracles, as core.Options.Checks does:
	// "buf", "int", "all"; empty means "all" — a session exists to power
	// diagnostics, so it defaults to every oracle.
	Checks string
	// Backend names the SLR repair dialect candidate sites are reported
	// for ("glib" when empty; validated at Open).
	Backend string
	// Tracer, when non-nil, receives one StageIncremental span per edit
	// re-analysis plus the usual per-fact spans.
	Tracer *obs.Tracer
}

// SiteKind distinguishes the two repair families at a candidate site.
type SiteKind string

// Site kinds.
const (
	SiteSLR SiteKind = "slr" // safe library replacement at a call site
	SiteSTR SiteKind = "str" // safe type replacement of a variable
)

// Site is one SLR or STR repair candidate in session-compact form. It
// deliberately carries no raw source spellings (size expressions,
// refusal details): those quote exact whitespace, which the session's
// hash normalization ignores, so retaining them would let a replayed
// site drift from a fresh run after a formatting-only edit. Extent is
// kept in current-text coordinates across edits.
type Site struct {
	// Kind is SiteSLR or SiteSTR.
	Kind SiteKind `json:"kind"`
	// Function is the enclosing function.
	Function string `json:"function"`
	// Name is the unsafe callee (SLR) or the candidate variable (STR).
	Name string `json:"name"`
	// SafeName is the replacement the active backend would emit (SLR;
	// always "stralloc" for STR).
	SafeName string `json:"safe_name"`
	// Extent covers the call expression (SLR) or is a zero-width anchor
	// at the variable's position (STR).
	Extent ctoken.Extent `json:"extent"`
	// Eligible reports whether the transformation's preconditions hold.
	Eligible bool `json:"eligible"`
	// Reason is the precondition-failure class when !Eligible (the
	// buflen.FailReason / str.FailReason enum string, detail elided).
	Reason string `json:"reason,omitempty"`
}

// Counters is the session's incremental-work accounting, cumulative
// since Open.
type Counters struct {
	// EditsApplied counts Edit calls that validated and re-analyzed.
	EditsApplied int64 `json:"edits_applied"`
	// FuncsReanalyzed counts functions whose dependency hash changed
	// (or that were new) at an edit, forcing fresh derivation.
	FuncsReanalyzed int64 `json:"funcs_reanalyzed"`
	// FuncsReused counts functions whose hash was unchanged at an edit,
	// so their facts replayed from the memo.
	FuncsReused int64 `json:"funcs_reused"`
}

// Result is the outcome of Open or one Edit: the current text and the
// diagnostics derived from it.
type Result struct {
	// Text is the session text after the edit.
	Text string
	// Findings merges the selected oracles' findings in source order —
	// exactly what core.Analyze(Checks) returns on Text.
	Findings []overflow.Finding
	// Sites lists the SLR/STR repair candidates in source order.
	Sites []Site
	// FuncsReanalyzed / FuncsReused break down this edit's work (both
	// zero for Open, which derives everything).
	FuncsReanalyzed int
	FuncsReused     int
}

// Session is one open translation unit with retained analysis state.
// Methods are safe for concurrent use; edits serialize internally.
type Session struct {
	mu sync.Mutex

	name    string
	text    string
	conf    Config
	backend backend.Backend

	snap    *analysis.Snapshot
	hashes  map[string]string
	ovfMemo *overflow.Memo
	intMemo *overflow.Memo

	findings []overflow.Finding
	sites    []Site

	counters Counters
}

// Open parses text and derives the initial diagnostics, retaining every
// fact for incremental reuse.
func Open(ctx context.Context, name, text string, conf Config) (*Session, *Result, error) {
	if conf.Checks == "" {
		conf.Checks = "all"
	}
	be, err := backend.Get(conf.Backend)
	if err != nil {
		return nil, nil, err
	}
	s := &Session{
		name:    name,
		conf:    conf,
		backend: be,
		ovfMemo: overflow.NewMemo(),
		intMemo: overflow.NewMemo(),
	}
	if err := s.analyze(ctx, text); err != nil {
		return nil, nil, err
	}
	sites, err := discoverSites(s.snap, s.backend)
	if err != nil {
		return nil, nil, err
	}
	s.sites = sites
	return s, &Result{Text: s.text, Findings: s.findings, Sites: sites}, nil
}

// analysisConfig threads the session memos into the oracle options.
// Options stay at defaults and unbudgeted: the memo only replays runs
// whose degradation bookkeeping is trivially empty, and core.Analyze
// with default options is the equivalence baseline.
func (s *Session) analysisConfig() analysis.Config {
	ovf := overflow.DefaultOptions()
	ovf.Memo = s.ovfMemo
	intf := intflow.DefaultOptions()
	intf.Memo = s.intMemo
	return analysis.Config{Overflow: &ovf, Intflow: &intf, Tracer: s.conf.Tracer}
}

// analyze parses text and re-derives findings and hashes, reusing the
// memos; sites are left to the caller, which knows whether the dirty
// set justifies re-discovery. Callers hold s.mu (or are constructing s).
func (s *Session) analyze(ctx context.Context, text string) error {
	snap, err := analysis.ParseCtx(ctx, s.name, text, s.analysisConfig())
	if err != nil {
		return err
	}
	findings, err := core.LintSnapshot(snap, s.conf.Checks)
	if err != nil {
		return err
	}
	s.text = text
	s.snap = snap
	s.hashes = snap.FuncHashes()
	s.findings = findings
	return nil
}

// Edit applies a position-stable delta script to the session text and
// re-analyzes. Functions whose dependency hash survives the edit replay
// their findings from the memo (extents remapped through the script's
// offset mapper); only the dirty set is re-derived. The returned result
// is byte-identical to closing the session and re-opening it on the new
// text.
func (s *Session) Edit(ctx context.Context, deltas []edit.Delta) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Minimizing first protects the remap below: a client that re-sends a
	// span (or the whole file) with a one-byte change must not count the
	// unchanged bytes as edited.
	script := edit.NewScript(edit.Minimize(s.text, deltas)...)
	if err := script.Validate(len(s.text)); err != nil {
		return nil, err
	}
	newText, err := script.Apply(s.text)
	if err != nil {
		return nil, err
	}

	sp := s.conf.Tracer.Start(ctx, obs.StageIncremental, s.name)
	defer sp.End()

	// Parse before touching retained state: an edit that breaks the parse
	// must leave the session exactly as it was. The snapshot's derived
	// facts (and with them the memo lookups) stay lazy until the lint
	// below forces them, after the remap.
	snap, err := analysis.ParseCtx(ctx, s.name, newText, s.analysisConfig())
	if err != nil {
		return nil, err
	}

	// Shift every retained extent into the new text's coordinates.
	// Entries the edit landed inside are dropped by Remap (inexact);
	// entries the edit invalidated semantically miss on hash and age out.
	mapper := edit.NewMapper(script)
	oldSites := append([]Site(nil), s.sites...)
	s.ovfMemo.Remap(mapper.MapExtent)
	s.intMemo.Remap(mapper.MapExtent)
	sitesExact := true
	for i := range s.sites {
		ne, exact := mapper.MapExtent(s.sites[i].Extent)
		s.sites[i].Extent = ne
		sitesExact = sitesExact && exact
	}

	findings, err := core.LintSnapshot(snap, s.conf.Checks)
	if err != nil {
		// The memos are now in the coordinates of a text that never became
		// current; drop them rather than guess, and restore the sites.
		s.ovfMemo, s.intMemo = overflow.NewMemo(), overflow.NewMemo()
		s.sites = oldSites
		return nil, err
	}

	oldHashes := s.hashes
	s.text, s.snap, s.findings = newText, snap, findings
	s.hashes = snap.FuncHashes()

	dirty, reused := diffHashes(oldHashes, s.hashes)
	if dirty > 0 || !sitesExact {
		// The transformers are whole-unit, so any dirty function means a
		// full site re-discovery on the new snapshot; so does an edit that
		// landed inside a retained site's extent, whose fresh extent the
		// remap cannot reproduce.
		sites, err := discoverSites(s.snap, s.backend)
		if err != nil {
			return nil, err
		}
		s.sites = sites
	}
	// else: a clean edit (comments, whitespace outside every site) — the
	// remapped previous sites are byte-identical to a re-discovery, which
	// the equivalence suite pins, so the transformers are skipped.

	res := &Result{Text: s.text, Findings: s.findings, Sites: append([]Site(nil), s.sites...)}
	res.FuncsReanalyzed, res.FuncsReused = dirty, reused

	s.counters.EditsApplied++
	s.counters.FuncsReanalyzed += int64(dirty)
	s.counters.FuncsReused += int64(reused)
	sp.Attr("funcs_reanalyzed", fmt.Sprint(dirty)).
		Attr("funcs_reused", fmt.Sprint(reused)).
		Attr("findings", fmt.Sprint(len(res.Findings)))
	return res, nil
}

// diffHashes splits the new function set into dirty (hash changed or
// function new) and reused (hash unchanged); deleted functions count as
// dirty work.
func diffHashes(old, new map[string]string) (dirty, reused int) {
	for name, h := range new {
		if old[name] == h {
			reused++
		} else {
			dirty++
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			dirty++
		}
	}
	return dirty, reused
}

// Text returns the current session text.
func (s *Session) Text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.text
}

// Name returns the file name the session was opened with.
func (s *Session) Name() string { return s.name }

// Findings returns the current diagnostics.
func (s *Session) Findings() []overflow.Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]overflow.Finding(nil), s.findings...)
}

// Sites returns the current repair candidates.
func (s *Session) Sites() []Site {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Site(nil), s.sites...)
}

// Counters returns the cumulative incremental-work counters.
func (s *Session) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Position renders a byte offset in the current text as file:line:col.
func (s *Session) Position(p ctoken.Pos) ctoken.Position {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil || s.snap.Unit().File == nil {
		return ctoken.Position{File: s.name}
	}
	return s.snap.Unit().File.Position(p)
}

// discoverSites runs both transformers in discovery mode and projects
// their results to the session-compact site type.
func discoverSites(snap *analysis.Snapshot, be backend.Backend) ([]Site, error) {
	var sites []Site
	slrRes, err := slr.NewTransformerSnapBackend(snap, be).ApplyAll()
	if err != nil {
		return nil, fmt.Errorf("incremental: slr discovery: %w", err)
	}
	for _, st := range slrRes.Sites {
		site := Site{
			Kind:     SiteSLR,
			Function: funcAt(snap, st.Extent.Pos),
			Name:     st.Function,
			SafeName: st.SafeName,
			Extent:   st.Extent,
			Eligible: st.Applied,
		}
		if st.Failure != nil {
			site.Reason = st.Failure.Reason.String()
		}
		sites = append(sites, site)
	}
	strRes, err := str.NewTransformerSnap(snap).ApplyAll()
	if err != nil {
		return nil, fmt.Errorf("incremental: str discovery: %w", err)
	}
	for _, v := range strRes.Vars {
		site := Site{
			Kind:     SiteSTR,
			Function: v.Func,
			Name:     v.Name,
			SafeName: "stralloc",
			Extent:   varExtent(snap, v),
			Eligible: v.Applied,
		}
		if !v.Applied {
			site.Reason = v.Reason.String()
		}
		sites = append(sites, site)
	}
	sortSites(sites)
	return sites, nil
}

// funcAt names the function whose extent contains offset p.
func funcAt(snap *analysis.Snapshot, p ctoken.Pos) string {
	for _, fn := range snap.Unit().Funcs {
		e := fn.Extent()
		if p >= e.Pos && p < e.End {
			return fn.Name
		}
	}
	return ""
}

// varExtent recovers a zero-width anchor for a STR variable from its
// declaration inside the named function.
func varExtent(snap *analysis.Snapshot, v str.VarResult) ctoken.Extent {
	fn := snap.Unit().FuncNamed(v.Func)
	if fn == nil {
		return ctoken.Extent{}
	}
	for _, sym := range snap.Unit().Symbols {
		if sym == nil || sym.IsGlobal || sym.Name != v.Name || sym.Decl == nil {
			continue
		}
		p := sym.Decl.Extent().Pos
		fe := fn.Extent()
		if p >= fe.Pos && p < fe.End {
			return ctoken.Extent{Pos: p, End: p}
		}
	}
	return ctoken.Extent{}
}

func sortSites(sites []Site) {
	// Source order, STR after SLR at equal offsets for determinism.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && siteLess(sites[j], sites[j-1]); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
}

func siteLess(a, b Site) bool {
	if a.Extent.Pos != b.Extent.Pos {
		return a.Extent.Pos < b.Extent.Pos
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}
