package cfix

import (
	"context"

	"repro/internal/project"
)

// Project mode runs the pipeline across a whole C project instead of one
// already-preprocessed translation unit: sources are preprocessed by the
// built-in preprocessor (includes, macros, conditionals), analyses see
// the expanded text, and every repair is remapped back into the file the
// user wrote. Repairs that land inside macro expansions or included
// headers are declined with an explicit reason instead of applied.
// Cross-file interprocedural facts flow between translation units, so a
// caller in one file can expose an overflow in another.

// ProjectReport is the outcome of a project run: one outcome per
// translation unit plus the linked cross-file call edges.
type ProjectReport = project.Report

// ProjectFileOutcome is one translation unit's result.
type ProjectFileOutcome = project.FileOutcome

// CrossEdge is one resolved cross-file call.
type CrossEdge = project.CrossEdge

// FixProject loads a Clang-style compile_commands.json database and
// fixes every C translation unit in it. Options.SelectOffset is ignored
// (project mode is always batch). Per-file failures are recorded in the
// outcomes; the returned error is reserved for database loading problems
// and context cancellation.
func FixProject(ctx context.Context, compileCommands string, opts Options) (*ProjectReport, error) {
	p, err := project.Load(compileCommands)
	if err != nil {
		return nil, err
	}
	return p.Fix(ctx, coreOptions(opts))
}

// AnalyzeProject is the lint-only FixProject: the same preprocessing,
// linking, and cross-file seeding, reporting findings instead of
// rewriting.
func AnalyzeProject(ctx context.Context, compileCommands string, opts Options) (*ProjectReport, error) {
	p, err := project.Load(compileCommands)
	if err != nil {
		return nil, err
	}
	opts.Lint = true
	return p.Analyze(ctx, coreOptions(opts))
}

// FixProjectInMemory fixes a project supplied as in-memory sources:
// files maps translation-unit names to C text, headers maps include
// names to header text. This is the daemon's batch mode; nothing touches
// the filesystem.
func FixProjectInMemory(ctx context.Context, files, headers map[string]string, opts Options) (*ProjectReport, error) {
	return project.InMemory(files, headers, nil).Fix(ctx, coreOptions(opts))
}

// AnalyzeProjectInMemory is the lint-only FixProjectInMemory.
func AnalyzeProjectInMemory(ctx context.Context, files, headers map[string]string, opts Options) (*ProjectReport, error) {
	opts.Lint = true
	return project.InMemory(files, headers, nil).Analyze(ctx, coreOptions(opts))
}

// ProjectRequest asks the daemon to process a whole project in one
// request (POST /v1/project). Sources travel inline — the daemon never
// touches a filesystem. Files maps translation-unit names to C text;
// Headers maps include names (as spelled in #include directives, plus
// any include-dir-relative paths) to header text.
type ProjectRequest struct {
	Files    map[string]string `json:"files"`
	Headers  map[string]string `json:"headers,omitempty"`
	LintOnly bool              `json:"lint_only,omitempty"`
	Options  RequestOptions    `json:"options,omitempty"`
}

// ProjectFileJSON is one translation unit's slice of a project
// response.
type ProjectFileJSON struct {
	File string `json:"file"`
	// Fix carries the transformation outcome (absent for lint-only
	// requests and failed files).
	Fix *FixResponse `json:"fix,omitempty"`
	// Findings carries lint-only findings (positions are in the
	// ORIGINAL pre-expansion sources; macro-expanded findings point at
	// the invocation).
	Findings []FindingJSON `json:"findings,omitempty"`
	Degraded []string      `json:"degraded,omitempty"`
	// Includes lists the headers the preprocessor inlined, first-use
	// order.
	Includes []string `json:"includes,omitempty"`
	Err      string   `json:"err,omitempty"`
}

// ProjectResponse is the daemon's answer to a ProjectRequest.
type ProjectResponse struct {
	Files []ProjectFileJSON `json:"files"`
	// Edges lists the cross-file calls the scan round linked.
	Edges []CrossEdge `json:"edges,omitempty"`
}

// NewProjectResponse renders a project report in the wire shape.
func NewProjectResponse(rep *ProjectReport) ProjectResponse {
	resp := ProjectResponse{Edges: rep.Edges}
	for _, out := range rep.Files {
		fj := ProjectFileJSON{File: out.File, Includes: out.Includes, Err: out.Err}
		if out.Fix != nil {
			fr := NewFixResponse(out.File, out.Fix)
			fj.Fix = &fr
		}
		if out.Lint != nil {
			fj.Findings = NewFindingsJSON(out.Lint.Findings)
			fj.Degraded = out.Lint.Degraded
		}
		resp.Files = append(resp.Files, fj)
	}
	return resp
}
