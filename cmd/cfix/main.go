// Command cfix applies the paper's two buffer-overflow-fixing
// transformations to preprocessed C files.
//
// Usage:
//
//	cfix [flags] file.c [more.c ...]
//
//	-o out.c        write the transformed source here (single input only;
//	                default: stdout)
//	-outdir dir     write each transformed file to dir (batch mode)
//	-slr=false      disable SAFE LIBRARY REPLACEMENT
//	-str=false      disable SAFE TYPE REPLACEMENT
//	-at offset      apply SLR only to the call expression at this byte offset
//	-support        prepend the stralloc library and the selected
//	                backend's safe-function prototypes
//	-verify entry   additionally run <entry> under the checked interpreter
//	                before and after, reporting violations
//	-summary        print the per-site/per-variable change log to stderr
//	-diff           print a unified diff of the changes (the didactic view)
//	-lint           do not transform; run the static overflow oracle and
//	                print CWE-classified findings
//	-checks list    which lint oracles run: "buf" (buffer overflows,
//	                the default), "int" (integer wraparound/underflow and
//	                overflow-to-allocation, CWE-190/191/680 with suggested
//	                precondition guards), "all", or a comma list
//	-backend name   safe-function dialect SLR rewrites to: "glib" (the
//	                default, g_strlcpy/g_strlcat/g_snprintf), "bsd"
//	                (strlcpy/strlcat/snprintf), or "c11k" (C11 Annex K
//	                strcpy_s family, destination size before the source)
//	-json           with -lint, print findings as JSON lines
//	-j n            parallel workers for batch mode (0 = one per CPU;
//	                negative values are a usage error)
//	-cache-dir dir  reuse full-fidelity results across runs from a
//	                content-addressed cache under dir (atomic writes,
//	                checksum-verified reads); unchanged files cost a
//	                lookup instead of a parse and a fixpoint solve
//	-cache-size n   in-memory tier bound for -cache-dir, in MiB
//	                (default 256)
//	-timeout d      per-file processing deadline (e.g. 30s; 0 = none)
//	-total-timeout d  overall deadline for the whole invocation (0 = none)
//	-budget n       per-file solver iteration/context budget; exhausted
//	                budgets degrade to conservative results, never silence
//	-keep-going     process every file even when one fails; report each
//	                error and exit nonzero at the end
//	-trace out.json record one span per pipeline stage and write a
//	                Chrome trace-event file (open in chrome://tracing or
//	                ui.perfetto.dev; one lane per -j worker)
//	-stage-stats    print the aggregated per-stage timing table to
//	                stderr (count, self, total, min, max, degraded)
//
// A directory argument expands to every .c file directly inside it — the
// paper's maintenance scenario of batch-hardening a legacy tree.
//
// Exit codes:
//
//	0  success; with -lint, no definite overflow was found
//	1  a file could not be read, parsed, or transformed (with -keep-going,
//	   at least one file failed)
//	2  usage error
//	3  -lint found at least one definite overflow (CI gate signal; with
//	   -keep-going this dominates per-file errors)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/textdiff"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

// options collects the parsed flags.
type options struct {
	out          string
	outdir       string
	doSLR        bool
	doSTR        bool
	at           int
	support      bool
	verify       string
	summary      bool
	diff         bool
	lint         bool
	checks       string
	backend      string
	json         bool
	jobs         int
	cacheDir     string
	cacheSize    int64
	timeout      time.Duration
	totalTimeout time.Duration
	budget       int
	keepGoing    bool
	traceOut     string
	stageStats   bool
	project      string

	// cache is the result cache built from cacheDir/cacheSize; nil when
	// caching is off.
	cache *cfix.ResultCache
	// tracer records stage spans when -trace or -stage-stats is set.
	tracer *cfix.Tracer
}

// fixOptions translates the CLI flags into library options.
func (o options) fixOptions() cfix.Options {
	return cfix.Options{
		DisableSLR:   !o.doSLR,
		DisableSTR:   !o.doSTR,
		SelectOffset: o.at,
		SelectAll:    o.at < 0,
		EmitSupport:  o.support,
		// The summary ranks and justifies candidate sites with the static
		// oracle's verdicts when they are available.
		Lint:      o.summary,
		Checks:    o.checks,
		Backend:   o.backend,
		Timeout:   o.timeout,
		Budget:    o.budget,
		KeepGoing: o.keepGoing,
		Cache:     o.cache,
		Tracer:    o.tracer,
	}
}

func run() int {
	var opts options
	flag.StringVar(&opts.out, "o", "", "output file (single input; default stdout)")
	flag.StringVar(&opts.outdir, "outdir", "", "output directory (batch mode)")
	flag.BoolVar(&opts.doSLR, "slr", true, "apply SAFE LIBRARY REPLACEMENT")
	flag.BoolVar(&opts.doSTR, "str", true, "apply SAFE TYPE REPLACEMENT")
	flag.IntVar(&opts.at, "at", -1, "apply SLR only at this byte offset")
	flag.BoolVar(&opts.support, "support", false, "prepend stralloc/glib support code")
	flag.StringVar(&opts.verify, "verify", "", "entry function to execute pre/post")
	flag.BoolVar(&opts.summary, "summary", true, "print change summary to stderr")
	flag.BoolVar(&opts.diff, "diff", false, "print a unified diff instead of the full source")
	flag.BoolVar(&opts.lint, "lint", false, "run the static overflow oracle only; exit 3 on a definite overflow")
	flag.StringVar(&opts.checks, "checks", "buf", `lint oracles to run: "buf", "int", "all", or a comma list`)
	flag.StringVar(&opts.backend, "backend", "glib", `safe-function dialect SLR rewrites to: "glib", "bsd", or "c11k"`)
	flag.BoolVar(&opts.json, "json", false, "with -lint, print findings as JSON lines")
	flag.IntVar(&opts.jobs, "j", 0, "parallel workers for batch mode (0 = one worker per CPU; must be >= 0)")
	flag.StringVar(&opts.cacheDir, "cache-dir", "", "reuse results across runs from a content-addressed cache under this directory")
	flag.Int64Var(&opts.cacheSize, "cache-size", 256, "in-memory tier bound for -cache-dir, in MiB")
	flag.DurationVar(&opts.timeout, "timeout", 0, "per-file processing deadline (0 = none)")
	flag.DurationVar(&opts.totalTimeout, "total-timeout", 0, "overall deadline for the whole invocation (0 = none)")
	flag.IntVar(&opts.budget, "budget", 0, "per-file solver iteration/context budget (0 = unlimited); exhaustion degrades, never silences")
	flag.BoolVar(&opts.keepGoing, "keep-going", false, "process every file even when one fails; exit nonzero at the end")
	flag.StringVar(&opts.project, "p", "", "project mode: process every C unit of this compile_commands.json (preprocessing included)")
	flag.StringVar(&opts.traceOut, "trace", "", "write a Chrome trace-event JSON file of the pipeline stages here")
	flag.BoolVar(&opts.stageStats, "stage-stats", false, "print the aggregated per-stage timing table to stderr")
	flag.Parse()

	if opts.jobs < 0 {
		fmt.Fprintln(os.Stderr, "cfix: -j must be >= 0 (0 = one worker per CPU)")
		return 2
	}
	for _, name := range strings.Split(opts.checks, ",") {
		switch strings.TrimSpace(name) {
		case "buf", "int", "all", "":
		default:
			fmt.Fprintf(os.Stderr, "cfix: -checks: unknown check %q (valid: buf, int, all)\n", strings.TrimSpace(name))
			return 2
		}
	}
	if _, err := cfix.CanonicalBackend(opts.backend); err != nil {
		fmt.Fprintf(os.Stderr, "cfix: -backend: %v\n", err)
		return 2
	}
	if opts.cacheDir != "" {
		size := opts.cacheSize << 20
		if size <= 0 {
			size = 256 << 20
		}
		var err error
		opts.cache, err = cfix.NewResultCache(size, opts.cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
	}

	ctx := context.Background()
	if opts.totalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.totalTimeout)
		defer cancel()
	}

	if opts.project != "" {
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "cfix: -p takes no file arguments (the database lists the units)")
			return 2
		}
		if opts.at >= 0 {
			fmt.Fprintln(os.Stderr, "cfix: -at is not supported in project mode")
			return 2
		}
		code := projectRun(ctx, opts)
		if obsCode := emitObservability(opts); obsCode != 0 && code == 0 {
			code = obsCode
		}
		return code
	}

	paths, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cfix [flags] file.c [more.c ...]")
		fmt.Fprintln(os.Stderr, "exit codes: 0 success/clean, 1 error, 2 usage, 3 definite overflow found by -lint")
		flag.PrintDefaults()
		return 2
	}
	if opts.json && !opts.lint {
		fmt.Fprintln(os.Stderr, "cfix: -json requires -lint")
		return 2
	}
	if opts.traceOut != "" || opts.stageStats {
		if !cfix.TracingEnabled() {
			fmt.Fprintln(os.Stderr, "cfix: this build was compiled with cfix_notrace; -trace/-stage-stats will observe nothing")
		}
		opts.tracer = cfix.NewTracer()
	}

	var code int
	switch {
	case opts.lint:
		code = lintFiles(ctx, paths, opts)
	case len(paths) > 1 && opts.out != "":
		fmt.Fprintln(os.Stderr, "cfix: -o needs a single input; use -outdir for batches")
		return 2
	case len(paths) > 1 && opts.at >= 0:
		fmt.Fprintln(os.Stderr, "cfix: -at needs a single input")
		return 2
	default:
		code = fixFiles(ctx, paths, opts)
	}
	if obsCode := emitObservability(opts); obsCode != 0 && code == 0 {
		code = obsCode
	}
	return code
}

// emitObservability writes the -trace file and prints the -stage-stats
// table after the run. The stats table reports self time per stage
// (exclusive of nested stages), so its total matches the traced wall
// clock instead of double-counting nesting.
func emitObservability(opts options) int {
	if opts.tracer == nil {
		return 0
	}
	if opts.stageStats {
		fmt.Fprint(os.Stderr, cfix.FormatStageStats(opts.tracer.StageStats(), opts.tracer.WallClock()))
	}
	if opts.traceOut != "" {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		werr := opts.tracer.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "cfix: writing trace: %v\n", werr)
			return 1
		}
	}
	return 0
}

// fixFiles reads every input, fixes them through the parallel batch
// pipeline (cfix.FixAll), and emits the results in input order. Without
// -keep-going the first failure stops the run; with it, every file is
// processed and reported and the run exits 1 at the end if any failed.
func fixFiles(ctx context.Context, paths []string, opts options) int {
	inputs := make([]cfix.FileInput, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		inputs[i] = cfix.FileInput{Filename: path, Source: string(data)}
	}
	outs := cfix.FixAllContext(ctx, inputs, opts.fixOptions(), opts.jobs)
	failed := false
	for i, out := range outs {
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %s: %v\n", out.Filename, out.Err)
			if !opts.keepGoing {
				return 1
			}
			failed = true
			continue
		}
		if code := emitOne(paths[i], inputs[i].Source, out.Report, opts, len(paths) > 1); code != 0 {
			if !opts.keepGoing {
				return code
			}
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// lintDegradations is the JSON shape of the per-file degradation trailer
// in -lint -json output: emitted after a file's findings whenever the
// analysis had to degrade (budget exhaustion, skipped stage), so
// machine consumers can tell a clean full-fidelity verdict from a
// qualified one.
type lintDegradations struct {
	File         string   `json:"file"`
	Degradations []string `json:"degradations"`
}

// lintFiles runs the static overflow oracle over every input — through
// the parallel batch pipeline — and prints the findings in input order.
// It returns 3 when any finding is definite, 0 when all files are clean
// or merely possible, 1 on processing errors. With -keep-going a
// per-file error no longer stops the run; the definite-overflow gate (3)
// dominates per-file errors (1) so CI reads the security signal first.
func lintFiles(ctx context.Context, paths []string, opts options) int {
	inputs := make([]cfix.FileInput, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		inputs[i] = cfix.FileInput{Filename: path, Source: string(data)}
	}
	results := cfix.AnalyzeAllContext(ctx, inputs, opts.fixOptions(), opts.jobs)

	enc := json.NewEncoder(os.Stdout)
	definite, failed := false, false
	for _, res := range results {
		path, findings := res.Filename, res.Findings
		if res.Err != nil {
			// Parse errors already carry file:line:col.
			fmt.Fprintf(os.Stderr, "%v\n", res.Err)
			if !opts.keepGoing {
				return 1
			}
			failed = true
			continue
		}
		for _, f := range findings {
			if f.Severity == cfix.SevDefinite {
				definite = true
			}
			if opts.json {
				if err := enc.Encode(cfix.NewFindingJSON(f)); err != nil {
					fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
					return 1
				}
			} else {
				fmt.Println(f)
			}
		}
		if len(res.Degraded) > 0 {
			if opts.json {
				if err := enc.Encode(lintDegradations{File: path, Degradations: res.Degraded}); err != nil {
					fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
					return 1
				}
			} else {
				fmt.Fprintf(os.Stderr, "%s: analysis degraded: %s\n", path, strings.Join(res.Degraded, "; "))
			}
		}
		if !opts.json && len(findings) == 0 {
			fmt.Fprintf(os.Stderr, "%s: no overflows found\n", path)
		}
	}
	switch {
	case definite:
		return 3
	case failed:
		return 1
	}
	return 0
}

// expandArgs resolves directory arguments to the .c files inside them.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".c") {
				files = append(files, filepath.Join(a, e.Name()))
			}
		}
		sort.Strings(files)
		out = append(out, files...)
	}
	return out, nil
}

// emitOne reports and writes the fix outcome for a single file: pre/post
// verification runs, the change summary, the diff view, and the output
// file. Output ordering matches the historical sequential pipeline.
func emitOne(path, source string, rep *cfix.Report, opts options, batch bool) int {
	if opts.verify != "" {
		res, err := cfix.Run(path, source, opts.verify, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: pre-run: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s before: %d violation(s)\n", path, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if opts.summary {
		if batch {
			fmt.Fprintf(os.Stderr, "== %s ==\n", path)
		}
		fmt.Fprint(os.Stderr, rep.Summary())
	}

	if opts.verify != "" {
		res, err := cfix.Run(path, rep.Source, opts.verify, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: post-run: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s after:  %d violation(s)\n", path, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if opts.diff {
		// The didactic view (Section I): show exactly what changed.
		d := textdiff.Unified(path, path+" (fixed)", source, rep.Source)
		if d == "" {
			fmt.Fprintf(os.Stderr, "%s: no changes\n", path)
		}
		os.Stdout.WriteString(d)
		if opts.out == "" && opts.outdir == "" {
			return 0
		}
	}
	switch {
	case opts.outdir != "":
		if err := os.MkdirAll(opts.outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		dst := filepath.Join(opts.outdir, filepath.Base(path))
		if err := writeFileAtomic(dst, []byte(rep.Source), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
	case opts.out != "":
		if err := writeFileAtomic(opts.out, []byte(rep.Source), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
	default:
		os.Stdout.WriteString(rep.Source)
	}
	return 0
}

// writeFileAtomic writes data to path through a temporary file in the
// same directory followed by a rename, so a crash, full disk, or
// concurrent reader never observes a truncated output — the transformed
// source either fully replaces the destination or leaves it untouched.
func writeFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer owns the file
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// projectRun is `cfix -p compile_commands.json`: the whole-project
// pipeline with the built-in preprocessor and cross-file seeding. Fix
// results print a unified diff per changed file to stdout (or write to
// -outdir); -lint prints findings in the usual single-file formats.
func projectRun(ctx context.Context, opts options) int {
	fopts := opts.fixOptions()
	var rep *cfix.ProjectReport
	var err error
	if opts.lint {
		rep, err = cfix.AnalyzeProject(ctx, opts.project, fopts)
	} else {
		rep, err = cfix.FixProject(ctx, opts.project, fopts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
		return 1
	}
	if opts.summary && len(rep.Edges) > 0 {
		fmt.Fprintf(os.Stderr, "project: %d cross-file call(s) linked\n", len(rep.Edges))
		for _, e := range rep.Edges {
			fmt.Fprintf(os.Stderr, "  %s:%s -> %s:%s\n", e.CallerFile, e.Caller, e.CalleeFile, e.Callee)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	definite, failed := false, false
	for _, out := range rep.Files {
		if out.Err != "" {
			fmt.Fprintf(os.Stderr, "%s: %s\n", out.File, out.Err)
			failed = true
			continue
		}
		switch {
		case opts.lint:
			for _, f := range out.Lint.Findings {
				if f.Severity == cfix.SevDefinite {
					definite = true
				}
				if opts.json {
					if err := enc.Encode(cfix.NewFindingJSON(f)); err != nil {
						fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
						return 1
					}
				} else {
					fmt.Println(f)
				}
			}
			if len(out.Lint.Degraded) > 0 && !opts.json {
				fmt.Fprintf(os.Stderr, "%s: analysis degraded: %s\n", out.File, strings.Join(out.Lint.Degraded, "; "))
			}
			if !opts.json && len(out.Lint.Findings) == 0 {
				fmt.Fprintf(os.Stderr, "%s: no overflows found\n", out.File)
			}
		default:
			if opts.summary {
				fmt.Fprintf(os.Stderr, "== %s ==\n", out.File)
				fmt.Fprint(os.Stderr, out.Fix.Summary())
			}
			orig := readOriginal(out.File)
			if opts.outdir != "" {
				if err := os.MkdirAll(opts.outdir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
					return 1
				}
				dst := filepath.Join(opts.outdir, filepath.Base(out.File))
				if err := writeFileAtomic(dst, []byte(out.Fix.Source), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
					return 1
				}
			} else if orig != "" || out.Fix.Changed() {
				d := textdiff.Unified(out.File, out.File+" (fixed)", orig, out.Fix.Source)
				if d == "" {
					fmt.Fprintf(os.Stderr, "%s: no changes\n", out.File)
				}
				os.Stdout.WriteString(d)
			}
		}
	}
	switch {
	case definite:
		return 3
	case failed:
		return 1
	}
	return 0
}

// readOriginal re-reads a project file for diffing; an empty string on
// error just degrades the diff (the fix result itself already surfaced
// any real I/O problem during loading).
func readOriginal(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return string(b)
}
